//! Regenerates the paper artifact; see `vb_bench::fig3`.

fn main() {
    let t0 = std::time::Instant::now();
    let report = vb_bench::fig3::run(vb_bench::DEFAULT_SEED);
    vb_bench::fig3::print(&report);
    println!(
        "\n[fig3_aggregation completed in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );
}
