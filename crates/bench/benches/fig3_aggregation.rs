//! Regenerates the paper artifact; see `vb_bench::fig3`.

fn main() {
    let run = vb_bench::report::BenchRun::start("fig3_aggregation");
    let report = vb_bench::fig3::run(vb_bench::DEFAULT_SEED);
    vb_bench::fig3::print(&report);
    run.finish();
}
