//! Ablation sweeps over the design choices DESIGN.md calls out:
//!
//! * **Clique size k** — availability/latency trade-off of larger
//!   multi-VB groups (§3.1's "k = 2 to 5").
//! * **Look-ahead horizon** — greedy (none) → 24 h → full week.
//! * **Peak-objective weight** — O2 strength in MIP-peak.
//! * **Utilization target** — the 70 % admission-control knob of §3.
//! * **Forecast quality** — scheduler value under degraded forecasts
//!   (the week-ahead error model applied at every horizon).

use vb_sched::{
    identify_subgraphs, GreedyPolicy, GroupSim, GroupSimConfig, MipConfig, MipPolicy,
    PipelineConfig, Policy,
};
use vb_stats::report::{thousands, Table};
use vb_trace::Catalog;

const TRIO: [&str; 3] = ["NO-solar", "UK-wind", "PT-wind"];

fn run_policy(
    catalog: &Catalog,
    names: &[&str],
    cfg: &GroupSimConfig,
    p: &mut dyn Policy,
) -> (f64, f64, u64) {
    let s = GroupSim::new(catalog, names, cfg.clone())
        .expect("benchmark sites must exist in the catalog")
        .run(p);
    (s.total_gb, s.peak_gb, s.unavailable_app_steps)
}

fn ablate_k(catalog: &Catalog) {
    println!("== Ablation: clique size k (subgraph identification) ==");
    let mut t = Table::new(&["k", "best-clique cov", "diameter (ms)", "candidates"]);
    for k in 2..=5 {
        let cfg = PipelineConfig {
            k,
            candidates: 50,
            ..PipelineConfig::default()
        };
        let ranked = identify_subgraphs(catalog, &cfg);
        if let Some(best) = ranked.first() {
            t.row(&[
                k.to_string(),
                format!("{:.3}", best.cov),
                format!("{:.1}", best.diameter_ms),
                ranked.len().to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!("(lower cov = steadier group; diameter grows with k — the paper's latency/availability trade-off)\n");
}

fn ablate_horizon(catalog: &Catalog, cfg: &GroupSimConfig) {
    println!("== Ablation: look-ahead horizon ==");
    let mut t = Table::new(&["Policy", "Total (GB)", "Peak (GB)", "Unavail (app-steps)"]);
    let mut add = |name: &str, r: (f64, f64, u64)| {
        t.row(&[name.into(), thousands(r.0), thousands(r.1), r.2.to_string()]);
    };
    add(
        "Greedy (none)",
        run_policy(catalog, &TRIO, cfg, &mut GreedyPolicy::new()),
    );
    for (label, steps) in [
        ("MIP 6h", 24u32),
        ("MIP 24h", 96),
        ("MIP 3d", 288),
        ("MIP 7d", 672),
    ] {
        let mut mc = MipConfig::mip();
        mc.horizon_steps = steps;
        mc.name = label.into();
        add(
            label,
            run_policy(catalog, &TRIO, cfg, &mut MipPolicy::new(mc)),
        );
    }
    print!("{}", t.render());
    println!();
}

fn ablate_peak_weight(catalog: &Catalog, cfg: &GroupSimConfig) {
    println!("== Ablation: O2 peak weight (MIP-peak) ==");
    let mut t = Table::new(&["Peak weight", "Total (GB)", "Peak (GB)", "Std (GB)"]);
    for w in [0.0, 12.0, 24.0, 48.0] {
        let mut mc = MipConfig::mip_peak();
        mc.peak_weight = w;
        if w == 0.0 {
            mc.minimize_peak = false;
        }
        let s = GroupSim::new(catalog, &TRIO, cfg.clone())
            .expect("benchmark sites must exist in the catalog")
            .run(&mut MipPolicy::new(mc));
        t.row(&[
            format!("{w}"),
            thousands(s.total_gb),
            thousands(s.peak_gb),
            thousands(s.std_gb),
        ]);
    }
    print!("{}", t.render());
    println!();
}

fn ablate_util(catalog: &Catalog) {
    println!("== Ablation: admission-control utilization target ==");
    let mut t = Table::new(&["Target util", "Total (GB)", "Peak (GB)", "Unavail"]);
    for util in [0.6, 0.7, 0.8] {
        let cfg = GroupSimConfig {
            target_util: util,
            ..GroupSimConfig::default()
        };
        let r = run_policy(catalog, &TRIO, &cfg, &mut MipPolicy::new(MipConfig::mip()));
        t.row(&[
            format!("{util}"),
            thousands(r.0),
            thousands(r.1),
            r.2.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(tighter targets absorb more power variation for free, §3)\n");
}

fn ablate_forecast_quality(catalog: &Catalog, cfg: &GroupSimConfig) {
    println!("== Ablation: scheduler value vs forecast horizon used ==");
    // Approximate forecast degradation by shortening the fresh-forecast
    // window: a 6h-horizon MIP sees mostly 3h-quality forecasts; a
    // 7-day MIP leans on week-ahead quality for most of its horizon.
    let mut t = Table::new(&["Setup", "Total (GB)", "Peak (GB)"]);
    for (label, bucket) in [("fine buckets (3h)", 12u32), ("coarse buckets (12h)", 48)] {
        let cfg = GroupSimConfig {
            bucket_steps: bucket,
            ..cfg.clone()
        };
        let r = run_policy(catalog, &TRIO, &cfg, &mut MipPolicy::new(MipConfig::mip()));
        t.row(&[label.into(), thousands(r.0), thousands(r.1)]);
    }
    print!("{}", t.render());
}

fn ablate_subgraphs(catalog: &Catalog) {
    println!("== Ablation: subgraph (latency) constraint — Fig 6 step 2 ==");
    // Four sites; compare free re-hosting across all of them against
    // two disjoint 2-site subgraphs (apps stay within their group).
    let names = ["NO-solar", "UK-wind", "PT-wind", "ES-wind"];
    let mut t = Table::new(&[
        "Structure",
        "Total (GB)",
        "Peak (GB)",
        "Unavail (app-steps)",
    ]);
    for (label, groups) in [
        ("one 4-site group", None),
        ("2 disjoint pairs", Some(vec![vec![0usize, 1], vec![2, 3]])),
    ] {
        let cfg = GroupSimConfig {
            subgraphs: groups,
            ..GroupSimConfig::default()
        };
        let r = run_policy(catalog, &names, &cfg, &mut MipPolicy::new(MipConfig::mip()));
        t.row(&[
            label.into(),
            thousands(r.0),
            thousands(r.1),
            r.2.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(smaller subgraphs respect latency but strand more apps — the §3.1 availability/latency trade-off)\n");
}

fn main() {
    let run = vb_bench::report::BenchRun::start("ablations");
    let catalog = Catalog::europe(vb_bench::DEFAULT_SEED);
    let cfg = GroupSimConfig::default();
    ablate_subgraphs(&catalog);
    ablate_k(&catalog);
    ablate_horizon(&catalog, &cfg);
    ablate_peak_weight(&catalog, &cfg);
    ablate_util(&catalog);
    ablate_forecast_quality(&catalog, &cfg);
    run.finish();
}
