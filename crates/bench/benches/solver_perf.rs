//! Cold vs warm cross-epoch solver benchmark, plus model-size scaling.
//!
//! Part 1 solves the same Table-1-shaped placement MIP over a sequence
//! of epochs whose forecasts (RHS) drift while the structure stays
//! fixed — once with independent cold solves per epoch, once through
//! [`vb_solver::solve_mip_epoch`]'s cached-root reuse.
//!
//! Part 2 scales the instance (`VB_SOLVER_SCALES`, default
//! `1x,10x,100x` on the app count) into fleet-shaped MIPs where ~60 %
//! of the apps are pinned to their home site by singleton equality
//! rows — the shape presolve dissolves — and runs each scale through
//! the epoch path twice: once with [`KernelConfig::baseline`] (the
//! pre-presolve/devex/parallel explicit-tableau kernel) and once with
//! [`KernelConfig::production`] (factorized revised simplex +
//! steepest-edge), asserting identical optima. Rows report the
//! production kernel's refactorization and eta-update counts alongside
//! pivots. Like the fleet bench, a 1000× fleet-shaped row is opt-in:
//! `VB_SOLVER_SCALES=1x,10x,100x,1000x` (it solves a single epoch at
//! that size to keep wall-clock sane).
//!
//! Both parts are written to `BENCH_solver.json` (override the path
//! with `VB_BENCH_OUT`; empty string disables the file).

use std::time::Instant;
use vb_solver::branch::solve_mip_bounded_with;
use vb_solver::{
    solve_mip_epoch, solve_mip_epoch_with, EpochCache, KernelConfig, Model, Sense, VarId,
};

const EPOCHS: usize = 96;
const APPS: usize = 16;
const SITES: usize = 3;
const BUCKETS: usize = 6;
const MAX_NODES: usize = 100_000;

/// Deterministic pseudo-random stream (epoch-independent structure).
fn mix(seed: usize) -> f64 {
    let h = (seed as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Epoch `e` of the placement sequence: app demands, placement costs,
/// and the constraint matrix are epoch-invariant; only the per-site
/// capacity forecast (the displacement rows' RHS) drifts with `e`.
fn epoch_model(e: usize) -> Model {
    scaled_epoch_model(APPS, e, false)
}

/// [`epoch_model`] parameterized on the app count for the scaling
/// section. With `pin`, three of every five apps are additionally held
/// at their home site by a singleton equality row — real fleets pin
/// most placements (data gravity, licensing, latency) and only the
/// movable minority is decided per epoch. The singletons are exactly
/// what presolve folds away, so the scaling rows measure the production
/// kernel on the model shape it was built for.
fn scaled_epoch_model(apps: usize, e: usize, pin: bool) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<VarId>> = (0..apps)
        .map(|a| {
            (0..SITES)
                .map(|s| m.bin_var(&format!("a{a}s{s}")))
                .collect()
        })
        .collect();
    for row in &x {
        let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
        let expr = m.expr(&terms);
        m.add_eq(expr, 1.0);
    }
    if pin {
        for (a, row) in x.iter().enumerate() {
            if a % 5 < 3 {
                let expr = m.expr(&[(row[a % SITES], 1.0)]);
                m.add_eq(expr, 1.0);
            }
        }
    }
    let cores: Vec<f64> = (0..apps).map(|a| 20.0 * (1.0 + (a % 4) as f64)).collect();
    // Each app has a home site (zero placement cost) and distinct
    // positive costs elsewhere, and every site runs a drifting deficit:
    // the root relaxation has a unique, integral optimum (everyone
    // stays home), which is the co-scheduler's common case — epochs are
    // root-dominated rather than branching-dominated, and the RHS drift
    // is what the warm repair has to absorb.
    let home_load: Vec<f64> = (0..SITES)
        .map(|s| (0..apps).filter(|a| a % SITES == s).map(|a| cores[a]).sum())
        .collect();
    let mut objective = Vec::new();
    for s in 0..SITES {
        for b in 0..BUCKETS {
            let d = m.var(&format!("d{s}b{b}"), 0.0, f64::INFINITY);
            let deficit = 0.6 + 0.3 * mix(1000 * e + 10 * s + b);
            let capacity = home_load[s] * deficit;
            let mut lhs = vec![(d, 1.0)];
            for (a, xr) in x.iter().enumerate() {
                lhs.push((xr[s], -cores[a]));
            }
            let expr = m.expr(&lhs);
            m.add_ge(expr, -capacity.round());
            objective.push((d, 4.0));
        }
    }
    for (a, row) in x.iter().enumerate() {
        for (s, &v) in row.iter().enumerate() {
            if s != a % SITES {
                objective.push((v, (10 + (7 * a + 3 * s) % 13) as f64));
            }
        }
    }
    let expr = m.expr(&objective);
    m.set_objective(expr);
    m
}

fn pivots_now() -> u64 {
    counter_now("solver.pivots")
}

fn counter_now(name: &str) -> u64 {
    vb_telemetry::snapshot().counter(name).unwrap_or(0)
}

/// One model-size scaling measurement: the same epoch sequence pushed
/// through the epoch path with the PR-7-era baseline kernel and with
/// the production kernel (presolve + devex + parallel B&B).
struct ScaleRow {
    label: String,
    apps: usize,
    vars: usize,
    rows: usize,
    epochs: usize,
    baseline_secs: f64,
    kernel_secs: f64,
    speedup: f64,
    baseline_pivots: u64,
    kernel_pivots: u64,
    presolve_vars_fixed: u64,
    refactorizations: u64,
    eta_updates: u64,
    max_objective_drift: f64,
}

fn run_scale(label: &str, mult: usize) -> ScaleRow {
    let apps = APPS * mult;
    // Bigger instances need fewer epochs to dominate the measurement;
    // the opt-in 1000x row gets a single epoch.
    let epochs = if mult >= 1000 {
        1
    } else if mult >= 100 {
        2
    } else if mult >= 10 {
        4
    } else {
        8
    };
    let models: Vec<Model> = (0..epochs)
        .map(|e| scaled_epoch_model(apps, e, true))
        .collect();
    let run_kernel = |kernel: &KernelConfig| {
        let p = pivots_now();
        let t = Instant::now();
        let mut cache: Option<EpochCache> = None;
        let mut objs: Vec<f64> = Vec::with_capacity(epochs);
        for m in &models {
            let (sol, next, _hit) = solve_mip_epoch_with(m, MAX_NODES, cache.as_ref(), kernel)
                .expect("scaled placement epochs are feasible");
            cache = Some(next);
            objs.push(sol.objective);
        }
        (t.elapsed().as_secs_f64(), pivots_now() - p, objs)
    };
    let (baseline_secs, baseline_pivots, base_obj) = run_kernel(&KernelConfig::baseline());
    let fixed0 = counter_now("solver.presolve_vars_fixed");
    let refac0 = counter_now("solver.refactorizations");
    let eta0 = counter_now("solver.eta_updates");
    let (kernel_secs, kernel_pivots, kern_obj) = run_kernel(&KernelConfig::production());
    let presolve_vars_fixed = counter_now("solver.presolve_vars_fixed") - fixed0;
    let refactorizations = counter_now("solver.refactorizations") - refac0;
    let eta_updates = counter_now("solver.eta_updates") - eta0;
    let max_objective_drift = base_obj
        .iter()
        .zip(&kern_obj)
        .map(|(b, k)| (b - k).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_objective_drift < 1e-6,
        "{label}: production kernel changed an optimum by {max_objective_drift}"
    );
    ScaleRow {
        label: label.to_string(),
        apps,
        vars: models[0].num_vars(),
        rows: models[0].num_constraints(),
        epochs,
        baseline_secs,
        kernel_secs,
        speedup: if kernel_secs > 0.0 {
            baseline_secs / kernel_secs
        } else {
            0.0
        },
        baseline_pivots,
        kernel_pivots,
        presolve_vars_fixed,
        refactorizations,
        eta_updates,
        max_objective_drift,
    }
}

fn main() {
    let run = vb_bench::report::BenchRun::start("solver_perf");
    let models: Vec<Model> = (0..EPOCHS).map(epoch_model).collect();

    // Cold path: every epoch solved from scratch (B&B children still
    // warm-start from their parents — that part is shared). The bench is
    // single-threaded, so per-epoch pivot deltas off the global counter
    // are exact — they go into the `solver.epoch_series` so a regression
    // can be pinned to the epoch that blew the pivot budget.
    let p0 = pivots_now();
    let t0 = Instant::now();
    let mut cold_obj: Vec<f64> = Vec::with_capacity(EPOCHS);
    for (e, m) in models.iter().enumerate() {
        let ep = pivots_now();
        let et = Instant::now();
        let sol =
            solve_mip_bounded_with(m, MAX_NODES, true).expect("placement epochs are feasible");
        vb_telemetry::series_sample(
            "solver.epoch_series",
            "cold",
            e as u64,
            &[
                ("pivots", (pivots_now() - ep) as f64),
                ("secs", et.elapsed().as_secs_f64()),
                ("objective", sol.objective),
            ],
        );
        cold_obj.push(sol.objective);
    }
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_pivots = pivots_now() - p0;

    // Warm path: each epoch's root repaired from the previous optimum.
    let p1 = pivots_now();
    let t1 = Instant::now();
    let mut cache: Option<EpochCache> = None;
    let mut warm_hits = 0usize;
    let mut warm_obj: Vec<f64> = Vec::with_capacity(EPOCHS);
    for (e, m) in models.iter().enumerate() {
        let ep = pivots_now();
        let et = Instant::now();
        let (sol, next, hit) =
            solve_mip_epoch(m, MAX_NODES, cache.as_ref()).expect("placement epochs are feasible");
        cache = Some(next);
        warm_hits += hit as usize;
        vb_telemetry::series_sample(
            "solver.epoch_series",
            "warm",
            e as u64,
            &[
                ("pivots", (pivots_now() - ep) as f64),
                ("secs", et.elapsed().as_secs_f64()),
                ("objective", sol.objective),
                ("warm_hit", hit as u64 as f64),
            ],
        );
        warm_obj.push(sol.objective);
    }
    let warm_secs = t1.elapsed().as_secs_f64();
    let warm_pivots = pivots_now() - p1;

    let drift = cold_obj
        .iter()
        .zip(&warm_obj)
        .map(|(c, w)| (c - w).abs())
        .fold(0.0f64, f64::max);
    assert!(drift < 1e-6, "warm epochs changed an optimum by {drift}");

    let pivot_cut = if cold_pivots > 0 {
        1.0 - warm_pivots as f64 / cold_pivots as f64
    } else {
        0.0
    };
    let speedup = if warm_secs > 0.0 {
        cold_secs / warm_secs
    } else {
        0.0
    };
    println!("epoch reuse over {EPOCHS} epochs ({APPS} apps x {SITES} sites x {BUCKETS} buckets):");
    println!("  cold: {cold_secs:.4}s, {cold_pivots} pivots");
    println!(
        "  warm: {warm_secs:.4}s, {warm_pivots} pivots ({warm_hits}/{} hits)",
        EPOCHS - 1
    );
    println!(
        "  speedup {speedup:.2}x, pivots cut {:.0}%",
        100.0 * pivot_cut
    );

    // Part 2: model-size scaling, baseline kernel vs production kernel.
    let scales_env = std::env::var("VB_SOLVER_SCALES").unwrap_or_else(|_| "1x,10x,100x".into());
    let scales = match vb_bench::scales::parse_scales(&scales_env, "VB_SOLVER_SCALES") {
        Ok(scales) => scales,
        Err(err) => {
            eprintln!("solver_perf: {err}");
            std::process::exit(2);
        }
    };
    let mut scale_rows: Vec<ScaleRow> = Vec::new();
    println!("kernel scaling (baseline vs presolve+devex+parallel):");
    for (label, mult) in &scales {
        let row = run_scale(label, *mult as usize);
        println!(
            "  {}: {} apps ({} vars x {} rows) x {} epochs: \
             baseline {:.4}s/{} pivots, kernel {:.4}s/{} pivots, \
             speedup {:.2}x, {} vars presolved away, \
             {} refactorizations, {} eta updates, drift {:.1e}",
            row.label,
            row.apps,
            row.vars,
            row.rows,
            row.epochs,
            row.baseline_secs,
            row.baseline_pivots,
            row.kernel_secs,
            row.kernel_pivots,
            row.speedup,
            row.presolve_vars_fixed,
            row.refactorizations,
            row.eta_updates,
            row.max_objective_drift,
        );
        scale_rows.push(row);
    }

    let scaling_json: Vec<String> = scale_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"scale\": \"{}\",\n      \"apps\": {},\n      \"vars\": {},\n      \"rows\": {},\n      \"epochs\": {},\n      \"baseline_secs\": {:.6},\n      \"kernel_secs\": {:.6},\n      \"speedup\": {:.4},\n      \"baseline_pivots\": {},\n      \"kernel_pivots\": {},\n      \"presolve_vars_fixed\": {},\n      \"refactorizations\": {},\n      \"eta_updates\": {},\n      \"max_objective_drift\": {:.3e}\n    }}",
                r.label,
                r.apps,
                r.vars,
                r.rows,
                r.epochs,
                r.baseline_secs,
                r.kernel_secs,
                r.speedup,
                r.baseline_pivots,
                r.kernel_pivots,
                r.presolve_vars_fixed,
                r.refactorizations,
                r.eta_updates,
                r.max_objective_drift,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"solver_epoch_reuse\",\n  \"epochs\": {EPOCHS},\n  \"apps\": {APPS},\n  \"sites\": {SITES},\n  \"buckets\": {BUCKETS},\n  \"cold_secs\": {cold_secs:.6},\n  \"warm_secs\": {warm_secs:.6},\n  \"speedup\": {speedup:.4},\n  \"cold_pivots\": {cold_pivots},\n  \"warm_pivots\": {warm_pivots},\n  \"pivot_reduction\": {pivot_cut:.4},\n  \"warm_hits\": {warm_hits},\n  \"max_objective_drift\": {drift:.3e},\n  \"scaling\": [\n{}\n  ]\n}}\n",
        scaling_json.join(",\n")
    );
    // Default next to the workspace root (cargo runs benches from the
    // package directory), overridable with VB_BENCH_OUT.
    let path = std::env::var("VB_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json").into());
    if !path.is_empty() {
        // Create the parent dir: VB_BENCH_OUT may point into a report
        // dir that only exists after `run.finish()` (see fleet_perf).
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(err) => eprintln!("could not write {path}: {err}"),
        }
    }
    run.finish();
}
