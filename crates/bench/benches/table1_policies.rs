//! Regenerates the paper artifact; see `vb_bench::table1`.

fn main() {
    let run = vb_bench::report::BenchRun::start("table1_policies");
    let report = vb_bench::table1::run(vb_bench::DEFAULT_SEED);
    vb_bench::table1::print(&report);
    run.finish();
}
