//! Regenerates the paper artifact; see `vb_bench::table1`.

fn main() {
    let t0 = std::time::Instant::now();
    let report = vb_bench::table1::run(vb_bench::DEFAULT_SEED);
    vb_bench::table1::print(&report);
    println!(
        "\n[table1_policies completed in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );
}
