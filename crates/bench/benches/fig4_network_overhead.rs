//! Regenerates the paper artifact; see `vb_bench::fig4`.

fn main() {
    let run = vb_bench::report::BenchRun::start("fig4_network_overhead");
    let report = vb_bench::fig4::run(vb_bench::DEFAULT_SEED);
    vb_bench::fig4::print(&report);
    run.finish();
}
