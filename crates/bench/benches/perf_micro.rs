//! Criterion microbenchmarks of the workspace's hot paths: trace
//! generation, the simplex/MIP solver, k-clique enumeration, and the
//! cluster-simulator step loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vb_cluster::{Cluster, ClusterConfig, Workload, WorkloadConfig};
use vb_net::{k_cliques, SiteGraph};
use vb_solver::{Model, Sense, VarId};
use vb_trace::{Catalog, Site, WeatherField};

fn bench_trace_generation(c: &mut Criterion) {
    let field = WeatherField::new(1);
    let solar = Site::solar("s", 50.8, 4.4);
    let wind = Site::wind("w", 50.8, 4.4);
    c.bench_function("trace/solar_week", |b| {
        b.iter(|| vb_trace::generate_in(&solar, 120, 7, &field))
    });
    c.bench_function("trace/wind_week", |b| {
        b.iter(|| vb_trace::generate_in(&wind, 120, 7, &field))
    });
}

fn bench_solver(c: &mut Criterion) {
    // A placement-shaped MIP: 8 apps × 4 sites with capacity rows.
    let build = || {
        let mut m = Model::new(Sense::Minimize);
        let x: Vec<Vec<VarId>> = (0..8)
            .map(|a| (0..4).map(|s| m.bin_var(&format!("x{a}{s}"))).collect())
            .collect();
        for row in &x {
            let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
            let e = m.expr(&terms);
            m.add_eq(e, 1.0);
        }
        let mut obj = vb_solver::LinExpr::zero();
        for s in 0..4 {
            let d = m.var(&format!("d{s}"), 0.0, f64::INFINITY);
            let mut lhs = vb_solver::LinExpr::term(d, 1.0);
            for (a, row) in x.iter().enumerate() {
                lhs = lhs.add_term(row[s], -(10.0 + a as f64));
            }
            m.add_ge(lhs, -30.0);
            obj = obj.add_term(d, 4.0);
        }
        m.set_objective(obj);
        m
    };
    c.bench_function("solver/placement_mip", |b| {
        b.iter_batched(build, |m| m.solve().unwrap(), BatchSize::SmallInput)
    });
    c.bench_function("solver/placement_mip_cold_nodes", |b| {
        b.iter_batched(
            build,
            |m| vb_solver::branch::solve_mip_bounded_with(&m, 10_000, false).unwrap(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("solver/placement_mip_warm_nodes", |b| {
        b.iter_batched(
            build,
            |m| vb_solver::branch::solve_mip_bounded_with(&m, 10_000, true).unwrap(),
            BatchSize::SmallInput,
        )
    });

    let lp = || {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..50)
            .map(|i| m.var(&format!("v{i}"), 0.0, 10.0))
            .collect();
        for k in 0..25 {
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i + k) % 7) as f64 + 1.0))
                .collect();
            let e = m.expr(&terms);
            m.add_le(e, 100.0);
        }
        let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        let e = m.expr(&terms);
        m.set_objective(e);
        m
    };
    c.bench_function("solver/lp_50x25", |b| {
        b.iter_batched(lp, |m| m.solve().unwrap(), BatchSize::SmallInput)
    });
}

fn bench_cliques(c: &mut Criterion) {
    let catalog = Catalog::europe(1);
    let graph = SiteGraph::with_default_threshold(catalog.sites().to_vec());
    c.bench_function("net/k_cliques_k3_25sites", |b| {
        b.iter(|| k_cliques(&graph, 3))
    });
    c.bench_function("net/k_cliques_k5_25sites", |b| {
        b.iter(|| k_cliques(&graph, 5))
    });
}

fn bench_cluster_step(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let wl = WorkloadConfig::for_cluster(cfg.total_cores(), cfg.target_util);
    c.bench_function("cluster/step_700_servers", |b| {
        b.iter_batched(
            || {
                let mut cluster = Cluster::new(cfg.clone());
                let mut workload = Workload::new(wl.clone(), 3);
                for (req, residual) in workload.steady_state_population() {
                    cluster.place_migrated(req, residual as u64);
                }
                (cluster, workload)
            },
            |(mut cluster, mut workload)| {
                for step in 0..8 {
                    let arrivals = workload.step();
                    let power = if step % 2 == 0 { 0.8 } else { 0.4 };
                    cluster.step(power, &arrivals);
                }
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_generation, bench_solver, bench_cliques, bench_cluster_step
}
criterion_main!(benches);
