//! Extension experiments: the paper's *arguments* (as opposed to its
//! figures) made measurable.
//!
//! * **§1 / motivation** — chemical batteries vs multi-VB: how many MWh
//!   of Li-ion storage a single site needs to match the stable-energy
//!   share that aggregating three sites provides for free.
//! * **§2.1 economics** — transmission savings, curtailment capture, and
//!   the revenue uplift of aggregation under the stable-vs-spot price
//!   split.
//! * **§3 replication vs migration** — the hot/cold standby alternative:
//!   continuous smooth traffic and doubled capacity vs bursty on-demand
//!   migration.
//! * **§5 energy accounting** — how much energy migrations add, and how
//!   much of the farm's energy the site actually harvests.

use vb_cluster::{energy_report, simulate_paper_site, PowerModel};
use vb_core::energy::WINDOW_3_DAYS;
use vb_core::{decompose, required_capacity_for_stable_fraction, EconomicModel, MultiVb};
use vb_net::WanModel;
use vb_sched::{GreedyPolicy, GroupSim, GroupSimConfig, ReplicationModel, StandbyMode};
use vb_stats::report::{thousands, Table};
use vb_trace::Catalog;

const TRIO: [&str; 3] = ["NO-solar", "UK-wind", "PT-wind"];

fn battery_vs_multivb(catalog: &Catalog) {
    println!("== §1: chemical battery vs multi-VB aggregation ==");
    let group = MultiVb::from_catalog(catalog, &TRIO, 90, 7);
    let combined = decompose(&group.combined(), WINDOW_3_DAYS);
    println!(
        "multi-VB trio stable share: {:.0}% of {:.0} MWh (no storage at all)",
        100.0 * combined.stable_fraction(),
        combined.total_mwh()
    );

    let mut t = Table::new(&[
        "Site",
        "Own stable %",
        "Li-ion MWh to match trio",
        "% of 3-day gen",
    ]);
    for (i, site) in group.sites().iter().enumerate() {
        let trace = &group.traces()[i];
        let own = decompose(trace, WINDOW_3_DAYS);
        let needed =
            required_capacity_for_stable_fraction(trace, WINDOW_3_DAYS, combined.stable_fraction());
        let (cap, pct) = match needed {
            Some(c) => (thousands(c), format!("{:.0}%", 100.0 * c / trace.energy())),
            None => ("unreachable".to_string(), "-".to_string()),
        };
        t.row(&[
            site.name.clone(),
            format!("{:.0}%", 100.0 * own.stable_fraction()),
            cap,
            pct,
        ]);
    }
    print!("{}", t.render());
    println!("(the paper: US grid battery capacity is ~0.4% of solar+wind capacity — nowhere near these numbers)\n");
}

fn economics(catalog: &Catalog) {
    println!("== §2.1: the economic case ==");
    let model = EconomicModel::default();
    println!(
        "transmission savings: {:.0}% of total opex  [paper: ~10% = 20% x 50%]",
        100.0 * model.transmission_savings_fraction()
    );

    let group = MultiVb::from_catalog(catalog, &TRIO, 90, 7);
    let generated = group.combined().energy();
    println!(
        "curtailment capture: {:.0} MWh/week on the trio ({:.0}% of generation)  [paper: up to 6%]",
        model.curtailment_capture_mwh(generated),
        100.0 * model.curtailment_fraction
    );

    let members: Vec<_> = group
        .traces()
        .iter()
        .map(|t| decompose(t, WINDOW_3_DAYS))
        .collect();
    let combined = group.breakdown(WINDOW_3_DAYS);
    println!(
        "aggregation revenue uplift: {:.2}x (same energy, more of it stable; spot at {:.0}% of stable price)",
        model.aggregation_uplift(&members, &combined),
        100.0 * model.spot_price_ratio
    );
    println!();
}

fn replication_vs_migration(catalog: &Catalog) {
    println!("== §3: replication vs migration for stable apps ==");
    let cfg = GroupSimConfig::default();
    let run = GroupSim::new(catalog, &TRIO, cfg)
        .expect("benchmark sites must exist in the catalog")
        .run_detailed(&mut GreedyPolicy::new());

    let mut t = Table::new(&[
        "Mechanism",
        "Total (GB)",
        "Peak (GB/15min)",
        "Capacity overhead",
    ]);
    t.row(&[
        "Migration (measured)".into(),
        thousands(run.summary.total_gb),
        thousands(run.summary.peak_gb),
        "0%".into(),
    ]);
    for (label, model) in [
        ("Hot standby (Remus-style)", ReplicationModel::default()),
        (
            "Cold standby (hourly ckpt)",
            ReplicationModel {
                mode: StandbyMode::Cold,
                checkpoint_interval_steps: 4,
                ..ReplicationModel::default()
            },
        ),
    ] {
        let r = model.evaluate(&run);
        t.row(&[
            label.into(),
            thousands(r.total_gb),
            thousands(r.peak_gb),
            format!("{:.0}%", 100.0 * r.capacity_overhead),
        ]);
    }
    print!("{}", t.render());
    println!("(migration is bursty but rare; continuous replication is smooth but moves far more data and doubles hot capacity — the §3 trade-off)\n");
}

fn energy_accounting(catalog: &Catalog) {
    println!("== §5: energy accounting of a VB site ==");
    let power = catalog.trace("BE-wind", 122, 7);
    let out = simulate_paper_site(&power, vb_bench::DEFAULT_SEED);
    let model = PowerModel::default();
    let report = energy_report(&model, &out.steps, 28_000, 900.0);
    println!(
        "available {:.1} MWh, used {:.1} MWh ({:.0}% harvested)",
        report.available_mwh,
        report.used_mwh,
        100.0 * report.utilization
    );

    // Migration energy: bytes moved over the WAN at ~25 GB/s per 200 Gbps
    // link; NIC+switch draw while active ≈ a few kW.
    let wan = WanModel::default();
    let total_gb: f64 = out.out_gb().iter().chain(out.in_gb().iter()).sum();
    let busy_hours = wan.drain_secs(total_gb) / 3_600.0;
    let wan_mwh = busy_hours * 5e-3; // ~5 kW of transport gear at full rate
    println!(
        "migration energy: {:.1} TB moved -> link busy {:.1} h -> ~{:.3} MWh ({:.4}% of used)  [paper: negligible vs up-to-50% transmission loss]",
        total_gb / 1_000.0,
        busy_hours,
        wan_mwh,
        100.0 * wan_mwh / report.used_mwh.max(1e-9)
    );
}

fn main() {
    let run = vb_bench::report::BenchRun::start("extensions");
    let catalog = Catalog::europe(vb_bench::DEFAULT_SEED);
    battery_vs_multivb(&catalog);
    economics(&catalog);
    replication_vs_migration(&catalog);
    energy_accounting(&catalog);
    run.finish();
}
