//! Regenerates the paper artifact; see `vb_bench::fig5`.

fn main() {
    let run = vb_bench::report::BenchRun::start("fig5_forecast");
    let report = vb_bench::fig5::run(vb_bench::DEFAULT_SEED);
    vb_bench::fig5::print(&report);
    run.finish();
}
