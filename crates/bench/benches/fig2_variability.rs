//! Regenerates the paper artifact; see `vb_bench::fig2`.

fn main() {
    let t0 = std::time::Instant::now();
    let report = vb_bench::fig2::run(vb_bench::DEFAULT_SEED);
    vb_bench::fig2::print(&report);
    println!(
        "\n[fig2_variability completed in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );
}
