//! Regenerates the paper artifact; see `vb_bench::fig2`.

fn main() {
    let run = vb_bench::report::BenchRun::start("fig2_variability");
    let report = vb_bench::fig2::run(vb_bench::DEFAULT_SEED);
    vb_bench::fig2::print(&report);
    run.finish();
}
