//! Fleet-scale simulation benchmark: event-driven vs legacy step core.
//!
//! Runs sharded fleets at paper-scale multiples of the Table 1 group —
//! 10× (30 sites) and 100× (300 sites) by default, 1000× opt-in via
//! `VB_FLEET_SCALES=10x,100x,1000x` — under both step drivers, asserts
//! the runs are **bit-identical**, and writes the throughput comparison
//! to `BENCH_fleet.json` (`VB_BENCH_OUT` overrides the path; empty
//! string disables the file, `check_bench.py` gates the committed
//! baseline).
//!
//! Shard *construction* (trace + forecast generation) is identical
//! under either driver and excluded from the timers; the timed region
//! is exactly the per-step simulation work the event core rewrites.
//! Throughput is reported as site-steps/sec (`sites × steps / secs`)
//! and VM-decisions/sec; memory as the `VmHWM` peak-RSS proxy from
//! `/proc/self/status` (0 where unavailable).

use std::sync::Mutex;
use std::time::Instant;
use vb_core::fleet::{shard_names, FleetPolicy};
use vb_sched::{AppGenConfig, GroupSim, GroupSimConfig, PolicySummary, SimCore};
use vb_trace::Catalog;

/// Sites per shard: the Table 1 multi-VB group size.
const SHARD_SIZE: usize = 3;
const DAYS: u32 = 84;
const SEED: u64 = 42;

/// Peak resident-set size in MB from `/proc/self/status` (`VmHWM`), or
/// 0.0 where the proc interface is unavailable (non-Linux).
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

fn fleet_cfg(core: SimCore) -> GroupSimConfig {
    GroupSimConfig {
        days: DAYS,
        seed: SEED,
        core,
        // Fixed per-shard arrival rate (rather than auto-sizing per
        // shard's weather draw): every shard sees a comparable workload
        // and the fleet's total VM count scales linearly with the site
        // count — the follow-up paper's ~10⁵–10⁶ VM regime. Many tiny
        // apps (1–2 VMs × 2 cores), almost all degradable (the
        // renewable-DC premise: batch work that hibernates through dips
        // rather than migrating), at calm ~15 % occupancy: 4/step ×
        // ~198-step mean lifetime × ~3 cores ≈ 2.4 k cores against
        // ≈ 17–20 k admissible. Quiescent steps are the fleet norm the
        // event core exploits; the twelve-week horizon exposes the
        // legacy core's registry-scan growth (its per-step scans walk
        // every app ever admitted, so its aggregate cost grows with the
        // square of the run length while the event core stays linear).
        epoch_steps: vb_sched::STEPS_PER_DAY,
        app_cfg: Some(AppGenConfig {
            arrivals_per_step: 4.0,
            vms_min: 1,
            vms_max: 2,
            cores_per_vm: 2,
            degradable_fraction: 0.95,
            ..AppGenConfig::default()
        }),
        ..GroupSimConfig::default()
    }
}

/// Build every shard's sim (untimed), then run them all (timed),
/// returning per-shard summaries in shard order plus the wall-clock of
/// the timed region.
fn run_shards(
    catalog: &Catalog,
    shards: &[Vec<String>],
    policy: FleetPolicy,
    core: SimCore,
) -> (Vec<PolicySummary>, f64) {
    let sims: Vec<Mutex<Option<GroupSim>>> = vb_par::par_map(shards.len(), |i| {
        let names: Vec<&str> = shards[i].iter().map(String::as_str).collect();
        let cfg = GroupSimConfig {
            // Same per-shard seed derivation as `vb_core::fleet::run_fleet`.
            seed: SEED.wrapping_add(1 + i as u64),
            ..fleet_cfg(core)
        };
        GroupSim::new(catalog, &names, cfg).expect("fleet catalog names resolve")
    })
    .into_iter()
    .map(|sim| Mutex::new(Some(sim)))
    .collect();

    let t0 = Instant::now();
    let summaries = vb_par::par_map(shards.len(), |i| {
        let sim = sims[i]
            .lock()
            .expect("no panics while holding the sim slot")
            .take()
            .expect("each shard slot is taken exactly once");
        let mut policy = policy.build();
        sim.run(policy.as_mut())
    });
    (summaries, t0.elapsed().as_secs_f64())
}

struct Row {
    scale: String,
    sites: usize,
    shards: usize,
    policy: &'static str,
    event_secs: f64,
    legacy_secs: f64,
    vm_decisions: u64,
    total_gb: f64,
    dropped_apps: usize,
}

fn main() {
    let run = vb_bench::report::BenchRun::start("fleet_perf");
    let scales_env = std::env::var("VB_FLEET_SCALES").unwrap_or_else(|_| "10x,100x".to_string());
    // Validate the whole list before benchmarking anything: a typo in the
    // last entry must not surface after minutes of work on the earlier ones.
    let scales: Vec<(String, usize)> =
        match vb_bench::scales::parse_scales(&scales_env, "VB_FLEET_SCALES") {
            Ok(scales) => scales
                .into_iter()
                .map(|(label, mult)| (label, mult as usize * SHARD_SIZE))
                .collect(),
            Err(err) => {
                eprintln!("fleet_perf: {err}");
                std::process::exit(2);
            }
        };

    let steps = DAYS as u64 * vb_trace::STEPS_PER_DAY as u64;
    let mut rows: Vec<Row> = Vec::new();
    for (scale, n_sites) in &scales {
        let catalog = Catalog::fleet(SEED, *n_sites);
        let shards = shard_names(&catalog, SHARD_SIZE);
        let policy = FleetPolicy::Greedy;

        let (legacy, legacy_secs) = run_shards(&catalog, &shards, policy, SimCore::Legacy);
        let (event, event_secs) = run_shards(&catalog, &shards, policy, SimCore::EventDriven);
        assert_eq!(
            legacy, event,
            "{scale}: event-driven fleet diverged from the legacy core"
        );

        let vm_decisions: u64 = event.iter().map(|s| s.vm_decisions).sum();
        let total_gb: f64 = event.iter().map(|s| s.total_gb).sum();
        let dropped_apps: usize = event.iter().map(|s| s.dropped_apps).sum();
        let site_steps = (*n_sites as u64 * steps) as f64;
        println!(
            "{scale}: {n_sites} sites x {steps} steps, {} shards [{}]",
            shards.len(),
            policy.name()
        );
        println!(
            "  legacy {legacy_secs:.3}s ({:.0} site-steps/s) | event {event_secs:.3}s ({:.0} site-steps/s) | speedup {:.1}x",
            site_steps / legacy_secs,
            site_steps / event_secs,
            legacy_secs / event_secs
        );
        println!(
            "  {vm_decisions} VM decisions ({:.0}/s), {total_gb:.1} GB moved, {dropped_apps} dropped",
            vm_decisions as f64 / event_secs
        );
        rows.push(Row {
            scale: scale.clone(),
            sites: *n_sites,
            shards: shards.len(),
            policy: policy.name(),
            event_secs,
            legacy_secs,
            vm_decisions,
            total_gb,
            dropped_apps,
        });
    }

    let rss = peak_rss_mb();
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            let site_steps = (r.sites as u64 * steps) as f64;
            format!(
                "    {{\n      \"scale\": \"{}\",\n      \"sites\": {},\n      \"shards\": {},\n      \"days\": {DAYS},\n      \"steps\": {steps},\n      \"policy\": \"{}\",\n      \"event_secs\": {:.6},\n      \"legacy_secs\": {:.6},\n      \"event_steps_per_sec\": {:.1},\n      \"legacy_steps_per_sec\": {:.1},\n      \"speedup\": {:.4},\n      \"vm_decisions\": {},\n      \"vm_decisions_per_sec\": {:.1},\n      \"total_gb\": {:.3},\n      \"dropped_apps\": {},\n      \"peak_rss_mb\": {rss:.1}\n    }}",
                r.scale,
                r.sites,
                r.shards,
                r.policy,
                r.event_secs,
                r.legacy_secs,
                site_steps / r.event_secs,
                site_steps / r.legacy_secs,
                r.legacy_secs / r.event_secs,
                r.vm_decisions,
                r.vm_decisions as f64 / r.event_secs,
                r.total_gb,
                r.dropped_apps,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fleet_sim\",\n  \"shard_size\": {SHARD_SIZE},\n  \"rows\": [\n{}\n  ]\n}}\n",
        row_json.join(",\n")
    );
    let path = std::env::var("VB_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json").into());
    if !path.is_empty() {
        // The run-report dir is only created at `run.finish()`, after
        // this write — create the parent here so pointing VB_BENCH_OUT
        // into a fresh VB_REPORT_DIR (the CI fleet job does) works.
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(err) => eprintln!("could not write {path}: {err}"),
        }
    }
    run.finish();
}
