//! # vb-bench — the experiment harness
//!
//! One module per paper artifact; each has a `run(seed) -> …Report`
//! function returning the numbers and a `print` routine emitting the
//! same rows/series the paper's figure or table shows. The `benches/`
//! targets are thin wrappers, so `cargo bench -p vb-bench` regenerates
//! every figure and table:
//!
//! | Target                  | Paper artifact                           |
//! |-------------------------|------------------------------------------|
//! | `fig2_variability`      | Fig 2a/2b — solar & wind variability     |
//! | `fig3_aggregation`      | Fig 3a/3b + §2.3 pair & purchase stats   |
//! | `fig4_network_overhead` | Fig 4a/4b + §3/§5 WAN statistics         |
//! | `fig5_forecast`         | Fig 5 — forecast MAPE by horizon         |
//! | `table1_policies`       | Table 1 + Fig 7 — scheduler comparison   |
//! | `ablations`             | design-choice sweeps (k, horizon, util…) |
//! | `perf_micro`            | criterion microbenches of the hot paths  |
//!
//! Every run is deterministic for a given seed; `EXPERIMENTS.md` records
//! the seed-42 outputs against the paper's numbers.

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod report;
pub mod scales;
pub mod table1;

/// The default seed used by EXPERIMENTS.md.
pub const DEFAULT_SEED: u64 = 42;
