//! Figure 3 — "Reducing variability in energy production by aggregating
//! multiple VB sites", plus the §2.3 pair-sweep and grid-purchase
//! statistics.
//!
//! * **Fig 3a**: the NO-solar / UK-wind / PT-wind stack over ~3 days,
//!   with cov reductions of 3.7× (adding UK wind) and a further ~2.3×
//!   (adding PT wind), and the purchased-energy fill of the worst gaps.
//! * **Fig 3b**: the stable/variable energy split of all 7 combinations
//!   (variable shares ≈ 100/65/91/62/83/32/33 % in the paper).
//! * **§2.3 pair statistic**: ">52 % of possible 2-site combinations
//!   improved cov by >50 %".
//! * **§2.3 purchase**: "purchasing an additional 4 000 MWh … a total
//!   additional 12 000 MWh of stable energy" (leverage 3×).

use vb_core::energy::WINDOW_3_DAYS;
use vb_core::multivb::ComboBreakdown;
use vb_core::{optimize_purchase, search_pairs, ComboStats, MultiVb, PurchasePlan};
use vb_stats::TimeSeries;
use vb_trace::Catalog;

/// The Figure 3 trio, as named in the paper.
pub const TRIO: [&str; 3] = ["NO-solar", "UK-wind", "PT-wind"];

/// Everything Figure 3 shows.
#[derive(Debug, Clone)]
pub struct Fig3Report {
    /// Per-site MW traces of the trio over the 3-day window (Fig 3a).
    pub stack: Vec<(String, TimeSeries)>,
    /// cov of NO-solar alone, NO+UK, NO+UK+PT.
    pub cov_no: f64,
    pub cov_no_uk: f64,
    pub cov_trio: f64,
    /// Energy split per combination (Fig 3b).
    pub combos: Vec<ComboBreakdown>,
    /// Pair-sweep statistics over the whole catalog.
    pub pair_stats: ComboStats,
    /// Grid-purchase plan on the trio (§2.3's 4 000 MWh experiment).
    pub purchase: PurchasePlan,
}

/// Generate the Figure 3 data over a 3-day early-spring window — like
/// the paper's hand-picked May 2015 days, a window where the trio's
/// complementarity is clearly visible (solar still weak in Norway,
/// Atlantic fronts crossing UK and Portugal out of phase).
pub fn run(seed: u64) -> Fig3Report {
    let catalog = Catalog::europe(seed);
    let start_day = 90;
    let days = 3;
    let group = MultiVb::from_catalog(&catalog, &TRIO, start_day, days);

    let traces = group.traces();
    let stack: Vec<(String, TimeSeries)> = group
        .sites()
        .iter()
        .zip(traces)
        .map(|(s, t)| (s.name.clone(), t.clone()))
        .collect();

    let no = MultiVb::new(vec![group.sites()[0].clone()], vec![traces[0].clone()]);
    let no_uk = MultiVb::new(group.sites()[..2].to_vec(), traces[..2].to_vec());

    let combos = group.subset_breakdowns(WINDOW_3_DAYS);
    let (_, pair_stats) = search_pairs(&catalog, start_day, days, 50.0);

    // §2.3: buy a small amount of grid energy to fill the worst gaps.
    // The paper buys 4 000 MWh against a trio producing ~30 000 MWh over
    // 3 days; we budget the same ~13 % of total energy.
    let combined = group.combined();
    let budget = combined.energy() * 0.13;
    let purchase = optimize_purchase(&combined, combined.len(), budget);

    Fig3Report {
        stack,
        cov_no: no.cov(),
        cov_no_uk: no_uk.cov(),
        cov_trio: group.cov(),
        combos,
        pair_stats,
        purchase,
    }
}

/// Print the figure's rows.
pub fn print(report: &Fig3Report) {
    println!("== Figure 3a: complementary generation (MW, 3-hour means) ==");
    print!("hour");
    for (name, _) in &report.stack {
        print!("  {name:>9}");
    }
    println!();
    let coarse: Vec<TimeSeries> = report.stack.iter().map(|(_, t)| t.downsample(12)).collect();
    for i in 0..coarse[0].len() {
        print!("{:>4}", i * 3);
        for t in &coarse {
            print!("  {:>9.1}", t.values[i]);
        }
        println!();
    }

    println!("\ncov(NO solar)            = {:.2}", report.cov_no);
    println!(
        "cov(NO + UK wind)        = {:.2}  ({:.1}x reduction) [paper: 3.7x]",
        report.cov_no_uk,
        report.cov_no / report.cov_no_uk
    );
    println!(
        "cov(NO + UK + PT wind)   = {:.2}  (further {:.1}x)    [paper: 2.3x]",
        report.cov_trio,
        report.cov_no_uk / report.cov_trio
    );

    println!("\n== Figure 3b: stable vs variable energy ==");
    println!("combination  stable(MWh)  variable(MWh)  %variable [paper]");
    let paper_pct = [
        ("NO", 100),
        ("UK", 65),
        ("PT", 91),
        ("NO+UK", 62),
        ("NO+PT", 83),
        ("UK+PT", 32),
        ("NO+UK+PT", 33),
    ];
    for c in &report.combos {
        let paper = paper_pct
            .iter()
            .find(|(l, _)| *l == c.label)
            .map(|(_, p)| format!("{p}%"))
            .unwrap_or_default();
        println!(
            "{:<11}  {:>11.0}  {:>13.0}  {:>8.0}%  [{paper}]",
            c.label,
            c.breakdown.stable_mwh,
            c.breakdown.variable_mwh,
            100.0 * c.breakdown.variable_fraction()
        );
    }

    println!(
        "\n== §2.3 pair sweep ({} pairs < 50 ms) ==",
        report.pair_stats.pairs
    );
    println!(
        "pairs improving cov by >50%: {:.0}%  [paper: >52%]",
        100.0 * report.pair_stats.improved_50pct_fraction
    );
    println!(
        "median improvement: {:.1}x; best pair: {}",
        report.pair_stats.median_improvement,
        report
            .pair_stats
            .best
            .as_ref()
            .map(|b| format!("{}+{} ({:.1}x)", b.a, b.b, b.improvement))
            .unwrap_or_default()
    );

    println!("\n== §2.3 grid purchase ==");
    println!(
        "purchased {:.0} MWh -> +{:.0} MWh stable (stabilized {:.0} MWh of variable energy; leverage {:.1}x) [paper: 4,000 -> +12,000; 3x]",
        report.purchase.purchased_mwh,
        report.purchase.stable_gain_mwh(),
        report.purchase.stabilized_variable_mwh(),
        report.purchase.leverage()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_reduces_cov_stepwise() {
        let r = run(42);
        assert!(r.cov_no > r.cov_no_uk, "adding UK wind helps");
        assert!(r.cov_no_uk > r.cov_trio, "adding PT wind helps further");
        // Both aggregation steps should be substantial factors (the
        // paper's hand-picked window shows 3.7x and 2.3x).
        assert!(r.cov_no / r.cov_no_uk > 1.5, "{}", r.cov_no / r.cov_no_uk);
        assert!(
            r.cov_no_uk / r.cov_trio > 1.3,
            "{}",
            r.cov_no_uk / r.cov_trio
        );
    }

    #[test]
    fn combos_cover_all_seven_subsets() {
        let r = run(42);
        assert_eq!(r.combos.len(), 7);
        // The trio's variable share must be far below NO solar alone.
        let find = |label: &str| {
            r.combos
                .iter()
                .find(|c| c.label == label)
                .expect("combo present")
                .breakdown
                .variable_fraction()
        };
        assert!(find("NO") > 0.9, "solar alone is almost all variable");
        assert!(find("NO+UK+PT") < find("NO"));
        assert!(find("NO+UK+PT") < find("NO+UK"));
    }

    #[test]
    fn purchase_has_leverage() {
        let r = run(42);
        assert!(r.purchase.leverage() > 1.0);
        assert!(r.purchase.stable_gain_mwh() > 0.0);
    }
}
