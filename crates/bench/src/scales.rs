//! Parsing for the `VB_FLEET_SCALES` / `VB_SOLVER_SCALES` environment
//! overrides shared by the perf benches.
//!
//! A scale list is a comma-separated sequence of multipliers such as
//! `"1x,10x,100x"` (the trailing `x`/`X` is optional). The perf benches
//! used to parse each entry lazily with a `panic!` inside the bench
//! loop, so a typo in the *last* entry surfaced only after minutes of
//! benchmarking the earlier ones. [`parse_scales`] instead validates
//! every entry up front and reports **all** bad tokens in one error, so
//! a malformed list fails before any work starts.

/// Parse a comma-separated scale list into `(label, multiplier)` pairs.
///
/// Accepts entries like `"10x"`, `"100X"`, or a bare `"10"`; surrounding
/// whitespace is ignored and empty entries (doubled or trailing commas)
/// are skipped. Returns an error naming `var_name` and listing *every*
/// invalid token — non-numeric multipliers, zero multipliers, and a list
/// with no entries at all — rather than stopping at the first.
pub fn parse_scales(spec: &str, var_name: &str) -> Result<Vec<(String, u64)>, String> {
    let mut scales = Vec::new();
    let mut bad = Vec::new();
    for tok in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match tok.trim_end_matches(['x', 'X']).parse::<u64>() {
            Ok(0) => bad.push(format!("{tok:?} (zero multiplier)")),
            Ok(mult) => scales.push((tok.to_string(), mult)),
            Err(_) => bad.push(format!("{tok:?} (not an integer multiplier)")),
        }
    }
    if !bad.is_empty() {
        return Err(format!(
            "{var_name}: {n} invalid {noun}: {list}; expected a comma-separated \
             list of positive integer multipliers like \"1x,10x,100x\"",
            n = bad.len(),
            noun = if bad.len() == 1 { "entry" } else { "entries" },
            list = bad.join(", "),
        ));
    }
    if scales.is_empty() {
        return Err(format!(
            "{var_name}: no scale entries found in {spec:?}; expected a \
             comma-separated list like \"1x,10x,100x\""
        ));
    }
    Ok(scales)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labels_and_multipliers() {
        let scales = parse_scales("1x, 10X,100", "VB_TEST_SCALES").unwrap();
        assert_eq!(
            scales,
            vec![
                ("1x".to_string(), 1),
                ("10X".to_string(), 10),
                ("100".to_string(), 100),
            ]
        );
    }

    #[test]
    fn skips_empty_entries_from_stray_commas() {
        let scales = parse_scales(",5x,,25x, ", "VB_TEST_SCALES").unwrap();
        assert_eq!(scales.len(), 2);
        assert_eq!(scales[0], ("5x".to_string(), 5));
        assert_eq!(scales[1], ("25x".to_string(), 25));
    }

    #[test]
    fn reports_every_bad_token_in_one_error() {
        let err = parse_scales("10x,banana,0x,1e2x", "VB_FLEET_SCALES").unwrap_err();
        assert!(err.contains("VB_FLEET_SCALES"), "{err}");
        assert!(err.contains("3 invalid entries"), "{err}");
        assert!(err.contains("\"banana\""), "{err}");
        assert!(err.contains("\"0x\" (zero multiplier)"), "{err}");
        assert!(err.contains("\"1e2x\""), "{err}");
    }

    #[test]
    fn rejects_an_effectively_empty_list() {
        let err = parse_scales(" , ,", "VB_SOLVER_SCALES").unwrap_err();
        assert!(err.contains("no scale entries"), "{err}");
        assert!(err.contains("VB_SOLVER_SCALES"), "{err}");
    }
}
