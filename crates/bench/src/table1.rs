//! Table 1 + Figure 7 — "Comparison of migration overhead between
//! different scheduling policies".
//!
//! Runs the four §3.1 policies (Greedy, MIP-24h, MIP, MIP-peak) over a
//! 7-day period on one multi-VB group, all against identical arrival
//! sequences and power traces, and reports Total / 99 %ile / Peak / Std
//! of the per-interval migration volume (Table 1) plus the per-policy
//! volume CDFs and zero-fractions (Fig 7).

use vb_sched::{
    select_group, GreedyPolicy, GroupSim, GroupSimConfig, MipConfig, MipPolicy, PipelineConfig,
    Policy, PolicySummary,
};
use vb_stats::report::{thousands, Table};
use vb_stats::Cdf;
use vb_trace::Catalog;

/// The full Table 1 / Fig 7 report.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// The multi-VB group the pipeline selected.
    pub group: Vec<String>,
    /// One summary per policy, in Table 1 row order.
    pub rows: Vec<PolicySummary>,
}

impl Table1Report {
    /// Summary for a named policy.
    pub fn row(&self, policy: &str) -> Option<&PolicySummary> {
        self.rows.iter().find(|r| r.policy == policy)
    }
}

/// Run the Table 1 experiment on the Figure 3 trio (the paper's
/// archetypal multi-VB group).
pub fn run(seed: u64) -> Table1Report {
    run_on_group(seed, &["NO-solar", "UK-wind", "PT-wind"])
}

/// Run on the pipeline-selected best k-clique instead.
pub fn run_pipeline_group(seed: u64, k: usize) -> Table1Report {
    let catalog = Catalog::europe(seed);
    let group = select_group(
        &catalog,
        &PipelineConfig {
            k,
            ..PipelineConfig::default()
        },
    );
    let names: Vec<&str> = group.iter().map(|s| s.as_str()).collect();
    run_on_group(seed, &names)
}

/// Run the four policies over one group.
pub fn run_on_group(seed: u64, names: &[&str]) -> Table1Report {
    let cfg = GroupSimConfig {
        seed,
        ..GroupSimConfig::default()
    };
    run_on_group_with(seed, names, cfg)
}

/// Run the four policies over one group with an explicit sim config
/// (shorter `days` keeps determinism tests and CI fast).
///
/// Each policy run is independent — same catalog, same seeds, its own
/// simulator — so the four rows execute in parallel via `vb_par`. The
/// policy objects are constructed *inside* the task closure (a boxed
/// `dyn Policy` is not `Sync`), and row order is fixed by task index,
/// so the report is identical at any thread count.
pub fn run_on_group_with(seed: u64, names: &[&str], cfg: GroupSimConfig) -> Table1Report {
    let catalog = Catalog::europe(seed);
    let rows = vb_par::par_map(4, |p| {
        let mut policy: Box<dyn Policy> = match p {
            0 => Box::new(GreedyPolicy::new()),
            1 => Box::new(MipPolicy::new(MipConfig::mip_24h())),
            2 => Box::new(MipPolicy::new(MipConfig::mip())),
            _ => Box::new(MipPolicy::new(MipConfig::mip_peak())),
        };
        let summary = GroupSim::new(&catalog, names, cfg.clone())
            .expect("Table 1 sites must exist in the catalog")
            .run(policy.as_mut());
        // Per-policy solver accounting into the run report, so warm-start
        // regressions show up in `scripts/diff_run_reports.py`.
        if let Some(st) = policy.mip_stats() {
            vb_telemetry::event(
                "sched.mip_stats",
                &[
                    ("policy", policy.name().into()),
                    ("epochs_planned", st.epochs_planned.into()),
                    ("epoch_warm_hits", st.epoch_warm_hits.into()),
                    ("epoch_warm_misses", st.epoch_warm_misses.into()),
                    ("fallback_epochs", st.fallback_epochs.into()),
                    ("warm_hit_rate", st.warm_hit_rate().into()),
                ],
            );
        }
        summary
    });
    Table1Report {
        group: names.iter().map(|s| s.to_string()).collect(),
        rows,
    }
}

/// Print Table 1 and the Fig 7 CDF points.
pub fn print(report: &Table1Report) {
    println!("multi-VB group: {:?}", report.group);
    println!("\n== Table 1: migration overhead (GB) ==");
    let mut table = Table::new(&["Policy", "Total", "99%ile", "Peak", "Std", "Zero-steps"]);
    for r in &report.rows {
        table.row(&[
            r.policy.clone(),
            thousands(r.total_gb),
            thousands(r.p99_gb),
            thousands(r.peak_gb),
            thousands(r.std_gb),
            format!("{:.0}%", 100.0 * r.zero_fraction),
        ]);
    }
    print!("{}", table.render());

    if let (Some(greedy), Some(mip), Some(peak)) = (
        report.row("Greedy"),
        report.row("MIP"),
        report.row("MIP-peak"),
    ) {
        println!(
            "\nMIP total vs Greedy: {:.0}% lower  [paper: >30% lower]",
            100.0 * (1.0 - mip.total_gb / greedy.total_gb)
        );
        println!(
            "MIP-peak p99 vs Greedy: {:.1}x lower [paper: >4.2x]; std {:.1}x lower [paper: 2.7x]",
            greedy.p99_gb / peak.p99_gb.max(1e-9),
            greedy.std_gb / peak.std_gb.max(1e-9)
        );
    }

    println!("\n== Figure 7: CDF of per-interval migration volume (non-zero) ==");
    for r in &report.rows {
        let cdf = Cdf::of_nonzero(&r.per_step_gb);
        let pts = cdf.points(8);
        let series: Vec<String> = pts
            .iter()
            .map(|(x, p)| format!("({x:.0} GB, {p:.2})"))
            .collect();
        println!(
            "{:>8}: zeros {:.0}%  {}",
            r.policy,
            100.0 * r.zero_fraction,
            series.join(" ")
        );
    }
    println!("[paper zero-fractions: Greedy 81%, MIP 94%, MIP-peak 74%]");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        // The qualitative Table 1 ordering, on a short 3-day run to keep
        // test time bounded (the bench runs the full 7 days).
        let catalog = Catalog::europe(42);
        let cfg = GroupSimConfig {
            days: 3,
            ..GroupSimConfig::default()
        };
        let names = ["NO-solar", "UK-wind", "PT-wind"];
        let mut greedy = GreedyPolicy::new();
        let mut mip = MipPolicy::new(MipConfig::mip());
        let g = GroupSim::new(&catalog, &names, cfg.clone())
            .unwrap()
            .run(&mut greedy);
        let m = GroupSim::new(&catalog, &names, cfg).unwrap().run(&mut mip);
        // Short windows are noisy (the 7-day bench run shows MIP ahead);
        // guard only against gross regressions here.
        assert!(
            m.total_gb < g.total_gb * 1.3,
            "MIP ({}) should not lose badly to Greedy ({})",
            m.total_gb,
            g.total_gb
        );
        assert_eq!(m.per_step_gb.len(), g.per_step_gb.len());
    }

    #[test]
    fn report_row_lookup() {
        let r = Table1Report {
            group: vec![],
            rows: vec![],
        };
        assert!(r.row("Greedy").is_none());
    }
}
