//! Figure 4 — "Network overhead of migration in a multi-VB setting",
//! plus the §3 and §5 WAN statistics.
//!
//! * **Fig 4a**: one week of per-interval in/out migration traffic for a
//!   ≈700-server site under real (here: synthetic ELIA-like) power,
//!   with the observation that ">80 % of the power changes don't incur
//!   migrations".
//! * **Fig 4b**: the CDF of migration volume over 3 months, for solar
//!   and wind, in and out, non-zero values only; the paper quotes
//!   p99/p50 of 18–30× (in) and 12.5–16× (out).
//! * **§3**: a 10 TB spike needs ≈200 Gbps to drain in 5 minutes —
//!   roughly 40 % of a site's share of a 50 Tbps aggregate WAN.
//! * **§5**: at 200 Gbps per site, the link is busy migrating only
//!   2–4 % of the time.

use vb_cluster::{simulate_paper_site, SimOutput};
use vb_net::WanModel;
use vb_stats::{Cdf, Summary};
use vb_trace::Catalog;

/// One source's three-month simulation results.
#[derive(Debug, Clone)]
pub struct SourceOverhead {
    pub source: &'static str,
    /// Non-zero out-migration volumes, GB per 15 min.
    pub out_cdf: Cdf,
    /// Non-zero in-migration volumes.
    pub in_cdf: Cdf,
    pub out_stats: Summary,
    pub in_stats: Summary,
    /// Fraction of power-change steps without any migration.
    pub quiet_fraction: f64,
    /// Largest single-interval out spike, GB.
    pub peak_out_gb: f64,
    /// Fraction of time a 200 Gbps site link is busy migrating.
    pub busy_fraction: f64,
}

/// The full Figure 4 report.
#[derive(Debug, Clone)]
pub struct Fig4Report {
    /// One-week sample run (wind), for the Fig 4a series.
    pub week: SimOutput,
    /// Three-month statistics for wind and solar (Fig 4b).
    pub sources: Vec<SourceOverhead>,
    /// WAN model used for the §3/§5 statistics.
    pub wan: WanModel,
}

/// Run the Figure 4 simulations: one week for the time series, three
/// months per source for the CDFs.
pub fn run(seed: u64) -> Fig4Report {
    let catalog = Catalog::europe(seed);
    let wan = WanModel::default();

    let week_power = catalog.trace("BE-wind", 122, 7);
    let week = simulate_paper_site(&week_power, seed);

    // The three-month per-source simulations are independent; run them
    // in parallel (the Fig 4a week run above is cheap by comparison).
    const SOURCES: [(&str, &str); 2] = [("wind", "BE-wind"), ("solar", "BE-solar")];
    let sources = vb_par::par_map(SOURCES.len(), |i| {
        {
            let (label, site) = SOURCES[i];
            let power = catalog.trace(site, 60, 90); // 3 months from March
            let out = simulate_paper_site(&power, seed);
            let outs = out.out_gb();
            let ins = out.in_gb();
            let all: Vec<f64> = outs.iter().zip(&ins).map(|(a, b)| a + b).collect();
            // Per-interval WAN busy series: when the link was saturated,
            // not just how often on average (§5's headline number).
            let (busy_secs, _carry) = wan.busy_profile(&all, 900.0);
            for (interval, busy) in busy_secs.iter().enumerate() {
                vb_telemetry::series_sample(
                    "net.wan_interval",
                    label,
                    interval as u64,
                    &[("busy_fraction", busy / 900.0), ("total_gb", all[interval])],
                );
            }
            let out_cdf = Cdf::of_nonzero(&outs);
            let in_cdf = Cdf::of_nonzero(&ins);
            SourceOverhead {
                source: label,
                out_stats: summary_or_zero(out_cdf.sorted_values()),
                in_stats: summary_or_zero(in_cdf.sorted_values()),
                out_cdf,
                in_cdf,
                quiet_fraction: out.quiet_change_fraction(0.002),
                peak_out_gb: outs.iter().copied().fold(0.0, f64::max),
                busy_fraction: wan.busy_fraction(&all, 900.0),
            }
        }
    });

    Fig4Report { week, sources, wan }
}

fn summary_or_zero(values: &[f64]) -> Summary {
    if values.is_empty() {
        Summary::of(&[0.0])
    } else {
        Summary::of(values)
    }
}

/// Print the figure's rows.
pub fn print(report: &Fig4Report) {
    println!("== Figure 4a: one week of migration traffic (wind site, 3-hour bins) ==");
    println!("hour  power  out(GB)  in(GB)");
    let n = report.week.steps.len();
    for chunk_start in (0..n).step_by(12) {
        let chunk = &report.week.steps[chunk_start..(chunk_start + 12).min(n)];
        let power: f64 = chunk.iter().map(|s| s.power_frac).sum::<f64>() / chunk.len() as f64;
        let out: f64 = chunk.iter().map(|s| s.out_gb).sum();
        let inn: f64 = chunk.iter().map(|s| s.in_gb).sum();
        println!("{:>4}  {power:.2}  {out:>8.0}  {inn:>7.0}", chunk_start / 4);
    }
    println!(
        "\nquiet power changes (no migration): {:.0}%  [paper: >80%]",
        100.0 * report.week.quiet_change_fraction(0.002)
    );

    println!("\n== Figure 4b: CDF of migration volume over 3 months (non-zero) ==");
    for s in &report.sources {
        println!(
            "{:>5}: out p50={:>6.0} p99={:>7.0} (p99/p50 {:>4.1}x [12.5-16x]) | in p50={:>6.0} p99={:>7.0} (p99/p50 {:>4.1}x [18-30x])",
            s.source,
            s.out_stats.p50,
            s.out_stats.p99,
            s.out_stats.p99_over_p50(),
            s.in_stats.p50,
            s.in_stats.p99,
            s.in_stats.p99_over_p50(),
        );
        println!(
            "       quiet changes {:.0}%  peak out {:.0} GB  link busy {:.1}% of time [paper: 2-4%]",
            100.0 * s.quiet_fraction,
            s.peak_out_gb,
            100.0 * s.busy_fraction
        );
    }

    println!("\n== §3 WAN headroom for the observed peak ==");
    let peak = report
        .sources
        .iter()
        .map(|s| s.peak_out_gb)
        .fold(0.0, f64::max);
    println!(
        "peak spike {:.0} GB -> {:.0} Gbps to drain in 5 min = {:.0}% of the per-site WAN share [paper: 10 TB -> ~200 Gbps -> ~40%]",
        peak,
        report.wan.required_gbps(peak),
        100.0 * report.wan.share_fraction(peak)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_both_sources_and_sane_stats() {
        let r = run(42);
        assert_eq!(r.sources.len(), 2);
        for s in &r.sources {
            assert!(
                s.quiet_fraction > 0.5,
                "{}: quiet {}",
                s.source,
                s.quiet_fraction
            );
            assert!(s.peak_out_gb > 100.0, "{}: spikes expected", s.source);
            assert!(s.out_stats.p99_over_p50() > 2.0, "{}: heavy tail", s.source);
            assert!(
                s.busy_fraction < 0.2,
                "{}: migration is rare on a 200 Gbps link",
                s.source
            );
        }
    }

    #[test]
    fn week_series_covers_seven_days() {
        let r = run(42);
        assert_eq!(r.week.steps.len(), 7 * 96);
    }

    #[test]
    fn section5_headline_busy_fraction_band() {
        // §5: "migration occurs only 2-4% of the time assuming 200 Gbps
        // WAN link per VB site." The synthetic catalog lands in the same
        // regime (a few percent at most, clearly non-zero); this pins
        // the order of magnitude so WAN accounting changes — like the
        // backlog carry-over — can't silently inflate or zero it.
        let r = run(42);
        for s in &r.sources {
            assert!(
                (0.001..0.05).contains(&s.busy_fraction),
                "{}: busy fraction {} outside the §5 few-percent band",
                s.source,
                s.busy_fraction
            );
        }
    }
}
