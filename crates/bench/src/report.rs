//! Run-report plumbing shared by every bench target.
//!
//! Each `benches/` main wraps its work in a [`BenchRun`]: telemetry is
//! reset at the start so the captured [`vb_telemetry::RunReport`]
//! describes exactly one artifact run, and `finish` serializes the
//! report to JSONL next to the build artifacts (override the directory
//! with `VB_REPORT_DIR`, or set it to the empty string to skip the
//! file). Setting `VB_RUN_REPORT=1` additionally prints the span/counter
//! summary to stdout — the gated replacement for the old ad-hoc
//! "[target completed in Ns]" progress lines.

use std::time::Instant;
use vb_telemetry::RunReport;

/// Scope of one bench-target execution.
pub struct BenchRun {
    name: &'static str,
    t0: Instant,
}

impl BenchRun {
    /// Start a run: clears any telemetry left over from module setup so
    /// the final report covers this target alone.
    pub fn start(name: &'static str) -> BenchRun {
        vb_telemetry::reset();
        vb_telemetry::event("bench.start", &[("target", name.into())]);
        BenchRun {
            name,
            // vb-audit: allow(wallclock-in-logic, elapsed feeds only the bench timing report, which determinism diffs exclude)
            t0: Instant::now(),
        }
    }

    /// Finish the run: capture the telemetry report, write it as JSONL
    /// plus a Chrome trace (`<name>.trace.json`, Perfetto-loadable), and
    /// print the one-line completion notice (plus the full metric
    /// summary when `VB_RUN_REPORT=1`).
    pub fn finish(self) {
        let elapsed = self.t0.elapsed().as_secs_f64();
        vb_telemetry::event(
            "bench.complete",
            &[
                ("target", self.name.into()),
                ("elapsed_secs", elapsed.into()),
            ],
        );
        let report = RunReport::capture(self.name);
        let written = write_jsonl(&report);
        let trace = write_trace(self.name);
        if verbose() {
            print_summary(&report);
        }
        match written {
            Some(path) => println!(
                "\n[{} completed in {elapsed:.1}s — report: {path} ({} events, {} series)]",
                self.name,
                report.events.len(),
                report.series.len()
            ),
            None => println!("\n[{} completed in {elapsed:.1}s]", self.name),
        }
        if let Some((path, spans, drops)) = trace {
            println!("[trace: {path} ({spans} spans, {drops} dropped)]");
        }
    }
}

/// Drain the trace timeline and write it as Chrome trace-event JSON next
/// to the JSONL report. Returns `(path, span count, dropped events)`;
/// `None` when tracing is off, recording is empty, or reports are
/// disabled via `VB_REPORT_DIR=`.
fn write_trace(name: &str) -> Option<(String, usize, u64)> {
    let events = vb_telemetry::trace_events();
    if events.is_empty() {
        return None;
    }
    let dir = report_dir()?;
    let path = format!("{dir}/{name}.trace.json");
    std::fs::create_dir_all(&dir).ok()?;
    std::fs::write(&path, vb_telemetry::chrome_trace_json(&events)).ok()?;
    let spans = events
        .iter()
        .filter(|e| e.phase == vb_telemetry::TracePhase::Begin)
        .count();
    Some((path, spans, vb_telemetry::trace_drops()))
}

fn verbose() -> bool {
    std::env::var("VB_RUN_REPORT").is_ok_and(|v| v == "1")
}

/// Report directory: `VB_REPORT_DIR` (default `target/run-reports`);
/// empty string disables report files entirely.
fn report_dir() -> Option<String> {
    let dir = std::env::var("VB_REPORT_DIR").unwrap_or_else(|_| "target/run-reports".into());
    if dir.is_empty() {
        None
    } else {
        Some(dir)
    }
}

/// Write the JSONL report under [`report_dir`].
fn write_jsonl(report: &RunReport) -> Option<String> {
    let dir = report_dir()?;
    let path = format!("{dir}/{}.jsonl", report.name);
    std::fs::create_dir_all(&dir).ok()?;
    std::fs::write(&path, report.to_jsonl()).ok()?;
    Some(path)
}

/// Human-readable span and counter summary (the `VB_RUN_REPORT=1` view).
fn print_summary(report: &RunReport) {
    let snap = &report.snapshot;
    if !snap.spans.is_empty() {
        println!("\n== telemetry: spans ==");
        println!(
            "{:<28} {:>10} {:>12} {:>12}",
            "span", "count", "total", "mean"
        );
        for (name, stat) in &snap.spans {
            println!(
                "{name:<28} {:>10} {:>12} {:>12}",
                stat.count,
                fmt_ns(stat.total_ns),
                fmt_ns(stat.mean_ns())
            );
        }
    }
    if !snap.counters.is_empty() || !snap.float_counters.is_empty() {
        println!("\n== telemetry: counters ==");
        for (name, value) in &snap.counters {
            println!("{name:<36} {value:>14}");
        }
        for (name, value) in &snap.float_counters {
            println!("{name:<36} {value:>14.2}");
        }
    }
    if !snap.gauges.is_empty() {
        println!("\n== telemetry: gauges ==");
        for (name, value) in &snap.gauges {
            println!("{name:<36} {value:>14.4}");
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
