//! Figure 5 — "Energy prediction of solar and wind in near (3 hour, day
//! ahead) and far-away future (week ahead)".
//!
//! The paper reports MAPE of 8.5–9 % (3-hour), 18–25 % (day-ahead) and
//! 44 %/75 % for solar/wind week-ahead, and shows a 4-day sample of
//! actual vs forecast power.

use vb_stats::{mape_above, TimeSeries};
use vb_trace::{forecast_for, Catalog, Horizon};

/// MAPE evaluation floor (2 % of capacity; see `vb_stats::mape_above`).
pub const MAPE_FLOOR: f64 = 0.02;

/// One source's forecast evaluation.
#[derive(Debug, Clone)]
pub struct SourceForecast {
    pub source: &'static str,
    /// 4-day sample: actual plus one forecast series per horizon.
    pub actual_sample: TimeSeries,
    pub forecast_samples: Vec<(Horizon, TimeSeries)>,
    /// Year-long MAPE per horizon, percent.
    pub mape: Vec<(Horizon, f64)>,
}

/// The full Figure 5 report.
#[derive(Debug, Clone)]
pub struct Fig5Report {
    pub sources: Vec<SourceForecast>,
}

/// Evaluate the forecast engine exactly as the figure does.
pub fn run(seed: u64) -> Fig5Report {
    let catalog = Catalog::europe(seed);
    // Each source needs a year-long trace plus three forecast products —
    // independent per source, so evaluate both in parallel.
    const SOURCES: [(&str, &str); 2] = [("solar", "BE-solar"), ("wind", "BE-wind")];
    let sources = vb_par::par_map(SOURCES.len(), |i| {
        let (label, name) = SOURCES[i];
        let site = catalog.get(name).expect("catalog site");
        let year = catalog.trace(name, 0, 365);
        let mape = Horizon::all()
            .into_iter()
            .map(|h| {
                let f = forecast_for(&year, site, h, catalog.field());
                (h, mape_above(&year.values, &f.values, MAPE_FLOOR))
            })
            .collect();
        let sample = catalog.trace(name, 122, 4);
        let forecast_samples = Horizon::all()
            .into_iter()
            .map(|h| (h, forecast_for(&sample, site, h, catalog.field())))
            .collect();
        SourceForecast {
            source: label,
            actual_sample: sample,
            forecast_samples,
            mape,
        }
    });
    Fig5Report { sources }
}

/// Print the figure's series and MAPE table.
pub fn print(report: &Fig5Report) {
    for s in &report.sources {
        println!("== Figure 5 ({}) : 4-day sample, 3-hour means ==", s.source);
        print!("hour  actual");
        for (h, _) in &s.forecast_samples {
            print!("  {:>11}", h.label());
        }
        println!();
        let actual = s.actual_sample.downsample(12);
        let forecasts: Vec<TimeSeries> = s
            .forecast_samples
            .iter()
            .map(|(_, f)| f.downsample(12))
            .collect();
        for i in 0..actual.len() {
            print!("{:>4}  {:>6.3}", i * 3, actual.values[i]);
            for f in &forecasts {
                print!("  {:>11.3}", f.values[i]);
            }
            println!();
        }
        println!();
    }

    println!("== MAPE by horizon (paper bands in brackets) ==");
    let bands = [
        ("3Hour-Ahead", "8.5-9%"),
        ("Day-Ahead", "18-25%"),
        ("Week-Ahead", "44% solar / 75% wind"),
    ];
    for s in &report.sources {
        for (h, m) in &s.mape {
            let band = bands
                .iter()
                .find(|(l, _)| *l == h.label())
                .map(|(_, b)| *b)
                .unwrap_or("");
            println!("{:>5} {:>12}: {m:>5.1}%  [{band}]", s.source, h.label());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_lands_in_paper_bands() {
        let r = run(42);
        for s in &r.sources {
            let get = |h: Horizon| {
                s.mape
                    .iter()
                    .find(|(hh, _)| *hh == h)
                    .expect("horizon present")
                    .1
            };
            assert!((6.0..12.0).contains(&get(Horizon::Hours3)), "{}", s.source);
            assert!(
                (15.0..28.0).contains(&get(Horizon::DayAhead)),
                "{}",
                s.source
            );
            assert!(get(Horizon::WeekAhead) > get(Horizon::DayAhead));
        }
        // Week-ahead wind is much worse than week-ahead solar (75 vs 44).
        let week = |i: usize| r.sources[i].mape[2].1;
        assert!(week(1) > week(0), "wind {} vs solar {}", week(1), week(0));
    }

    #[test]
    fn samples_align() {
        let r = run(42);
        for s in &r.sources {
            for (_, f) in &s.forecast_samples {
                assert_eq!(f.len(), s.actual_sample.len());
            }
        }
    }
}
