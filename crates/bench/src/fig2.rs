//! Figure 2 — "Quantifying Variability for solar and wind".
//!
//! * **Fig 2a**: a 4-day sample of normalized solar and wind power,
//!   showing solar's diurnal bells (overcast vs sunny vs variable days)
//!   and wind's sharp peaks and valleys.
//! * **Fig 2b**: the CDF of power generation over a year, with the
//!   paper's quoted statistics — >50 % zero solar samples, wind median
//!   ≤20 % of peak, p99/p75 tail ratios of ≈4× (solar) and ≈2× (wind).

use vb_stats::{Cdf, Summary, TimeSeries};
use vb_trace::Catalog;

/// Everything Figure 2 shows, for one (solar, wind) site pair.
#[derive(Debug, Clone)]
pub struct Fig2Report {
    /// 4-day 15-minute sample series (Fig 2a).
    pub solar_sample: TimeSeries,
    pub wind_sample: TimeSeries,
    /// One-year CDFs (Fig 2b).
    pub solar_cdf: Cdf,
    pub wind_cdf: Cdf,
    /// Year statistics.
    pub solar_stats: Summary,
    pub wind_stats: Summary,
    pub solar_zero_fraction: f64,
    pub wind_zero_fraction: f64,
}

/// Generate the Figure 2 data: the ELIA-like Belgian sites, 4 days of
/// May for the sample, a full year for the CDFs.
pub fn run(seed: u64) -> Fig2Report {
    let catalog = Catalog::europe(seed);
    // Day-of-year 122 ≈ May 3, matching Fig 2a's "Day 03..07 (May 2020)".
    // The four traces (two sites × sample/year) are independent; the
    // year-long ones dominate, so generate all four in parallel.
    let specs: [(&str, u32, u32); 4] = [
        ("BE-solar", 122, 4),
        ("BE-wind", 122, 4),
        ("BE-solar", 0, 365),
        ("BE-wind", 0, 365),
    ];
    let mut traces = vb_par::par_map(specs.len(), |i| {
        let (name, start, days) = specs[i];
        catalog.trace(name, start, days)
    })
    .into_iter();
    let solar_sample = traces.next().expect("four traces");
    let wind_sample = traces.next().expect("four traces");
    let solar_year = traces.next().expect("four traces");
    let wind_year = traces.next().expect("four traces");

    let zero_frac =
        |t: &TimeSeries| t.values.iter().filter(|&&v| v == 0.0).count() as f64 / t.len() as f64;
    Fig2Report {
        solar_zero_fraction: zero_frac(&solar_year),
        wind_zero_fraction: zero_frac(&wind_year),
        solar_stats: Summary::of(&solar_year.values),
        wind_stats: Summary::of(&wind_year.values),
        solar_cdf: Cdf::of(&solar_year.values),
        wind_cdf: Cdf::of(&wind_year.values),
        solar_sample,
        wind_sample,
    }
}

/// Print the figure's series and statistics.
pub fn print(report: &Fig2Report) {
    println!("== Figure 2a: 4-day power sample (normalized, hourly means) ==");
    println!("hour  solar  wind");
    let solar_h = report.solar_sample.downsample(4);
    let wind_h = report.wind_sample.downsample(4);
    for (i, (s, w)) in solar_h.values.iter().zip(&wind_h.values).enumerate() {
        println!("{i:>4}  {s:.3}  {w:.3}");
    }

    println!("\n== Figure 2b: CDF of power generation over a year ==");
    println!("power  P(solar<=x)  P(wind<=x)");
    for i in 0..=20 {
        let x = i as f64 * 0.05;
        println!(
            "{x:.2}   {:.3}        {:.3}",
            report.solar_cdf.eval(x),
            report.wind_cdf.eval(x)
        );
    }

    println!("\n== §2.2 statistics (paper values in brackets) ==");
    println!(
        "solar zero fraction: {:.2}  [>0.50]",
        report.solar_zero_fraction
    );
    println!(
        "wind median of peak: {:.2}  [<=0.20]",
        report.wind_stats.p50
    );
    println!(
        "solar p99/p75:       {:.1}x [~4x]",
        report.solar_stats.tail_ratio()
    );
    println!(
        "wind  p99/p75:       {:.1}x [~2x]",
        report.wind_stats.tail_ratio()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_matches_paper_shape() {
        let r = run(42);
        assert_eq!(r.solar_sample.len(), 4 * 96);
        assert_eq!(r.wind_sample.len(), 4 * 96);
        assert!(r.solar_zero_fraction > 0.5);
        assert!(r.wind_stats.p50 <= 0.25);
        assert!(r.solar_stats.tail_ratio() > r.wind_stats.tail_ratio());
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(1);
        let b = run(1);
        assert_eq!(a.solar_sample, b.solar_sample);
        assert_eq!(a.wind_stats, b.wind_stats);
    }
}
