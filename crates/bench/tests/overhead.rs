//! Telemetry overhead guard: a traced short Table-1 run must stay
//! within a generous bound of the same run with trace recording
//! switched off, and the default ring-buffer capacity must hold a
//! paper-sized run without dropping a single event.
//!
//! Recording is toggled at runtime (`set_trace_enabled`) rather than by
//! recompiling — the closest in-process proxy for the
//! `--no-default-features` build, which cannot be measured from inside a
//! telemetry-enabled binary.
#![cfg(feature = "telemetry")]

use std::time::Instant;
use vb_bench::table1;
use vb_sched::GroupSimConfig;

#[test]
fn traced_table1_run_is_cheap_and_lossless() {
    let names = ["NO-solar", "UK-wind", "PT-wind"];
    let cfg = || GroupSimConfig {
        days: 2,
        ..GroupSimConfig::default()
    };

    // One scope: the test toggles process-global trace state and reads
    // the process-global registry.
    vb_par::with_threads(4, || {
        // Warm-up so allocator and page-cache effects hit neither side.
        vb_telemetry::reset();
        let _ = table1::run_on_group_with(7, &names, cfg());

        let time_run = |trace_on: bool| {
            vb_telemetry::set_trace_enabled(trace_on);
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                vb_telemetry::reset();
                let t = Instant::now();
                let _ = table1::run_on_group_with(7, &names, cfg());
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };

        let traced_secs = time_run(true);

        // The run that just finished is still in the global stores:
        // losslessness and series coverage are asserted on it.
        assert_eq!(
            vb_telemetry::trace_drops(),
            0,
            "default trace capacity must hold a paper-sized run"
        );
        let events = vb_telemetry::trace_events();
        assert!(!events.is_empty(), "traced run records a timeline");

        let step_series: Vec<_> = vb_telemetry::series_snapshot()
            .into_iter()
            .filter(|s| s.name == "sched.step_series")
            .collect();
        assert!(
            step_series.len() >= 2,
            "every policy records its own series instance"
        );
        for s in &step_series {
            let expected: Vec<u64> = (0..2 * 96).collect();
            assert_eq!(
                s.epochs, expected,
                "{}/{}: series must cover every simulated step",
                s.name, s.instance
            );
        }

        let untraced_secs = time_run(false);
        vb_telemetry::set_trace_enabled(true);
        vb_telemetry::reset();

        // Generous: per-span trace cost is ~100ns against multi-ms
        // steps; 3x + 250ms absorbs scheduler noise on loaded CI hosts
        // while still catching anything pathological (locks on the hot
        // path, unbounded flushing).
        assert!(
            traced_secs <= 3.0 * untraced_secs + 0.25,
            "tracing overhead out of bounds: traced {traced_secs:.3}s vs untraced {untraced_secs:.3}s"
        );
    });
}
