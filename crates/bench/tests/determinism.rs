//! Pinned determinism contract of the `vb_par` executor: every
//! experiment artifact must be *identical* — not statistically close —
//! at any thread count. `vb_par::with_threads` scopes are serialised
//! process-wide, so these tests cannot interleave their overrides.

use vb_bench::table1;
use vb_sched::{identify_subgraphs, GroupSimConfig, PipelineConfig};
use vb_trace::Catalog;

/// Short Table 1 run (the full bench uses 7 days; 2 keeps CI fast).
fn short_cfg() -> GroupSimConfig {
    GroupSimConfig {
        days: 2,
        ..GroupSimConfig::default()
    }
}

#[test]
fn table1_rows_bit_match_sequential() {
    let names = ["NO-solar", "UK-wind", "PT-wind"];
    let sequential = vb_par::with_threads(1, || table1::run_on_group_with(7, &names, short_cfg()));
    for threads in [2, 8] {
        let parallel = vb_par::with_threads(threads, || {
            table1::run_on_group_with(7, &names, short_cfg())
        });
        assert_eq!(parallel.group, sequential.group);
        assert_eq!(
            parallel.rows, sequential.rows,
            "Table 1 rows diverged at {threads} threads"
        );
    }
}

#[test]
fn clique_ranking_bit_matches_sequential() {
    let catalog = Catalog::europe(42);
    let cfg = PipelineConfig::default();
    let sequential = vb_par::with_threads(1, || identify_subgraphs(&catalog, &cfg));
    for threads in [2, 8] {
        let parallel = vb_par::with_threads(threads, || identify_subgraphs(&catalog, &cfg));
        assert_eq!(
            parallel, sequential,
            "clique ranking diverged at {threads} threads"
        );
    }
}

#[test]
fn pair_sweep_bit_matches_sequential() {
    let catalog = Catalog::europe(42);
    let sequential =
        vb_par::with_threads(1, || vb_core::combos::search_pairs(&catalog, 120, 3, 50.0));
    for threads in [2, 8] {
        let parallel = vb_par::with_threads(threads, || {
            vb_core::combos::search_pairs(&catalog, 120, 3, 50.0)
        });
        assert_eq!(
            parallel, sequential,
            "pair sweep diverged at {threads} threads"
        );
    }
}
