//! Pinned determinism contracts: every experiment artifact must be
//! *identical* — not statistically close — at any thread count, and the
//! cross-epoch solver warm start must be a pure performance lever (same
//! schedules, fewer pivots). `vb_par::with_threads` scopes are
//! serialised process-wide, so these tests cannot interleave their
//! overrides — the epoch test reads the process-global telemetry
//! registry and therefore does *all* its work inside one scope.

use vb_bench::table1;
use vb_sched::policy::{AppId, MovableApp, NewApp, PlanContext, SitePlanInfo};
use vb_sched::{
    identify_subgraphs, AppSpec, GroupSimConfig, MipConfig, MipPolicy, PipelineConfig, Policy,
};
use vb_trace::Catalog;

/// Short Table 1 run (the full bench uses 7 days; 2 keeps CI fast).
fn short_cfg() -> GroupSimConfig {
    GroupSimConfig {
        days: 2,
        ..GroupSimConfig::default()
    }
}

#[test]
fn table1_rows_bit_match_sequential() {
    let names = ["NO-solar", "UK-wind", "PT-wind"];
    let sequential = vb_par::with_threads(1, || table1::run_on_group_with(7, &names, short_cfg()));
    for threads in [2, 8] {
        let parallel = vb_par::with_threads(threads, || {
            table1::run_on_group_with(7, &names, short_cfg())
        });
        assert_eq!(parallel.group, sequential.group);
        assert_eq!(
            parallel.rows, sequential.rows,
            "Table 1 rows diverged at {threads} threads"
        );
    }
}

#[test]
fn clique_ranking_bit_matches_sequential() {
    let catalog = Catalog::europe(42);
    let cfg = PipelineConfig::default();
    let sequential = vb_par::with_threads(1, || identify_subgraphs(&catalog, &cfg));
    for threads in [2, 8] {
        let parallel = vb_par::with_threads(threads, || identify_subgraphs(&catalog, &cfg));
        assert_eq!(
            parallel, sequential,
            "clique ranking diverged at {threads} threads"
        );
    }
}

/// One Table-1-shaped planning epoch: three sites × six forecast
/// buckets, eight resident movable apps, one arriving app. Epoch `e`
/// drifts the committed load and the capacity forecasts (RHS-only
/// changes: the app mix — hence the constraint matrix — is fixed).
///
/// The instance is built so the integer optimum is *unique* every
/// epoch: all sites run a strict deficit in buckets 2–5, so moving any
/// resident strictly loses (it saves no displacement and pays the move
/// cost), while buckets 0–1 carry per-site slack
/// `σ = 20 + 25·((s+e)%3) + 2b` — strictly ordered sums, so the
/// arriving app has exactly one
/// cheapest home, rotating with `e`. Warm- and cold-root solves must
/// therefore land on bit-identical schedules.
fn epoch_ctx(e: usize) -> PlanContext {
    let movable_cores: [(u32, usize); 8] = [
        (80, 0),
        (60, 1),
        (40, 2),
        (120, 0),
        (100, 1),
        (60, 2),
        (80, 0),
        (40, 1),
    ];
    let resident: [f64; 3] = movable_cores.iter().fold([0.0; 3], |mut acc, &(c, s)| {
        acc[s] += c as f64;
        acc
    });
    let sites = (0..3)
        .map(|s| {
            let committed: Vec<f64> = (0..6)
                .map(|b| 40.0 + 5.0 * e as f64 + 7.0 * s as f64 + 3.0 * b as f64)
                .collect();
            let capacity: Vec<f64> = committed
                .iter()
                .enumerate()
                .map(|(b, &c)| {
                    let load = c + resident[s];
                    if b < 2 {
                        // Slack for the arriving app, strictly ordered
                        // across sites and rotating with the epoch.
                        load + 20.0 + 25.0 * ((s + e) % 3) as f64 + 2.0 * b as f64
                    } else {
                        // Strict deficit: residents stay put.
                        load - (10.0 + 2.0 * s as f64 + e as f64 + b as f64)
                    }
                })
                .collect();
            SitePlanInfo {
                name: format!("site{s}"),
                total_cores: 1_000,
                current_budget_cores: capacity[0] as u32,
                allocated_cores: committed[0] as u32,
                capacity_forecast_cores: capacity,
                committed_cores: committed,
            }
        })
        .collect();
    PlanContext {
        now: 12 * e as u64,
        bucket_steps: 12,
        sites,
        new_apps: vec![NewApp {
            id: AppId(100),
            spec: AppSpec {
                n_vms: 25, // 100 cores, alive in buckets 0–1 only
                cores_per_vm: 4,
                mem_per_vm_gb: 16.0,
                kind: vb_cluster::VmKind::Stable,
                lifetime_steps: 24,
            },
        }],
        movable: movable_cores
            .iter()
            .enumerate()
            .map(|(i, &(cores, site))| MovableApp {
                id: AppId(i),
                current_site: site,
                cores,
                mem_gb: cores as f64 * 4.0,
                remaining_steps: 72,
            })
            .collect(),
    }
}

/// Pinned acceptance check for cross-epoch solver-state reuse: on
/// back-to-back Table-1-shaped epochs the warm path must produce
/// bit-identical schedules with a large (≥ 40 %) cut in total simplex
/// pivots versus cold per-epoch solves.
#[test]
fn epoch_warm_starts_cut_pivots_with_identical_schedules() {
    const EPOCHS: usize = 12;
    // `balance_weight = 0`: the balance rows' coefficients depend on the
    // capacity forecast, which moves every epoch — with them in the
    // model the skeleton would (correctly) never match. The Table-1
    // displacement/move model is what the reuse path accelerates.
    let cfg = MipConfig {
        balance_weight: 0.0,
        ..MipConfig::mip()
    };

    let run = |reuse: bool| {
        let mut policy = MipPolicy::new(MipConfig {
            reuse_across_epochs: reuse,
            ..cfg.clone()
        });
        vb_telemetry::reset();
        let plans: Vec<_> = (0..EPOCHS).map(|e| policy.plan(&epoch_ctx(e))).collect();
        let pivots = vb_telemetry::snapshot()
            .counter("solver.pivots")
            .unwrap_or(0);
        let stats = policy.mip_stats().expect("MIP policy reports stats");
        (plans, pivots, stats)
    };

    // Single scope: the telemetry registry is process-global and the
    // other tests in this binary also emit into it.
    vb_par::with_threads(1, || {
        let (cold_plans, cold_pivots, cold_stats) = run(false);
        let (warm_plans, warm_pivots, warm_stats) = run(true);

        assert_eq!(warm_plans, cold_plans, "schedules must be bit-identical");
        // The instance is built so the arriving app's cheapest site
        // rotates with the epoch — the plans are non-trivial.
        for (e, plan) in warm_plans.iter().enumerate() {
            assert_eq!(plan.len(), 1, "epoch {e}: exactly the arriving app");
            assert_eq!(plan[0].app, AppId(100));
            assert_eq!(plan[0].site, (14 - e) % 3, "epoch {e}: unique optimum");
        }

        assert_eq!(cold_stats.fallback_epochs, 0);
        assert_eq!(warm_stats.fallback_epochs, 0);
        assert_eq!(warm_stats.epochs_planned, EPOCHS);
        assert_eq!(
            warm_stats.epoch_warm_hits,
            EPOCHS - 1,
            "every epoch after the first must repair the cached root"
        );
        assert_eq!(cold_stats.epoch_warm_hits + cold_stats.epoch_warm_misses, 0);

        if cold_pivots == 0 {
            // Telemetry compiled out (--no-default-features): the pivot
            // counters stay zero and the ratio below is meaningless.
            return;
        }
        eprintln!(
            "epoch reuse: {warm_pivots} pivots vs {cold_pivots} cold ({:.0}% saved)",
            100.0 * (1.0 - warm_pivots as f64 / cold_pivots as f64)
        );
        assert!(
            (warm_pivots as f64) <= 0.6 * cold_pivots as f64,
            "cross-epoch reuse saved too little: {warm_pivots} warm vs {cold_pivots} cold pivots"
        );
    });
}

/// Cross-thread span nesting: the causal span *tree* recorded for a
/// `vb-par` fan-out must be identical at any thread count once thread
/// ids, timestamps and the executor's own `par.busy` wrapper spans are
/// normalized away. This is what makes trace timelines trustworthy — a
/// 4-thread trace shows the same causality as the sequential reference.
#[cfg(feature = "telemetry")]
#[test]
fn span_forests_bit_match_across_thread_counts() {
    use std::collections::HashMap;
    use vb_telemetry::{TraceEvent, TracePhase};

    fn workload() -> Vec<TraceEvent> {
        vb_telemetry::reset();
        {
            let _root = vb_telemetry::span!("treetest.root");
            let _results = vb_par::par_map(6, |i| {
                let _task = vb_telemetry::span!("treetest.task");
                if i % 2 == 0 {
                    let _inner = vb_telemetry::span!("treetest.inner");
                }
                i
            });
        }
        let events = vb_telemetry::trace_events();
        assert_eq!(vb_telemetry::trace_drops(), 0, "no ring-buffer drops");
        events
    }

    /// Canonical forest form: children sorted recursively, `par.busy`
    /// nodes collapsed (their children splice into the parent — the
    /// worker count is thread-count-dependent by design).
    fn forest(events: &[TraceEvent]) -> String {
        let mut kids: HashMap<u64, Vec<(u64, &'static str)>> = HashMap::new();
        let mut roots: Vec<(u64, &'static str)> = Vec::new();
        for e in events.iter().filter(|e| e.phase == TracePhase::Begin) {
            if e.parent == 0 {
                roots.push((e.id, e.name));
            } else {
                kids.entry(e.parent).or_default().push((e.id, e.name));
            }
        }
        fn form(id: u64, name: &str, kids: &HashMap<u64, Vec<(u64, &'static str)>>) -> Vec<String> {
            let mut child_forms: Vec<String> = Vec::new();
            for &(cid, cname) in kids.get(&id).map(Vec::as_slice).unwrap_or_default() {
                child_forms.extend(form(cid, cname, kids));
            }
            child_forms.sort();
            if name == "par.busy" {
                child_forms
            } else {
                vec![format!("{name}({})", child_forms.join(","))]
            }
        }
        let mut out: Vec<String> = Vec::new();
        for &(id, name) in &roots {
            out.extend(form(id, name, &kids));
        }
        out.sort();
        out.join(";")
    }

    let single = vb_par::with_threads(1, workload);
    let multi = vb_par::with_threads(4, workload);

    let tids: std::collections::HashSet<u64> = multi.iter().map(|e| e.tid).collect();
    assert!(
        tids.len() > 1,
        "4-thread run must actually record from multiple threads"
    );
    let expected = "treetest.root(treetest.task(),treetest.task(),treetest.task(),\
                    treetest.task(treetest.inner()),treetest.task(treetest.inner()),\
                    treetest.task(treetest.inner()))";
    assert_eq!(forest(&single), expected, "sequential reference tree");
    assert_eq!(
        forest(&multi),
        forest(&single),
        "span forest diverged between 1 and 4 threads"
    );
}

/// Fleet runs — many independent shards fanned over `vb-par` with
/// index-ordered assembly — must be bit-identical at any thread count:
/// each shard's workload stream is a pure function of (base seed, shard
/// index), and assembly is by shard index, never completion order. This
/// is the scaling contract of the event-driven fleet core: adding
/// threads may only change wall-clock, never a single reported byte.
#[test]
fn fleet_runs_bit_match_sequential() {
    use vb_core::fleet::{run_fleet, FleetConfig, FleetPolicy};
    use vb_sched::{AppGenConfig, SimCore};

    let catalog = Catalog::fleet(42, 9);
    let cfg = |core| FleetConfig {
        shard_size: 3,
        sim: GroupSimConfig {
            days: 2,
            seed: 42,
            core,
            // Pin an explicit arrival rate so shards are busy enough
            // that a scheduling divergence could actually surface.
            app_cfg: Some(AppGenConfig {
                arrivals_per_step: 1.0,
                ..AppGenConfig::default()
            }),
            ..GroupSimConfig::default()
        },
    };
    for core in [SimCore::EventDriven, SimCore::Legacy] {
        let sequential = vb_par::with_threads(1, || {
            run_fleet(&catalog, FleetPolicy::Greedy, &cfg(core)).expect("fleet runs")
        });
        let parallel = vb_par::with_threads(8, || {
            run_fleet(&catalog, FleetPolicy::Greedy, &cfg(core)).expect("fleet runs")
        });
        assert_eq!(
            parallel, sequential,
            "{core:?} fleet run diverged between 1 and 8 threads"
        );
    }
}

/// Deterministic parallel branch & bound: the production kernel expands
/// node batches through `vb_par::par_map`, and the contract is that the
/// incumbent sequence — hence the returned schedule — is *bit*-identical
/// at any `VB_THREADS`. Branching-heavy placement epochs (tight
/// capacities, near-tied costs) are driven through the epoch path at 1
/// and 8 threads and every value is compared by bit pattern.
#[test]
fn parallel_branch_and_bound_bit_matches_sequential() {
    use vb_solver::{solve_mip_epoch, EpochCache, Model, Sense, Solution, VarId};

    /// SplitMix64 → uniform in [0, 1); keeps the instances arbitrary but
    /// reproducible without pulling in a PRNG crate.
    fn mix(seed: u64) -> f64 {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    }

    /// 12 apps × 3 sites, one-site-per-app rows, tight per-site capacity
    /// with a priced deficit — near-tied fractional costs so the root
    /// relaxation is fractional and the search genuinely branches.
    fn epoch_mip(e: usize) -> Model {
        const APPS: usize = 12;
        const SITES: usize = 3;
        let mut m = Model::new(Sense::Minimize);
        let x: Vec<Vec<VarId>> = (0..APPS)
            .map(|a| {
                (0..SITES)
                    .map(|s| m.bin_var(&format!("a{a}s{s}")))
                    .collect()
            })
            .collect();
        let cores: Vec<f64> = (0..APPS)
            .map(|a| (2.0 + (mix((a as u64) << 3) * 4.0).floor()) * 10.0)
            .collect();
        for row in &x {
            let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
            let expr = m.expr(&terms);
            m.add_eq(expr, 1.0);
        }
        let total: f64 = cores.iter().sum();
        let mut objective = Vec::new();
        for s in 0..SITES {
            let d = m.var(&format!("d{s}"), 0.0, f64::INFINITY);
            // Tight, epoch-drifting capacity: roughly an even split less
            // a deficit that rotates with the epoch.
            let capacity = (total / SITES as f64) * (0.82 + 0.04 * ((s + e) % 3) as f64);
            let mut lhs = vec![(d, 1.0)];
            for (a, row) in x.iter().enumerate() {
                lhs.push((row[s], -cores[a]));
            }
            let expr = m.expr(&lhs);
            m.add_ge(expr, -capacity.round());
            objective.push((d, 6.0));
        }
        for (a, row) in x.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                let c = 1.0
                    + (mix(((a * SITES + s) as u64) << 7) * 8.0).round()
                    + 0.25 * ((a + s + e) % 2) as f64;
                objective.push((v, c));
            }
        }
        let expr = m.expr(&objective);
        m.set_objective(expr);
        m
    }

    fn run() -> Vec<Solution> {
        let mut cache: Option<EpochCache> = None;
        (0..6)
            .map(|e| {
                let (sol, next, _hit) = solve_mip_epoch(&epoch_mip(e), 200_000, cache.as_ref())
                    .expect("epoch MIP solves");
                cache = Some(next);
                sol
            })
            .collect()
    }

    let batches_before = vb_telemetry::snapshot()
        .counter("solver.bb_parallel_batches")
        .unwrap_or(0);
    let sequential = vb_par::with_threads(1, run);
    let parallel = vb_par::with_threads(8, run);
    let batches_after = vb_telemetry::snapshot()
        .counter("solver.bb_parallel_batches")
        .unwrap_or(0);
    // Counters are process-global and monotonic, so a before/after delta
    // can only over-count (other tests emit too) — never under-count.
    // Zero means the instance never built a multi-node batch and the test
    // would be vacuous; skip the check when telemetry is compiled out.
    if vb_telemetry::snapshot()
        .counter("solver.mip_solves")
        .unwrap_or(0)
        > 0
    {
        assert!(
            batches_after > batches_before,
            "instance too easy: no parallel node batch was ever expanded"
        );
    }
    assert_eq!(sequential.len(), parallel.len());
    for (e, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "epoch {e}: objective diverged between 1 and 8 threads"
        );
        assert_eq!(a.values().len(), b.values().len());
        for (j, (x, y)) in a.values().iter().zip(b.values()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "epoch {e} var {j}: value diverged between 1 and 8 threads"
            );
        }
    }
}

#[test]
fn pair_sweep_bit_matches_sequential() {
    let catalog = Catalog::europe(42);
    let sequential =
        vb_par::with_threads(1, || vb_core::combos::search_pairs(&catalog, 120, 3, 50.0));
    for threads in [2, 8] {
        let parallel = vb_par::with_threads(threads, || {
            vb_core::combos::search_pairs(&catalog, 120, 3, 50.0)
        });
        assert_eq!(
            parallel, sequential,
            "pair sweep diverged at {threads} threads"
        );
    }
}
