//! Grid-purchase optimization (§2.3).
//!
//! "Using these techniques in small scales, just enough to cope with
//! minor variability, can be a beneficial option economically. … by
//! purchasing an additional 4,000 MWhr energy from the grid, we can
//! stabilize 8,000 MWhr of variable energy and achieve a total
//! additional 12,000 MWhr of stable energy."
//!
//! The mechanics: stable energy in a window is `window-min × length`.
//! Buying grid power during the dips raises the window minimum; each
//! unit of purchased energy during the *worst gaps* can promote several
//! units of already-generated (but variable) energy to stable. The
//! optimizer below performs exact greedy water-filling: the marginal
//! cost of raising a window's floor is `(# samples below the floor)`,
//! so it always spends the next MWh where that count is smallest —
//! optimal because each window's cost curve is convex.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vb_stats::TimeSeries;

/// Result of a purchase optimization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PurchasePlan {
    /// Energy bought from the grid, MWh (≤ the budget).
    pub purchased_mwh: f64,
    /// New guaranteed floor per window, MW.
    pub floor_mw: Vec<f64>,
    /// Stable energy before the purchase, MWh.
    pub stable_before_mwh: f64,
    /// Stable energy after the purchase, MWh.
    pub stable_after_mwh: f64,
    /// Purchased power per sample, MW (aligned with the input trace).
    pub purchased_mw: Vec<f64>,
}

impl PurchasePlan {
    /// Total stable energy gained, MWh.
    pub fn stable_gain_mwh(&self) -> f64 {
        self.stable_after_mwh - self.stable_before_mwh
    }

    /// Variable energy promoted to stable (gain beyond what was bought):
    /// the paper's "stabilize 8 000 MWh of variable energy".
    pub fn stabilized_variable_mwh(&self) -> f64 {
        (self.stable_gain_mwh() - self.purchased_mwh).max(0.0)
    }

    /// Leverage: stable MWh gained per purchased MWh (≥1 whenever the
    /// purchase is spent on real gaps).
    pub fn leverage(&self) -> f64 {
        if self.purchased_mwh <= 0.0 {
            0.0
        } else {
            self.stable_gain_mwh() / self.purchased_mwh
        }
    }
}

/// One raisable segment of a window's cost curve.
#[derive(Debug, Clone, Copy)]
struct Segment {
    window: usize,
    /// Samples currently below the floor (the marginal cost in
    /// sample-intervals per MW of floor raise).
    deficit_count: usize,
    /// Floor can rise from here …
    from_mw: f64,
    /// … to here before the deficit count increases.
    to_mw: f64,
}

impl PartialEq for Segment {
    fn eq(&self, other: &Self) -> bool {
        self.deficit_count == other.deficit_count
    }
}
impl Eq for Segment {}
impl PartialOrd for Segment {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Segment {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on deficit count: cheapest marginal cost first.
        other.deficit_count.cmp(&self.deficit_count)
    }
}

/// Spend up to `budget_mwh` of grid energy on a power trace (MW) to
/// maximise stable energy over non-overlapping windows of
/// `window_samples`.
///
/// # Panics
/// Panics if `window_samples` is zero or the budget is negative.
pub fn optimize_purchase(
    power_mw: &TimeSeries,
    window_samples: usize,
    budget_mwh: f64,
) -> PurchasePlan {
    assert!(window_samples > 0, "window must be positive");
    assert!(budget_mwh >= 0.0, "budget must be non-negative");
    let interval_h = power_mw.interval_secs as f64 / 3_600.0;

    // Per window: sorted samples, current floor = min.
    let windows: Vec<Vec<f64>> = power_mw
        .values
        .chunks(window_samples)
        .map(|c| {
            let mut v = c.to_vec();
            v.sort_by(|a, b| a.total_cmp(b));
            v
        })
        .collect();
    let stable_before: f64 = windows
        .iter()
        .map(|w| w[0] * w.len() as f64 * interval_h)
        .sum();

    let mut floor: Vec<f64> = windows.iter().map(|w| w[0]).collect();
    let mut heap = BinaryHeap::new();
    for (i, w) in windows.iter().enumerate() {
        if let Some(mut seg) = next_segment(w, floor[i]) {
            seg.window = i;
            heap.push(seg);
        }
    }

    let mut remaining = budget_mwh;
    while remaining > 1e-12 {
        let Some(seg) = heap.pop() else {
            break;
        };
        // Cost of raising this window's floor across the segment.
        let full_raise = seg.to_mw - seg.from_mw;
        let cost_per_mw = seg.deficit_count as f64 * interval_h;
        if cost_per_mw <= 0.0 {
            continue;
        }
        let affordable = remaining / cost_per_mw;
        let raise = affordable.min(full_raise);
        floor[seg.window] = seg.from_mw + raise;
        remaining -= raise * cost_per_mw;
        if raise >= full_raise - 1e-12 {
            if let Some(mut next) = next_segment(&windows[seg.window], floor[seg.window]) {
                next.window = seg.window;
                heap.push(next);
            }
        }
    }

    // Materialise the purchase per sample and the final stable energy.
    let mut purchased_mw = vec![0.0; power_mw.len()];
    for (i, chunk) in power_mw.values.chunks(window_samples).enumerate() {
        for (k, &p) in chunk.iter().enumerate() {
            purchased_mw[i * window_samples + k] = (floor[i] - p).max(0.0);
        }
    }
    let purchased_mwh: f64 = purchased_mw.iter().sum::<f64>() * interval_h;
    let stable_after: f64 = windows
        .iter()
        .zip(&floor)
        .map(|(w, &f)| f * w.len() as f64 * interval_h)
        .sum();

    PurchasePlan {
        purchased_mwh,
        floor_mw: floor,
        stable_before_mwh: stable_before,
        stable_after_mwh: stable_after,
        purchased_mw,
    }
}

/// The next constant-cost segment of a window's (sorted) cost curve
/// above the current floor; `None` once the floor reaches the window
/// maximum (raising further would buy energy 1:1 with no leverage —
/// still allowed, but never profitable before every cheaper segment).
fn next_segment(sorted: &[f64], floor: f64) -> Option<Segment> {
    let deficit_count = sorted.partition_point(|&v| v <= floor);
    let next_level = sorted[deficit_count.min(sorted.len() - 1)];
    if deficit_count >= sorted.len() || next_level <= floor {
        return None;
    }
    Some(Segment {
        window: usize::MAX, // fixed up by the caller
        deficit_count,
        from_mw: floor,
        to_mw: next_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(3_600, vals.to_vec()) // 1-hour samples: MWh = MW
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let p = optimize_purchase(&ts(&[5.0, 1.0, 4.0, 2.0]), 4, 0.0);
        assert_eq!(p.purchased_mwh, 0.0);
        assert_eq!(p.stable_gain_mwh(), 0.0);
        assert_eq!(p.leverage(), 0.0);
    }

    #[test]
    fn filling_a_single_dip_has_high_leverage() {
        // One 0-MW sample in an otherwise 10-MW window: buying 10 MWh
        // raises the floor from 0 to 10, making all 4 samples stable.
        let p = optimize_purchase(&ts(&[10.0, 0.0, 10.0, 10.0]), 4, 10.0);
        assert!((p.purchased_mwh - 10.0).abs() < 1e-9);
        assert!((p.stable_after_mwh - 40.0).abs() < 1e-9);
        // Gain = 40 MWh stable from 10 MWh bought: leverage 4.
        assert!((p.leverage() - 4.0).abs() < 1e-9);
        assert!((p.stabilized_variable_mwh() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn partial_budget_fills_partially() {
        let p = optimize_purchase(&ts(&[10.0, 0.0, 10.0, 10.0]), 4, 4.0);
        assert!((p.purchased_mwh - 4.0).abs() < 1e-9);
        assert!((p.floor_mw[0] - 4.0).abs() < 1e-9);
        assert!((p.stable_after_mwh - 16.0).abs() < 1e-9);
    }

    #[test]
    fn spends_where_marginal_cost_is_lowest() {
        // Window A has one dip (cheap to fill); window B has three
        // (expensive). The first MWh must go to A.
        let p = optimize_purchase(
            &ts(&[9.0, 0.0, 9.0, 9.0, /* B: */ 9.0, 0.0, 0.0, 0.0]),
            4,
            3.0,
        );
        assert!(
            p.floor_mw[0] > p.floor_mw[1],
            "fills the cheap window first"
        );
        assert!((p.floor_mw[0] - 3.0).abs() < 1e-9);
        assert_eq!(p.floor_mw[1], 0.0);
    }

    #[test]
    fn equal_cost_windows_share_the_budget() {
        // Both windows have one dip each; greedy fills them alternately
        // (segment by segment), ending at equal floors.
        let p = optimize_purchase(&ts(&[5.0, 0.0, 5.0, 5.0, 5.0, 0.0, 5.0, 5.0]), 4, 10.0);
        assert!((p.floor_mw[0] - 5.0).abs() < 1e-9);
        assert!((p.floor_mw[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn purchase_never_exceeds_budget() {
        let trace = ts(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        for budget in [0.5, 2.0, 7.0, 100.0] {
            let p = optimize_purchase(&trace, 4, budget);
            assert!(p.purchased_mwh <= budget + 1e-9, "budget {budget}");
            assert!(p.stable_after_mwh >= p.stable_before_mwh - 1e-9);
        }
    }

    #[test]
    fn saturated_budget_caps_at_window_maxima() {
        // Unlimited budget: floors reach each window's max, and no
        // further (leverage beyond that is 1:1 — not modelled as a gap).
        let p = optimize_purchase(&ts(&[4.0, 2.0, 8.0, 6.0]), 2, 1e9);
        assert!((p.floor_mw[0] - 4.0).abs() < 1e-9);
        assert!((p.floor_mw[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn paper_leverage_regime_reproduced() {
        // §2.3's example gains 12 000 MWh of stable energy from a
        // 4 000 MWh purchase (leverage 3). On the NO+UK+PT combination,
        // a small budget should show leverage well above 1.
        let catalog = vb_trace::Catalog::europe(42);
        let g = crate::multivb::MultiVb::from_catalog(
            &catalog,
            &["NO-solar", "UK-wind", "PT-wind"],
            120,
            3,
        );
        let combined = g.combined();
        let total = combined.energy();
        let p = optimize_purchase(&combined, combined.len(), total * 0.15);
        assert!(p.leverage() > 1.5, "leverage {}", p.leverage());
    }
}
