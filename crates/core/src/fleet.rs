//! Fleet-scale sharded simulation: the follow-up paper's "hundreds of
//! modular data centers" regime, run as many independent multi-VB
//! groups.
//!
//! A fleet is sharded into fixed-size site groups in catalog order;
//! each shard is an independent [`vb_sched::GroupSim`] (its own traces,
//! workload stream, and policy instance) solved under the configured
//! policy and fanned out over [`vb_par::par_map`]. Because results are
//! assembled by shard index and every shard is seeded from `(base seed,
//! shard index)`, a fleet run is **bit-identical at any thread count**
//! — pinned by the fleet determinism test in
//! `crates/bench/tests/determinism.rs`.
//!
//! Shards are deliberately *independent*: no WAN traffic crosses a
//! shard boundary, matching the paper's model where an application is
//! pinned to one latency-feasible multi-VB group (Fig 6 step 2). That
//! independence is exactly what makes the fan-out deterministic and
//! embarrassingly parallel.

use serde::{Deserialize, Serialize};
use vb_sched::{GroupSim, GroupSimConfig, PolicySummary, SimError};
use vb_trace::Catalog;

use crate::multivb::MultiVb;

/// Which placement policy every shard runs (shards never mix policies
/// within one fleet run — the comparison axis is across runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetPolicy {
    /// Greedy most-headroom placement (Table 1 row 1).
    Greedy,
    /// MIP with a 24 h look-ahead (Table 1 row 2).
    Mip24h,
    /// Full-horizon MIP (Table 1 row 3).
    Mip,
    /// Full-horizon MIP with peak shaving + preemptive drains (row 4).
    MipPeak,
}

impl FleetPolicy {
    /// The policy's display name (matches the Table 1 row labels).
    pub fn name(self) -> &'static str {
        match self {
            FleetPolicy::Greedy => "Greedy",
            FleetPolicy::Mip24h => "MIP-24h",
            FleetPolicy::Mip => "MIP",
            FleetPolicy::MipPeak => "MIP-peak",
        }
    }

    /// A fresh policy instance. Constructed *inside* each shard's
    /// closure (policies are stateful and not `Sync`).
    pub fn build(self) -> Box<dyn vb_sched::Policy> {
        use vb_sched::{MipConfig, MipPolicy};
        match self {
            FleetPolicy::Greedy => Box::new(vb_sched::greedy::GreedyPolicy::new()),
            FleetPolicy::Mip24h => Box::new(MipPolicy::new(MipConfig::mip_24h())),
            FleetPolicy::Mip => Box::new(MipPolicy::new(MipConfig::mip())),
            FleetPolicy::MipPeak => Box::new(MipPolicy::new(MipConfig::mip_peak())),
        }
    }
}

/// Fleet run configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Sites per shard (the paper's multi-VB groups are 2–5 sites; the
    /// Table 1 group is 3). The last shard may be smaller.
    pub shard_size: usize,
    /// Per-shard simulation config. Each shard derives its own workload
    /// seed from `sim.seed` and the shard index, so shards see distinct
    /// (but reproducible) arrival streams.
    pub sim: GroupSimConfig,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shard_size: 3,
            sim: GroupSimConfig::default(),
        }
    }
}

/// One shard's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    /// Site names in this shard (catalog order).
    pub sites: Vec<String>,
    /// Coefficient of variation of the shard's combined trace — the
    /// §2.3 complementarity readout, via [`MultiVb`].
    pub cov: f64,
    /// The shard's policy-run summary.
    pub summary: PolicySummary,
}

/// A whole fleet's outcome: per-shard results in shard order plus the
/// fleet-wide aggregates. `PartialEq` so determinism tests can assert
/// bit-identity of entire runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRun {
    /// Policy every shard ran.
    pub policy: String,
    /// Per-shard results, in shard (catalog) order.
    pub shards: Vec<ShardResult>,
    /// Σ migration volume over all shards, GB.
    pub total_gb: f64,
    /// Σ VM placement decisions over all shards.
    pub vm_decisions: u64,
    /// Σ queued-app-steps over all shards.
    pub unavailable_app_steps: u64,
    /// Σ apps dropped while queued.
    pub dropped_apps: usize,
}

/// Shard the catalog into consecutive site-name groups of
/// `shard_size` (the last shard keeps the remainder). Catalog order is
/// the shard identity: the same catalog always shards the same way.
pub fn shard_names(catalog: &Catalog, shard_size: usize) -> Vec<Vec<String>> {
    let size = shard_size.max(1);
    catalog
        .sites()
        .iter()
        .map(|s| s.name.clone())
        .collect::<Vec<_>>()
        .chunks(size)
        .map(|c| c.to_vec())
        .collect()
}

/// Run a policy over the whole fleet, one independent [`GroupSim`] per
/// shard, fanned out over `vb-par` with index-ordered assembly.
///
/// # Errors
/// Propagates the first (lowest-shard-index) [`SimError`] — in
/// practice only reachable with an empty catalog, since shard names
/// come from the catalog itself.
pub fn run_fleet(
    catalog: &Catalog,
    policy: FleetPolicy,
    cfg: &FleetConfig,
) -> Result<FleetRun, SimError> {
    let _span = vb_telemetry::span!("core.fleet_run");
    let shards = shard_names(catalog, cfg.shard_size);
    if shards.is_empty() {
        return Err(SimError::NoSites);
    }
    let results: Vec<Result<ShardResult, SimError>> = vb_par::par_map(shards.len(), |i| {
        let names: Vec<&str> = shards[i].iter().map(String::as_str).collect();
        let sim_cfg = GroupSimConfig {
            // Decorrelate shard workloads while keeping each shard's
            // stream a pure function of (base seed, shard index).
            seed: cfg.sim.seed.wrapping_add(1 + i as u64),
            ..cfg.sim.clone()
        };
        let sim = GroupSim::new(catalog, &names, sim_cfg)?;
        let mut policy = policy.build();
        let summary = sim.run(policy.as_mut());
        let cov = MultiVb::from_catalog(catalog, &names, cfg.sim.start_day, cfg.sim.days).cov();
        Ok(ShardResult {
            sites: shards[i].clone(),
            cov,
            summary,
        })
    });
    let shards: Vec<ShardResult> = results.into_iter().collect::<Result<_, _>>()?;
    for (i, shard) in shards.iter().enumerate() {
        vb_telemetry::series_sample(
            "core.fleet_shards",
            policy.name(),
            i as u64,
            &[
                ("sites", shard.sites.len() as f64),
                ("total_gb", shard.summary.total_gb),
                ("vm_decisions", shard.summary.vm_decisions as f64),
                ("dropped_apps", shard.summary.dropped_apps as f64),
                ("cov", shard.cov),
            ],
        );
    }
    let run = FleetRun {
        policy: policy.name().to_string(),
        total_gb: shards.iter().map(|s| s.summary.total_gb).sum(),
        vm_decisions: shards.iter().map(|s| s.summary.vm_decisions).sum(),
        unavailable_app_steps: shards.iter().map(|s| s.summary.unavailable_app_steps).sum(),
        dropped_apps: shards.iter().map(|s| s.summary.dropped_apps).sum(),
        shards,
    };
    vb_telemetry::event(
        "core.fleet_run",
        &[
            ("policy", run.policy.as_str().into()),
            ("shards", (run.shards.len() as u64).into()),
            ("vm_decisions", run.vm_decisions.into()),
            ("total_gb", run.total_gb.into()),
        ],
    );
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vb_sched::SimCore;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            shard_size: 3,
            sim: GroupSimConfig {
                cores_per_site: 400,
                days: 1,
                seed: 7,
                // The auto-sized workload at 400-core sites is sparse
                // enough that a 1-day run can see zero arrivals; pin an
                // explicit rate so the aggregation asserts are
                // non-vacuous.
                app_cfg: Some(vb_sched::AppGenConfig {
                    arrivals_per_step: 0.5,
                    ..vb_sched::AppGenConfig::default()
                }),
                ..GroupSimConfig::default()
            },
        }
    }

    #[test]
    fn shards_cover_the_catalog_in_order() {
        let catalog = Catalog::fleet(1, 10);
        let shards = shard_names(&catalog, 3);
        assert_eq!(shards.len(), 4, "10 sites / 3 per shard → 3+1 shards");
        assert_eq!(shards[3].len(), 1, "remainder shard keeps the tail");
        let flat: Vec<&str> = shards.iter().flatten().map(String::as_str).collect();
        let names: Vec<&str> = catalog.sites().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(flat, names, "sharding is a partition in catalog order");
        // Degenerate shard size is clamped, not panicking.
        assert_eq!(shard_names(&catalog, 0).len(), 10);
    }

    #[test]
    fn fleet_run_aggregates_shards() {
        let catalog = Catalog::fleet(1, 6);
        let run = run_fleet(&catalog, FleetPolicy::Greedy, &small_cfg()).expect("fleet runs");
        assert_eq!(run.policy, "Greedy");
        assert_eq!(run.shards.len(), 2);
        assert_eq!(
            run.vm_decisions,
            run.shards
                .iter()
                .map(|s| s.summary.vm_decisions)
                .sum::<u64>()
        );
        assert!(run.vm_decisions > 0);
        assert!(run.total_gb >= 0.0);
    }

    #[test]
    fn empty_catalog_is_an_error() {
        let catalog = Catalog::fleet(1, 0);
        assert_eq!(
            run_fleet(&catalog, FleetPolicy::Greedy, &small_cfg()).err(),
            Some(SimError::NoSites)
        );
    }

    #[test]
    fn fleet_runs_agree_across_cores() {
        // The shard layer must preserve the per-group legacy/event
        // equivalence (the deep differential lives in vb-sched).
        let catalog = Catalog::fleet(3, 6);
        let mut cfg = small_cfg();
        cfg.sim.core = SimCore::Legacy;
        let legacy = run_fleet(&catalog, FleetPolicy::Greedy, &cfg).expect("fleet runs");
        cfg.sim.core = SimCore::EventDriven;
        let event = run_fleet(&catalog, FleetPolicy::Greedy, &cfg).expect("fleet runs");
        assert_eq!(legacy, event);
    }
}
