//! The economic case for Virtual Batteries (§2.1).
//!
//! The paper gives four economic arguments; this module turns the
//! quantitative ones into code:
//!
//! 1. **Transmission savings** — "20 % of data center operating cost is
//!    due to power, and 50 % of power expense is due to transmission.
//!    Co-locating data centers obviates this transmission expense",
//!    i.e. ≈10 % of total operating cost.
//! 2. **Curtailment capture** — grid operators force renewable farms to
//!    curtail "as high as 6 % of the overall renewable generation", or
//!    drop wholesale prices to zero/negative; a co-located VB can turn
//!    that otherwise-wasted energy into compute value.
//! 3. **The stable-VM premium** — "spot instances are 60-90 % cheaper
//!    than stable VMs": energy that hosts stable VMs earns several times
//!    what the same energy earns hosting degradable VMs. This is why the
//!    paper's goal is to *maximize stable capacity*, and it is how we
//!    price the value of multi-VB aggregation.

use crate::energy::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// §2.1 cost/price parameters. Defaults are the paper's numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EconomicModel {
    /// Share of data-center operating cost that is power (paper: 20 %).
    pub power_share_of_opex: f64,
    /// Share of power expense that is transmission & distribution
    /// (paper: 50 %).
    pub transmission_share_of_power: f64,
    /// Fraction of renewable generation lost to curtailment when selling
    /// to the grid (paper: up to 6 % and rising).
    pub curtailment_fraction: f64,
    /// Relative price of degradable (spot-like) capacity vs stable
    /// capacity (paper: spot is 60-90 % cheaper → 0.1–0.4; default the
    /// midpoint 0.25).
    pub spot_price_ratio: f64,
    /// Revenue per stable MWh of hosted compute, in arbitrary currency
    /// units (only ratios matter in the reproduction).
    pub stable_value_per_mwh: f64,
}

impl Default for EconomicModel {
    fn default() -> EconomicModel {
        EconomicModel {
            power_share_of_opex: 0.20,
            transmission_share_of_power: 0.50,
            curtailment_fraction: 0.06,
            spot_price_ratio: 0.25,
            stable_value_per_mwh: 100.0,
        }
    }
}

/// The value of a site's energy under the stable/degradable price split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyValue {
    /// Revenue from energy hosting stable VMs.
    pub stable_revenue: f64,
    /// Revenue from energy hosting degradable/spot VMs.
    pub variable_revenue: f64,
}

impl EnergyValue {
    /// Total revenue.
    pub fn total(&self) -> f64 {
        self.stable_revenue + self.variable_revenue
    }
}

impl EconomicModel {
    /// Fraction of total operating cost saved by co-location
    /// (the paper's "total datacenter cost can be reduced by ≈10 %
    /// (= 20 % × 50 %)").
    pub fn transmission_savings_fraction(&self) -> f64 {
        self.power_share_of_opex * self.transmission_share_of_power
    }

    /// Extra energy a VB captures per MWh generated, relative to selling
    /// to a curtailing grid: the curtailed share is free fuel for
    /// compute.
    pub fn curtailment_capture_mwh(&self, generated_mwh: f64) -> f64 {
        generated_mwh * self.curtailment_fraction
    }

    /// Price the stable/variable energy split of a site or group.
    pub fn value_of(&self, breakdown: &EnergyBreakdown) -> EnergyValue {
        EnergyValue {
            stable_revenue: breakdown.stable_mwh * self.stable_value_per_mwh,
            variable_revenue: breakdown.variable_mwh
                * self.stable_value_per_mwh
                * self.spot_price_ratio,
        }
    }

    /// Revenue uplift of an aggregated group over operating the same
    /// sites independently: the §2.3 "does aggregation increase the
    /// stable capacity?" question, priced. Values > 1 mean aggregation
    /// pays even though the total energy is identical.
    pub fn aggregation_uplift(
        &self,
        members: &[EnergyBreakdown],
        combined: &EnergyBreakdown,
    ) -> f64 {
        let solo: f64 = members.iter().map(|b| self.value_of(b).total()).sum();
        if solo <= 0.0 {
            return 1.0;
        }
        self.value_of(combined).total() / solo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(stable: f64, variable: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            stable_mwh: stable,
            variable_mwh: variable,
        }
    }

    #[test]
    fn paper_transmission_savings_is_ten_percent() {
        let m = EconomicModel::default();
        assert!((m.transmission_savings_fraction() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn curtailment_capture_matches_fraction() {
        let m = EconomicModel::default();
        assert!((m.curtailment_capture_mwh(1_000.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn stable_energy_is_worth_several_times_variable() {
        let m = EconomicModel::default();
        let all_stable = m.value_of(&split(100.0, 0.0));
        let all_variable = m.value_of(&split(0.0, 100.0));
        assert!((all_stable.total() / all_variable.total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn spot_discount_band_covers_the_papers_range() {
        // "60-90% cheaper" -> ratio between 0.1 and 0.4.
        for ratio in [0.1, 0.25, 0.4] {
            let m = EconomicModel {
                spot_price_ratio: ratio,
                ..EconomicModel::default()
            };
            let v = m.value_of(&split(50.0, 50.0));
            assert!(v.stable_revenue > v.variable_revenue);
        }
    }

    #[test]
    fn aggregation_uplift_rewards_stable_conversion() {
        let m = EconomicModel::default();
        // Two solo sites: 10 stable + 90 variable each.
        let members = [split(10.0, 90.0), split(10.0, 90.0)];
        // Combined: same 200 MWh total, but 80 stable.
        let combined = split(80.0, 120.0);
        let uplift = m.aggregation_uplift(&members, &combined);
        assert!(uplift > 1.0, "uplift {uplift}");
        // Identical split -> no uplift.
        let same = m.aggregation_uplift(&members, &split(20.0, 180.0));
        assert!((same - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_zero_energy_uplift_is_neutral() {
        let m = EconomicModel::default();
        assert_eq!(m.aggregation_uplift(&[], &split(0.0, 0.0)), 1.0);
    }
}
