#![warn(missing_docs)]

//! # vb-core — the Virtual Battery
//!
//! The paper's primary contribution, as a library:
//!
//! > "Instead of using techniques that adapt the availability of power to
//! > match the computation demand, we shift computational demand to meet
//! > the availability of power. We call this Virtual Battery (VB)."
//!
//! * [`battery`] — [`battery::VirtualBattery`]: one renewable farm
//!   coupled with an edge data center whose computation scales with the
//!   farm's output (Figure 1's proposed architecture).
//! * [`energy`] — the §2.3 stable/variable energy decomposition: within
//!   a window, `min power × window length` is guaranteed and can host
//!   stable VMs; everything above it is variable energy for degradable
//!   VMs.
//! * [`multivb`] — [`multivb::MultiVb`]: a group of VB sites analysed
//!   jointly — combined generation, cov reduction, stable-energy uplift
//!   (Figure 3).
//! * [`combos`] — the §2.3 combination search over a site catalog
//!   ("> 52 % of possible 2-site combinations improved cov by > 50 %"),
//!   parallelised across CPU cores.
//! * [`purchase`] — the grid-purchase optimizer: spend a small energy
//!   budget on the worst gaps to convert variable energy into stable
//!   energy at better than 1:1 ("purchasing 4 000 MWh … achieve a total
//!   additional 12 000 MWh of stable energy").
//! * [`economics`] — the §2.1 economic case: transmission savings,
//!   curtailment capture, and the stable-vs-spot price split that makes
//!   maximizing stable capacity the objective.
//! * [`storage`] — the chemical-battery baseline the paper argues
//!   against: how many MWh of Li-ion would match what aggregation gives
//!   for free.
//!
//! The substrates live in their own crates and are re-exported here:
//! traces ([`vb_trace`]), statistics ([`vb_stats`]), the LP/MIP solver
//! ([`vb_solver`]), the cluster simulator ([`vb_cluster`]), the network
//! layer ([`vb_net`]), the co-scheduler ([`vb_sched`]), the
//! observability layer ([`vb_telemetry`]) and the deterministic
//! parallel executor ([`vb_par`]).

pub mod battery;
pub mod combos;
pub mod economics;
pub mod energy;
pub mod fleet;
pub mod multivb;
pub mod purchase;
pub mod storage;

pub use battery::VirtualBattery;
pub use combos::{search_pairs, ComboStats, PairImprovement};
pub use economics::{EconomicModel, EnergyValue};
pub use energy::{decompose, EnergyBreakdown};
pub use fleet::{run_fleet, shard_names, FleetConfig, FleetPolicy, FleetRun, ShardResult};
pub use multivb::MultiVb;
pub use purchase::{optimize_purchase, PurchasePlan};
pub use storage::{required_capacity_for_stable_fraction, Battery};

pub use vb_cluster;
pub use vb_net;
pub use vb_par;
pub use vb_sched;
pub use vb_solver;
pub use vb_stats;
pub use vb_telemetry;
pub use vb_trace;
