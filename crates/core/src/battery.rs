//! A single Virtual Battery: renewable farm + co-located edge data
//! center (Figure 1's proposed architecture).
//!
//! The `VirtualBattery` couples a [`vb_trace::Site`] with the cluster
//! simulator of `vb-cluster` and the §2.3 energy analysis, providing the
//! one-site view that multi-VB groups and the co-scheduler build upon.

use crate::energy::{decompose, EnergyBreakdown};
use vb_cluster::{simulate_paper_site, SimOutput};
use vb_stats::{coefficient_of_variation, Summary, TimeSeries};
use vb_trace::{forecast_for, Catalog, Horizon, Site};

/// One renewable farm with its co-located data center.
#[derive(Debug, Clone)]
pub struct VirtualBattery {
    site: Site,
    /// Normalized generation (fraction of nameplate capacity).
    normalized: TimeSeries,
}

impl VirtualBattery {
    /// Build a VB for a catalog site over a day window.
    ///
    /// # Panics
    /// Panics if the site is unknown.
    pub fn from_catalog(
        catalog: &Catalog,
        name: &str,
        start_day: u32,
        days: u32,
    ) -> VirtualBattery {
        let site = catalog
            .get(name)
            // vb-audit: allow(no-panic, documented `# Panics` contract of the by-name constructor)
            .unwrap_or_else(|| panic!("unknown site {name}"))
            .clone();
        let normalized = catalog.trace(name, start_day, days);
        VirtualBattery { site, normalized }
    }

    /// Build from an explicit site and normalized trace.
    pub fn new(site: Site, normalized: TimeSeries) -> VirtualBattery {
        VirtualBattery { site, normalized }
    }

    /// The site.
    pub fn site(&self) -> &Site {
        &self.site
    }

    /// Normalized generation (0..=1 of capacity).
    pub fn normalized(&self) -> &TimeSeries {
        &self.normalized
    }

    /// Generation in MW.
    pub fn power_mw(&self) -> TimeSeries {
        self.normalized.scale(self.site.capacity_mw)
    }

    /// Coefficient of variation of this site's generation — the §2.2
    /// variability metric.
    pub fn cov(&self) -> f64 {
        coefficient_of_variation(&self.normalized.values)
    }

    /// Descriptive statistics of the normalized generation (Fig 2b).
    pub fn summary(&self) -> Summary {
        Summary::of(&self.normalized.values)
    }

    /// Stable/variable energy split (§2.3).
    pub fn breakdown(&self, window_samples: usize) -> EnergyBreakdown {
        decompose(&self.power_mw(), window_samples)
    }

    /// A power forecast for this site at the given horizon (Fig 5),
    /// drawn from the catalog's weather field.
    pub fn forecast(&self, catalog: &Catalog, horizon: Horizon) -> TimeSeries {
        forecast_for(&self.normalized, &self.site, horizon, catalog.field())
    }

    /// Run the paper's §3 single-site cluster simulation against this
    /// VB's power (Figure 4): ≈700 servers, Azure-like workload, 70 %
    /// admission target.
    pub fn simulate_cluster(&self, seed: u64) -> SimOutput {
        simulate_paper_site(&self.normalized, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vb() -> (Catalog, VirtualBattery) {
        let catalog = Catalog::europe(42);
        let vb = VirtualBattery::from_catalog(&catalog, "UK-wind", 120, 3);
        (catalog, vb)
    }

    #[test]
    fn power_scales_with_capacity() {
        let (_, vb) = vb();
        let mw = vb.power_mw();
        for (n, m) in vb.normalized().values.iter().zip(&mw.values) {
            assert!((n * 400.0 - m).abs() < 1e-9);
        }
    }

    #[test]
    fn cov_matches_direct_computation() {
        let (_, vb) = vb();
        let direct = coefficient_of_variation(&vb.normalized().values);
        assert_eq!(vb.cov(), direct);
        assert!(vb.cov() > 0.0, "renewables are variable");
    }

    #[test]
    fn breakdown_conserves_energy() {
        let (_, vb) = vb();
        let b = vb.breakdown(96);
        let total = vb.power_mw().energy();
        assert!((b.total_mwh() - total).abs() < 1e-6);
    }

    #[test]
    fn forecast_is_aligned_with_the_trace() {
        let (catalog, vb) = vb();
        let f = vb.forecast(&catalog, Horizon::Hours3);
        assert_eq!(f.len(), vb.normalized().len());
    }

    #[test]
    fn cluster_simulation_runs_over_the_trace() {
        let (_, vb) = vb();
        let out = vb.simulate_cluster(1);
        assert_eq!(out.steps.len(), vb.normalized().len());
    }
}
