//! Multi-VB groups: aggregating complementary sites (§2.3, Figure 3).
//!
//! "Despite the variability in a single renewable site, across different
//! (nearby) locations, times of the day, and sources …, renewable
//! sources often exhibit uncorrelated and complementary patterns of
//! energy production and can reduce overall variability by 3.7×."

use crate::energy::{decompose, EnergyBreakdown};
use serde::{Deserialize, Serialize};
use vb_stats::{coefficient_of_variation, TimeSeries};
use vb_trace::{Catalog, Site};

/// A group of VB sites analysed jointly.
#[derive(Debug, Clone)]
pub struct MultiVb {
    sites: Vec<Site>,
    /// Per-site generation, MW, aligned.
    traces: Vec<TimeSeries>,
}

/// One Figure 3b bar: a site combination with its energy split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComboBreakdown {
    /// `+`-joined site names, e.g. `"NO+UK+PT"`.
    pub label: String,
    /// Stable/variable energy split of the combination.
    pub breakdown: EnergyBreakdown,
    /// Coefficient of variation of the combined power.
    pub cov: f64,
}

impl MultiVb {
    /// Build a group from catalog site names over a day window.
    ///
    /// # Panics
    /// Panics if `names` is empty or contains an unknown site.
    pub fn from_catalog(catalog: &Catalog, names: &[&str], start_day: u32, days: u32) -> MultiVb {
        assert!(!names.is_empty(), "need at least one site");
        let sites: Vec<Site> = names
            .iter()
            .map(|n| {
                catalog
                    .get(n)
                    // vb-audit: allow(no-panic, documented `# Panics` contract of the by-name constructor)
                    .unwrap_or_else(|| panic!("unknown site {n}"))
                    .clone()
            })
            .collect();
        let traces = names
            .iter()
            .map(|n| catalog.trace_mw(n, start_day, days))
            .collect();
        MultiVb { sites, traces }
    }

    /// Build directly from sites and their MW traces.
    ///
    /// # Panics
    /// Panics if lengths differ or the group is empty.
    pub fn new(sites: Vec<Site>, traces: Vec<TimeSeries>) -> MultiVb {
        assert_eq!(sites.len(), traces.len(), "one trace per site");
        assert!(!sites.is_empty(), "need at least one site");
        MultiVb { sites, traces }
    }

    /// The sites in the group.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Per-site MW traces.
    pub fn traces(&self) -> &[TimeSeries] {
        &self.traces
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the group is empty (unreachable via constructors).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Combined generation of the whole group, MW.
    pub fn combined(&self) -> TimeSeries {
        let refs: Vec<&TimeSeries> = self.traces.iter().collect();
        TimeSeries::sum_of(&refs)
    }

    /// Coefficient of variation of the combined generation.
    pub fn cov(&self) -> f64 {
        coefficient_of_variation(&self.combined().values)
    }

    /// cov of a single member site.
    pub fn site_cov(&self, i: usize) -> f64 {
        coefficient_of_variation(&self.traces[i].values)
    }

    /// Factor by which aggregation reduces variability relative to the
    /// best (lowest-cov) member — Figure 3a's "reduces cov by 3.7×" is
    /// this number for NO-solar + UK-wind.
    pub fn cov_improvement(&self) -> f64 {
        let best_single = (0..self.len())
            .map(|i| self.site_cov(i))
            .fold(f64::INFINITY, f64::min);
        let combined = self.cov();
        if combined <= 0.0 {
            f64::INFINITY
        } else {
            best_single / combined
        }
    }

    /// Stable/variable split of the combined generation.
    pub fn breakdown(&self, window_samples: usize) -> EnergyBreakdown {
        decompose(&self.combined(), window_samples)
    }

    /// Figure 3b: breakdowns of every non-empty subset of the group
    /// (2^n − 1 combinations; n is small).
    pub fn subset_breakdowns(&self, window_samples: usize) -> Vec<ComboBreakdown> {
        let n = self.len();
        let mut out = Vec::with_capacity((1 << n) - 1);
        for mask in 1u32..(1 << n) {
            let members: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            let refs: Vec<&TimeSeries> = members.iter().map(|&i| &self.traces[i]).collect();
            let combined = TimeSeries::sum_of(&refs);
            let label = members
                .iter()
                .map(|&i| short_name(&self.sites[i].name))
                .collect::<Vec<_>>()
                .join("+");
            out.push(ComboBreakdown {
                label,
                breakdown: decompose(&combined, window_samples),
                cov: coefficient_of_variation(&combined.values),
            });
        }
        out
    }
}

/// "NO-solar" → "NO": the prefix labels of Figure 3.
fn short_name(name: &str) -> String {
    name.split('-').next().unwrap_or(name).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::WINDOW_3_DAYS;

    fn group() -> MultiVb {
        let catalog = Catalog::europe(42);
        MultiVb::from_catalog(&catalog, &["NO-solar", "UK-wind", "PT-wind"], 120, 3)
    }

    #[test]
    fn combined_sums_member_traces() {
        let g = group();
        let combined = g.combined();
        for t in 0..combined.len() {
            let sum: f64 = g.traces().iter().map(|tr| tr.values[t]).sum();
            assert!((combined.values[t] - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn aggregation_reduces_cov() {
        // The core §2.3 claim.
        let g = group();
        let combined_cov = g.cov();
        for i in 0..g.len() {
            assert!(
                combined_cov < g.site_cov(i),
                "combined {combined_cov} vs site {} {}",
                i,
                g.site_cov(i)
            );
        }
        assert!(g.cov_improvement() > 1.0);
    }

    #[test]
    fn aggregation_increases_stable_fraction() {
        // Fig 3b: combining sites turns variable energy into stable.
        let g = group();
        let solo = MultiVb::new(vec![g.sites()[0].clone()], vec![g.traces()[0].clone()]);
        let combined = g.breakdown(WINDOW_3_DAYS);
        let single = solo.breakdown(WINDOW_3_DAYS);
        assert!(
            combined.stable_fraction() > single.stable_fraction(),
            "combined {} vs single {}",
            combined.stable_fraction(),
            single.stable_fraction()
        );
    }

    #[test]
    fn subset_breakdowns_cover_all_combinations() {
        let g = group();
        let subsets = g.subset_breakdowns(WINDOW_3_DAYS);
        assert_eq!(subsets.len(), 7, "2^3 − 1 combinations");
        let labels: Vec<&str> = subsets.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"NO"));
        assert!(labels.contains(&"NO+UK+PT"));
        // Energy is conserved within each subset.
        for c in &subsets {
            assert!(c.breakdown.total_mwh() > 0.0);
            assert!(c.breakdown.stable_mwh >= 0.0);
        }
    }

    #[test]
    fn short_names_strip_source_suffix() {
        assert_eq!(short_name("NO-solar"), "NO");
        assert_eq!(short_name("UK-wind"), "UK");
        assert_eq!(short_name("plain"), "plain");
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn unknown_site_panics() {
        let catalog = Catalog::europe(1);
        MultiVb::from_catalog(&catalog, &["nowhere"], 0, 1);
    }
}
