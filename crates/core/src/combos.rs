//! The §2.3 combination search.
//!
//! "We searched for complimentary groups of sites, all in close
//! proximity of each other (<50 ms ping latency), over 3 day intervals …
//! even when combining just two sites, > 52 % of possible 2-site
//! combinations improved cov by > 50 %."
//!
//! The sweep over all pairs is embarrassingly parallel; trace
//! generation and the per-pair cov computations are fanned out across
//! CPU cores with `vb_par` (deterministic ordered map, so the results
//! are identical at any thread count — see the determinism tests in
//! `vb-bench`).

use serde::{Deserialize, Serialize};
use vb_stats::{coefficient_of_variation, TimeSeries};
use vb_trace::Catalog;

/// cov improvement of one site pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairImprovement {
    /// First site name.
    pub a: String,
    /// Second site name.
    pub b: String,
    /// cov of the better (lower-cov) member alone.
    pub best_single_cov: f64,
    /// cov of the worse (higher-cov) member alone.
    pub worst_single_cov: f64,
    /// cov of the combined generation.
    pub combined_cov: f64,
    /// `worst_single_cov / combined_cov`: how much steadier the
    /// combination is than the member it rescues. Figure 3a quotes this
    /// convention — "the solar pattern in Norway when complemented with
    /// just one additional wind site (UK wind) reduces cov by 3.7×" is
    /// measured against the solar site.
    pub improvement: f64,
    /// Worst pairwise RTT, ms.
    pub rtt_ms: f64,
}

/// Aggregate statistics of a pair sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComboStats {
    /// Pairs examined (within the latency threshold).
    pub pairs: usize,
    /// Fraction of pairs whose cov improved by more than 50 %
    /// (improvement factor > 2), the paper's headline statistic.
    pub improved_50pct_fraction: f64,
    /// Fraction of pairs with any improvement at all.
    pub improved_fraction: f64,
    /// Median improvement factor.
    pub median_improvement: f64,
    /// The best pair found.
    pub best: Option<PairImprovement>,
}

/// Sweep all site pairs within `latency_threshold_ms`, measuring cov
/// improvement over `days` days starting at `start_day` (the paper uses
/// 3-day intervals and a 50 ms threshold).
pub fn search_pairs(
    catalog: &Catalog,
    start_day: u32,
    days: u32,
    latency_threshold_ms: f64,
) -> (Vec<PairImprovement>, ComboStats) {
    let sites = catalog.sites();
    let n = sites.len();

    // Generate all traces in parallel (the expensive part).
    let traces: Vec<TimeSeries> = vb_par::par_map(n, |i| {
        vb_trace::generate_in(&sites[i], start_day, days, catalog.field())
            .scale(sites[i].capacity_mw)
    });
    let covs: Vec<f64> = traces
        .iter()
        .map(|t| coefficient_of_variation(&t.values))
        .collect();

    // Enumerate the in-range pairs cheaply, then score them in parallel
    // (combined series + cov per pair); chunked claims amortise the
    // work-sharing cursor over the ~C(n,2) small tasks.
    let mut in_range = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let rtt = sites[i].rtt_ms(&sites[j]);
            if rtt < latency_threshold_ms {
                in_range.push((i, j, rtt));
            }
        }
    }
    let pairs = vb_par::par_map_chunked(in_range.len(), 16, |p| {
        let (i, j, rtt) = in_range[p];
        let combined = traces[i].add(&traces[j]);
        let combined_cov = coefficient_of_variation(&combined.values);
        let best_single = covs[i].min(covs[j]);
        let worst_single = covs[i].max(covs[j]);
        PairImprovement {
            a: sites[i].name.clone(),
            b: sites[j].name.clone(),
            best_single_cov: best_single,
            worst_single_cov: worst_single,
            combined_cov,
            improvement: if combined_cov > 0.0 {
                worst_single / combined_cov
            } else {
                f64::INFINITY
            },
            rtt_ms: rtt,
        }
    });

    let stats = summarize(&pairs);
    (pairs, stats)
}

fn summarize(pairs: &[PairImprovement]) -> ComboStats {
    if pairs.is_empty() {
        return ComboStats {
            pairs: 0,
            improved_50pct_fraction: 0.0,
            improved_fraction: 0.0,
            median_improvement: 0.0,
            best: None,
        };
    }
    // "Improved cov by > 50%" = combined cov is less than half the best
    // single cov, i.e. improvement factor > 2.
    let improved_50 = pairs.iter().filter(|p| p.improvement > 2.0).count();
    let improved = pairs.iter().filter(|p| p.improvement > 1.0).count();
    let mut improvements: Vec<f64> = pairs.iter().map(|p| p.improvement).collect();
    improvements.sort_by(|a, b| a.total_cmp(b));
    let best = pairs
        .iter()
        .max_by(|a, b| a.improvement.total_cmp(&b.improvement))
        .cloned();
    ComboStats {
        pairs: pairs.len(),
        improved_50pct_fraction: improved_50 as f64 / pairs.len() as f64,
        improved_fraction: improved as f64 / pairs.len() as f64,
        median_improvement: vb_stats::percentile(&improvements, 50.0),
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_in_range_pairs() {
        let catalog = Catalog::europe(42);
        let (pairs, stats) = search_pairs(&catalog, 120, 3, 50.0);
        // 25 sites -> at most C(25,2) = 300 pairs; the latency threshold
        // removes some.
        assert!(stats.pairs == pairs.len());
        assert!(stats.pairs > 100, "Europe is mostly within 50 ms");
        assert!(stats.pairs <= 300);
        for p in &pairs {
            assert!(p.rtt_ms < 50.0);
            assert!(p.improvement > 0.0);
        }
    }

    #[test]
    fn majority_of_pairs_improve() {
        // §2.3: complementary patterns are the rule, not the exception.
        let catalog = Catalog::europe(42);
        let (_, stats) = search_pairs(&catalog, 120, 3, 50.0);
        assert!(
            stats.improved_fraction > 0.8,
            "improved fraction {}",
            stats.improved_fraction
        );
        assert!(stats.median_improvement > 1.0);
        assert!(stats.best.is_some());
    }

    #[test]
    fn paper_headline_band_for_50pct_improvement() {
        // ">52% of possible 2-site combinations improved cov by >50%".
        // Synthetic catalog: accept a generous band around it.
        let catalog = Catalog::europe(42);
        let (_, stats) = search_pairs(&catalog, 120, 3, 50.0);
        assert!(
            (0.30..0.95).contains(&stats.improved_50pct_fraction),
            "50%-improvement fraction {}",
            stats.improved_50pct_fraction
        );
    }

    #[test]
    fn empty_catalog_yields_empty_stats() {
        let catalog = Catalog::new(1);
        let (pairs, stats) = search_pairs(&catalog, 0, 1, 50.0);
        assert!(pairs.is_empty());
        assert_eq!(stats.pairs, 0);
        assert!(stats.best.is_none());
    }

    #[test]
    fn sweep_is_identical_across_thread_counts() {
        let catalog = Catalog::europe(42);
        let (base, base_stats) = vb_par::with_threads(1, || search_pairs(&catalog, 120, 3, 50.0));
        let (par, par_stats) = vb_par::with_threads(4, || search_pairs(&catalog, 120, 3, 50.0));
        assert_eq!(base, par);
        assert_eq!(base_stats, par_stats);
    }
}
