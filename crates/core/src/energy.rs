//! Stable vs variable energy (§2.3).
//!
//! "We quantify the amount of stable energy generated over a time window
//! as: the minimum power level in the window multiplied by the size of a
//! window. Since this energy is guaranteed to be available in that time
//! window, it can reliably be used for stable VMs, and all remaining
//! energy (called as variable energy) for degradable VMs."

use serde::{Deserialize, Serialize};
use vb_stats::TimeSeries;

/// The §2.3 energy split over a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Guaranteed (window-min) energy, MWh.
    pub stable_mwh: f64,
    /// Everything above the window minimum, MWh.
    pub variable_mwh: f64,
}

impl EnergyBreakdown {
    /// Total energy, MWh.
    pub fn total_mwh(&self) -> f64 {
        self.stable_mwh + self.variable_mwh
    }

    /// Share of energy that is stable, in [0, 1].
    pub fn stable_fraction(&self) -> f64 {
        let total = self.total_mwh();
        if total <= 0.0 {
            0.0
        } else {
            self.stable_mwh / total
        }
    }

    /// Share of energy that is variable, in [0, 1] — the percentages
    /// printed above the bars of Figure 3b.
    pub fn variable_fraction(&self) -> f64 {
        let total = self.total_mwh();
        if total <= 0.0 {
            0.0
        } else {
            self.variable_mwh / total
        }
    }
}

/// Decompose a power trace (MW) into stable and variable energy using
/// non-overlapping windows of `window_samples`.
///
/// # Panics
/// Panics if `window_samples` is zero.
pub fn decompose(power_mw: &TimeSeries, window_samples: usize) -> EnergyBreakdown {
    assert!(window_samples > 0, "window must be positive");
    let total = power_mw.energy();
    // Computed per chunk (not via `window_min(..).energy()`) so a
    // trailing partial window is weighted by its actual length.
    let hours = power_mw.interval_secs as f64 / 3_600.0;
    let stable: f64 = power_mw
        .values
        .chunks(window_samples)
        .map(|c| {
            let min = c.iter().copied().fold(f64::INFINITY, f64::min);
            min * c.len() as f64 * hours
        })
        .sum();
    EnergyBreakdown {
        stable_mwh: stable,
        variable_mwh: (total - stable).max(0.0),
    }
}

/// The paper's window: it evaluates stable energy over 3-day intervals
/// at 15-minute samples.
pub const WINDOW_3_DAYS: usize = 3 * vb_trace::STEPS_PER_DAY;

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(900, vals.to_vec())
    }

    #[test]
    fn constant_power_is_fully_stable() {
        let b = decompose(&ts(&[100.0; 8]), 4);
        assert!((b.stable_mwh - 200.0).abs() < 1e-9, "8 × 15min × 100MW");
        assert_eq!(b.variable_mwh, 0.0);
        assert_eq!(b.stable_fraction(), 1.0);
    }

    #[test]
    fn zero_touching_windows_have_no_stable_energy() {
        // Solar-like: any window touching night (0 MW) guarantees nothing.
        let b = decompose(&ts(&[0.0, 100.0, 200.0, 0.0]), 4);
        assert_eq!(b.stable_mwh, 0.0);
        assert!((b.variable_mwh - 75.0).abs() < 1e-9);
        assert_eq!(b.variable_fraction(), 1.0);
    }

    #[test]
    fn split_is_window_min_times_window() {
        // Window of 2: minima are [50, 100] -> stable = (50+100)*0.5h?
        // Each window covers 2×15min = 0.5 h.
        let b = decompose(&ts(&[50.0, 150.0, 100.0, 300.0]), 2);
        assert!((b.stable_mwh - (50.0 + 100.0) * 0.5).abs() < 1e-9);
        let total = (50.0 + 150.0 + 100.0 + 300.0) * 0.25;
        assert!((b.total_mwh() - total).abs() < 1e-9);
    }

    #[test]
    fn smaller_windows_never_reduce_stable_energy() {
        let series = ts(&[10.0, 80.0, 40.0, 60.0, 5.0, 90.0, 70.0, 30.0]);
        let coarse = decompose(&series, 8).stable_mwh;
        let fine = decompose(&series, 2).stable_mwh;
        assert!(fine >= coarse - 1e-12, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn fractions_handle_zero_total() {
        let b = decompose(&ts(&[0.0, 0.0]), 2);
        assert_eq!(b.stable_fraction(), 0.0);
        assert_eq!(b.variable_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        decompose(&ts(&[1.0]), 0);
    }
}
