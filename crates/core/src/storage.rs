//! Physical (chemical) battery baseline.
//!
//! The paper's opening argument (§1) is that the classical alternatives
//! to the Virtual Battery fall short: "penetration of grid-scale Li-ion
//! and other chemical batteries are minuscule in scale, e.g., in the US
//! battery capacity is ≈0.4 % of the overall solar and wind capacity".
//! This module implements that baseline so the claim can be *measured*:
//! a [`Battery`] smooths a generation trace subject to capacity, power
//! and round-trip-efficiency limits, and
//! [`required_capacity_for_stable_fraction`] computes how many MWh of
//! storage a single site would need to reach the stable-energy share
//! that multi-VB aggregation delivers for free.

use crate::energy::{decompose, EnergyBreakdown};
use serde::{Deserialize, Serialize};
use vb_stats::TimeSeries;

/// A grid-scale battery co-located with one site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Usable energy capacity, MWh.
    pub capacity_mwh: f64,
    /// Maximum charge/discharge power, MW.
    pub max_power_mw: f64,
    /// Round-trip efficiency in (0, 1] (applied on discharge).
    pub round_trip_efficiency: f64,
}

impl Battery {
    /// A Li-ion-like battery: 4-hour duration, 90 % round-trip.
    pub fn li_ion(capacity_mwh: f64) -> Battery {
        Battery {
            capacity_mwh,
            max_power_mw: capacity_mwh / 4.0,
            round_trip_efficiency: 0.90,
        }
    }
}

/// Result of smoothing a trace through a battery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmoothedOutput {
    /// Power delivered to the data center, MW per sample.
    pub delivered: TimeSeries,
    /// Battery state of charge after each sample, MWh.
    pub soc_mwh: Vec<f64>,
    /// Energy lost to round-trip inefficiency, MWh.
    pub losses_mwh: f64,
}

impl Battery {
    /// Operate the battery against a generation trace, targeting the
    /// trace's mean as the delivery level: charge surplus, discharge
    /// deficit, within power/capacity/efficiency limits. Starts half
    /// charged.
    pub fn smooth(&self, generation_mw: &TimeSeries) -> SmoothedOutput {
        let hours = generation_mw.interval_secs as f64 / 3_600.0;
        let target = vb_stats::mean(&generation_mw.values);
        let mut soc = self.capacity_mwh / 2.0;
        let mut delivered = Vec::with_capacity(generation_mw.len());
        let mut soc_series = Vec::with_capacity(generation_mw.len());
        let mut losses = 0.0;

        for &gen in &generation_mw.values {
            if gen >= target {
                // Charge the surplus, limited by power and headroom.
                let surplus = gen - target;
                let charge_mw = surplus
                    .min(self.max_power_mw)
                    .min((self.capacity_mwh - soc) / hours);
                soc += charge_mw * hours;
                delivered.push(gen - charge_mw);
            } else {
                // Discharge toward the target; efficiency is paid here.
                let deficit = target - gen;
                let discharge_mw = deficit
                    .min(self.max_power_mw)
                    .min(soc * self.round_trip_efficiency / hours);
                let drawn_mwh = discharge_mw * hours / self.round_trip_efficiency;
                soc -= drawn_mwh;
                losses += drawn_mwh - discharge_mw * hours;
                delivered.push(gen + discharge_mw);
            }
            soc_series.push(soc);
        }
        SmoothedOutput {
            delivered: TimeSeries {
                start_secs: generation_mw.start_secs,
                interval_secs: generation_mw.interval_secs,
                values: delivered,
            },
            soc_mwh: soc_series,
            losses_mwh: losses,
        }
    }

    /// The §2.3 stable/variable split of the battery-smoothed output.
    pub fn smoothed_breakdown(
        &self,
        generation_mw: &TimeSeries,
        window_samples: usize,
    ) -> EnergyBreakdown {
        decompose(&self.smooth(generation_mw).delivered, window_samples)
    }
}

/// Smallest Li-ion battery (binary search on capacity, MWh) that lifts a
/// site's stable-energy share to `target_fraction` of its total energy.
/// Returns `None` when even a huge battery (10× the trace's total
/// energy) cannot reach the target.
pub fn required_capacity_for_stable_fraction(
    generation_mw: &TimeSeries,
    window_samples: usize,
    target_fraction: f64,
) -> Option<f64> {
    let total = generation_mw.energy();
    if total <= 0.0 {
        return None;
    }
    let reaches = |capacity: f64| {
        let b = Battery::li_ion(capacity);
        // Compare against the *generated* total: losses mean delivered
        // totals shrink, but the target is a share of the site's energy.
        b.smoothed_breakdown(generation_mw, window_samples)
            .stable_mwh
            / total
            >= target_fraction
    };
    let mut hi = total * 10.0;
    if !reaches(hi) {
        return None;
    }
    let mut lo = 0.0;
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if reaches(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(3_600, vals.to_vec()) // hourly: MW == MWh
    }

    #[test]
    fn constant_generation_needs_no_battery_action() {
        let b = Battery::li_ion(100.0);
        let out = b.smooth(&ts(&[50.0; 8]));
        assert_eq!(out.delivered.values, vec![50.0; 8]);
        assert_eq!(out.losses_mwh, 0.0);
    }

    #[test]
    fn battery_flattens_an_alternating_trace() {
        let b = Battery::li_ion(1_000.0);
        let raw = ts(&[100.0, 0.0, 100.0, 0.0, 100.0, 0.0]);
        let out = b.smooth(&raw);
        let raw_cov = vb_stats::coefficient_of_variation(&raw.values);
        let smooth_cov = vb_stats::coefficient_of_variation(&out.delivered.values);
        assert!(smooth_cov < raw_cov * 0.5, "{smooth_cov} vs {raw_cov}");
    }

    #[test]
    fn efficiency_losses_accrue_on_discharge() {
        let b = Battery {
            capacity_mwh: 100.0,
            max_power_mw: 100.0,
            round_trip_efficiency: 0.5,
        };
        let out = b.smooth(&ts(&[100.0, 0.0])); // target 50: charge 50, discharge 50
        assert!(out.losses_mwh > 0.0);
        // Delivering 50 MWh at 50% efficiency draws 100 MWh — but only
        // 50 were stored (start half-charged = 50). Energy conservation:
        let delivered: f64 = out.delivered.values.iter().sum();
        let generated: f64 = 100.0;
        let soc_delta = out.soc_mwh.last().unwrap() - 50.0;
        assert!(
            (generated - delivered - soc_delta - out.losses_mwh).abs() < 1e-9,
            "conservation"
        );
    }

    #[test]
    fn soc_respects_capacity_bounds() {
        let b = Battery::li_ion(10.0);
        let out = b.smooth(&ts(&[100.0, 100.0, 0.0, 0.0, 100.0, 0.0]));
        for &soc in &out.soc_mwh {
            assert!((-1e-9..=10.0 + 1e-9).contains(&soc), "soc {soc}");
        }
    }

    #[test]
    fn power_limit_caps_the_smoothing() {
        let weak = Battery {
            capacity_mwh: 1_000.0,
            max_power_mw: 5.0,
            round_trip_efficiency: 1.0,
        };
        let out = weak.smooth(&ts(&[100.0, 0.0, 100.0, 0.0]));
        // Can only move 5 MW toward the 50 MW target.
        assert_eq!(out.delivered.values[0], 95.0);
        assert_eq!(out.delivered.values[1], 5.0);
    }

    #[test]
    fn bigger_batteries_give_more_stable_energy() {
        let raw = ts(&[80.0, 10.0, 90.0, 5.0, 70.0, 20.0, 85.0, 10.0]);
        let small = Battery::li_ion(10.0).smoothed_breakdown(&raw, 8);
        let big = Battery::li_ion(200.0).smoothed_breakdown(&raw, 8);
        assert!(big.stable_mwh > small.stable_mwh);
    }

    #[test]
    fn required_capacity_search_is_monotone_and_achievable() {
        let raw = ts(&[80.0, 10.0, 90.0, 5.0, 70.0, 20.0, 85.0, 10.0]);
        let base = decompose(&raw, 8).stable_fraction();
        let c1 = required_capacity_for_stable_fraction(&raw, 8, base + 0.1)
            .expect("modest target achievable");
        let c2 = required_capacity_for_stable_fraction(&raw, 8, base + 0.3)
            .expect("higher target achievable");
        assert!(c2 > c1, "higher targets need bigger batteries");
        // The found capacity actually achieves the target.
        let achieved = Battery::li_ion(c2).smoothed_breakdown(&raw, 8).stable_mwh / raw.energy();
        assert!(achieved >= base + 0.3 - 1e-6);
    }

    #[test]
    fn impossible_targets_return_none() {
        assert!(required_capacity_for_stable_fraction(&ts(&[0.0, 0.0]), 2, 0.5).is_none());
    }
}
