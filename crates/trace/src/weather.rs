//! Spatially correlated stochastic weather drivers.
//!
//! §2.3 of the paper rests on one empirical fact: renewable production at
//! different sites is "often independent and/or complimentary", because
//! of (a) different sources, (b) micro-climates/weather and (c) time of
//! day. To reproduce that with synthetic traces, all sites draw their
//! randomness from one shared [`WeatherField`]:
//!
//! * The field owns a grid of *anchor* processes covering Europe. A
//!   site's driver is a distance-weighted blend of AR(1)-smoothed anchor
//!   processes plus an idiosyncratic local component, so correlation
//!   decays smoothly with distance (micro-climate effect).
//! * Anchor processes are read with a longitude-dependent time lag,
//!   mimicking weather systems advected west → east across the continent.
//!   Distant sites therefore see the same front at different times — the
//!   complementary UK-wind / PT-wind pattern of Figure 3a. The lag is
//!   applied to the *smoothed* anchor processes, so nearby sites (whose
//!   lags differ by minutes) stay strongly correlated.
//! * Underlying innovations are generated *counter-based* (hash of
//!   `(seed, channel, anchor, sample index)` → normal deviate), so any
//!   time window of any site can be produced independently and
//!   reproducibly, without storing state.

use crate::site::{haversine_km, Site};

/// Independent driver channels. Using distinct channels guarantees, e.g.,
/// that cloud cover and wind speed are uncorrelated even at one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Cloud transmittance driver (solar sites).
    Cloud,
    /// Slow synoptic wind regime driver.
    WindRegime,
    /// Fast wind turbulence driver.
    WindGust,
}

impl Channel {
    fn id(self) -> u64 {
        match self {
            Channel::Cloud => 1,
            Channel::WindRegime => 2,
            Channel::WindGust => 3,
        }
    }

    /// Spatial correlation length in kilometres. Synoptic systems span
    /// more of the map than individual cloud fields or gusts.
    fn correlation_km(self) -> f64 {
        match self {
            Channel::Cloud => 300.0,
            Channel::WindRegime => 600.0,
            Channel::WindGust => 150.0,
        }
    }

    /// Is this channel advected with the prevailing westerlies?
    fn advected(self) -> bool {
        matches!(self, Channel::WindRegime | Channel::Cloud)
    }
}

/// Shared, seeded source of spatially correlated noise.
#[derive(Debug, Clone)]
pub struct WeatherField {
    seed: u64,
    anchors: Vec<(f64, f64)>, // (lat, lon)
}

/// Eastward speed of weather systems, in degrees of longitude per day.
/// ~8°/day corresponds to a synoptic system crossing Europe in 4–5 days.
const ADVECTION_DEG_PER_DAY: f64 = 8.0;

/// Fraction of a site's driver variance that is purely local
/// (micro-climate), never shared with any other site.
const LOCAL_VARIANCE: f64 = 0.30;

/// Anchor weights below this are skipped entirely.
const MIN_WEIGHT: f64 = 1e-3;

impl WeatherField {
    /// Build a field over the European anchor grid.
    pub fn new(seed: u64) -> WeatherField {
        let mut anchors = Vec::new();
        let mut lat = 36.0;
        while lat <= 66.0 {
            let mut lon = -10.0;
            while lon <= 26.0 {
                anchors.push((lat, lon));
                lon += 6.0;
            }
            lat += 6.0;
        }
        WeatherField { seed, anchors }
    }

    /// The seed this field was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// AR(1)-smoothed, spatially correlated driver series for `site`:
    /// per-sample persistence `rho`, unit marginal variance, covering
    /// absolute sample indices `[t0, t0 + n)` (15-minute samples from the
    /// trace epoch).
    ///
    /// Identical arguments always return identical values; nearby sites
    /// on the same channel are strongly correlated, distant sites nearly
    /// independent, and (on advected channels) eastern sites lag western
    /// ones. Windows are consistent: overlapping windows agree on the
    /// overlap.
    pub fn ar1(&self, channel: Channel, site: &Site, rho: f64, t0: i64, n: usize) -> Vec<f64> {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");

        let corr_km = channel.correlation_km();
        let samples_per_degree = if channel.advected() {
            crate::STEPS_PER_DAY as f64 / ADVECTION_DEG_PER_DAY
        } else {
            0.0
        };

        // Gather contributing anchors and their weights/lags.
        let mut picks: Vec<(usize, f64, i64)> = Vec::new();
        for (idx, &(alat, alon)) in self.anchors.iter().enumerate() {
            let d = haversine_km(site.lat, site.lon, alat, alon);
            let w = (-d / corr_km).exp();
            if w >= MIN_WEIGHT {
                let lag = ((site.lon - alon) * samples_per_degree).round() as i64;
                picks.push((idx, w, lag));
            }
        }

        let w2: f64 = picks.iter().map(|&(_, w, _)| w * w).sum();
        let shared_scale = if w2 > 0.0 {
            ((1.0 - LOCAL_VARIANCE) / w2).sqrt()
        } else {
            0.0
        };

        let mut out = vec![0.0; n];
        for &(idx, w, lag) in &picks {
            let series = ar1_stream(self.seed, channel.id(), idx as u64, rho, t0 - lag, n);
            for (o, s) in out.iter_mut().zip(&series) {
                *o += shared_scale * w * s;
            }
        }
        // Idiosyncratic local component keyed by the site identity.
        let local = ar1_stream(
            self.seed,
            channel.id() ^ 0xdead_beef,
            site.stream_id(),
            rho,
            t0,
            n,
        );
        for (o, l) in out.iter_mut().zip(&local) {
            *o += LOCAL_VARIANCE.sqrt() * l;
        }
        out
    }
}

/// AR(1)-filter the counter-based white noise of one stream, producing
/// unit-variance output over `[t0, t0 + n)`. A warm-up long enough for
/// `rho^warmup < 1e-13` makes the result independent of the window start.
fn ar1_stream(seed: u64, channel: u64, stream: u64, rho: f64, t0: i64, n: usize) -> Vec<f64> {
    let warmup = if rho > 0.0 {
        ((30.0 / (1.0 - rho)).ceil() as usize).min(60_000)
    } else {
        0
    };
    let innov = (1.0 - rho * rho).sqrt();
    let mut y = 0.0;
    let mut out = Vec::with_capacity(n);
    for k in 0..(warmup + n) {
        let t = t0 - warmup as i64 + k as i64;
        y = rho * y + innov * normal(seed, channel, stream, t);
        if k >= warmup {
            out.push(y);
        }
    }
    out
}

/// Counter-based standard normal deviate: hash the coordinates into two
/// uniforms and apply Box–Muller. Pure function — random access in time.
fn normal(seed: u64, channel: u64, stream: u64, t: i64) -> f64 {
    let u1 = uniform(mix4(
        seed,
        channel,
        stream,
        t as u64 ^ 0x9e37_79b9_7f4a_7c15,
    ));
    let u2 = uniform(mix4(
        seed,
        channel,
        stream,
        (t as u64).wrapping_add(0x5851_f42d_4c95_7f2d),
    ));
    // Guard the log: u1 in (0,1].
    let r = (-2.0 * (1.0 - u1).max(1e-12).ln()).sqrt();
    r * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Map a 64-bit hash to a uniform in [0, 1).
fn uniform(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64-style mixing of four words.
fn mix4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(31))
        .wrapping_add(d.rotate_left(47));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vb_stats::{mean, std_dev};

    fn corr(a: &[f64], b: &[f64]) -> f64 {
        let (ma, mb) = (mean(a), mean(b));
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let da: f64 = a.iter().map(|x| (x - ma).powi(2)).sum::<f64>().sqrt();
        let db: f64 = b.iter().map(|y| (y - mb).powi(2)).sum::<f64>().sqrt();
        num / (da * db)
    }

    #[test]
    fn ar1_is_deterministic() {
        let f = WeatherField::new(3);
        let s = Site::solar("a", 50.0, 5.0);
        let x = f.ar1(Channel::Cloud, &s, 0.5, 17, 50);
        let y = f.ar1(Channel::Cloud, &s, 0.5, 17, 50);
        assert_eq!(x, y);
    }

    #[test]
    fn ar1_is_roughly_standard_normal() {
        let f = WeatherField::new(11);
        let s = Site::solar("a", 50.0, 5.0);
        let xs = f.ar1(Channel::Cloud, &s, 0.3, 0, 4_000);
        assert!(mean(&xs).abs() < 0.15, "mean {}", mean(&xs));
        let sd = std_dev(&xs);
        assert!((sd - 1.0).abs() < 0.15, "std {sd}");
    }

    #[test]
    fn correlation_decays_with_distance() {
        let f = WeatherField::new(5);
        let a = Site::solar("a", 50.0, 5.0);
        let near = Site::solar("b", 50.3, 5.3);
        let far = Site::solar("c", 38.0, -9.0);
        // Probe the slow synoptic scale: advection lags differ by a few
        // samples between nearby sites, which decorrelates fast noise but
        // must preserve slow-driver correlation.
        let xa = f.ar1(Channel::Cloud, &a, 0.95, 0, 3_000);
        let c_near = corr(&xa, &f.ar1(Channel::Cloud, &near, 0.95, 0, 3_000));
        let c_far = corr(&xa, &f.ar1(Channel::Cloud, &far, 0.95, 0, 3_000));
        assert!(c_near > 0.4, "near correlation {c_near}");
        assert!(c_far < 0.3, "far correlation {c_far}");
        assert!(c_near > c_far + 0.2);
    }

    #[test]
    fn channels_are_independent() {
        let f = WeatherField::new(7);
        let s = Site::wind("w", 52.0, 0.0);
        let a = f.ar1(Channel::Cloud, &s, 0.5, 0, 3_000);
        let b = f.ar1(Channel::WindRegime, &s, 0.5, 0, 3_000);
        assert!(corr(&a, &b).abs() < 0.12);
    }

    #[test]
    fn ar1_is_serially_correlated() {
        let f = WeatherField::new(9);
        let s = Site::wind("w", 52.0, 0.0);
        let xs = f.ar1(Channel::WindGust, &s, 0.9, 0, 4_000);
        let lag1 = corr(&xs[..xs.len() - 1], &xs[1..]);
        assert!((lag1 - 0.9).abs() < 0.08, "lag-1 autocorr {lag1}");
    }

    #[test]
    fn ar1_windows_are_consistent() {
        // The same absolute instant must get the same value no matter
        // which window it is generated in.
        let f = WeatherField::new(13);
        let s = Site::wind("w", 52.0, 0.0);
        let long = f.ar1(Channel::WindRegime, &s, 0.8, 0, 300);
        let shifted = f.ar1(Channel::WindRegime, &s, 0.8, 100, 200);
        for i in 0..200 {
            assert!(
                (long[100 + i] - shifted[i]).abs() < 1e-9,
                "mismatch at {i}: {} vs {}",
                long[100 + i],
                shifted[i]
            );
        }
    }

    #[test]
    fn advection_lags_eastern_sites() {
        // A site further east should correlate best with a *delayed* copy
        // of a western site's driver.
        let f = WeatherField::new(21);
        let west = Site::wind("w-west", 52.0, -4.0);
        let east = Site::wind("w-east", 52.0, 4.0);
        let n = 4_000;
        let xw = f.ar1(Channel::WindRegime, &west, 0.95, 0, n);
        let xe = f.ar1(Channel::WindRegime, &east, 0.95, 0, n);
        // Expected lag: 8 degrees * 12 samples/degree = 96 samples.
        let at = |lag: usize| corr(&xw[..n - 96], &xe[lag..n - 96 + lag]);
        assert!(
            at(96) > at(0),
            "delayed correlation {} should beat instant {}",
            at(96),
            at(0)
        );
    }

    #[test]
    #[should_panic(expected = "rho must be in [0, 1)")]
    fn ar1_rejects_bad_rho() {
        let f = WeatherField::new(1);
        let s = Site::wind("w", 52.0, 0.0);
        f.ar1(Channel::WindGust, &s, 1.0, 0, 10);
    }
}
