//! Wind generation model.
//!
//! Per Fig 2a, wind production "exhibits sharp peaks and valleys
//! (depending on weather conditions), but rarely go[es] down to zero";
//! per Fig 2b its median is at most ~20 % of peak capacity with a ~2×
//! p99/p75 tail ratio.
//!
//! The model is a classic two-layer construction:
//!
//! 1. **Synoptic regime** — a slow, spatially correlated driver (shared
//!    through [`WeatherField`], advected west→east) sets the regional
//!    mean wind speed, sweeping between calm (~4.5 m/s) and stormy
//!    (~14 m/s) conditions over hours-to-days.
//! 2. **Turbulence** — an Ornstein–Uhlenbeck process reverts the local
//!    wind speed toward the regime mean while fast gust noise perturbs
//!    it.
//!
//! The speed is then pushed through a turbine **power curve**: zero below
//! the cut-in speed, cubic up to the rated speed, flat at 1.0 to the
//! cut-out speed, and an emergency stop above it (storm shut-down gives
//! the occasional cliff from full power to zero).

use crate::site::Site;
use crate::weather::{Channel, WeatherField};
use crate::INTERVAL_15M;
use serde::{Deserialize, Serialize};
use vb_stats::TimeSeries;

/// Tunable wind model; [`WindModel::default`] is calibrated against the
/// paper's Figure 2 statistics (see `tests/calibration.rs`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindModel {
    /// Long-run mean wind speed (m/s) in the neutral regime.
    pub base_speed: f64,
    /// How strongly the synoptic driver swings the regime mean (m/s per
    /// driver standard deviation).
    pub regime_gain: f64,
    /// Seasonal amplitude (m/s): winter is windier in Europe.
    pub seasonal_amplitude: f64,
    /// AR(1) persistence per 15-minute step of the synoptic driver.
    pub regime_rho: f64,
    /// OU mean-reversion rate per 15-minute step.
    pub reversion: f64,
    /// Gust (innovation) standard deviation, m/s per step.
    pub gust_sigma: f64,
    /// Turbine cut-in speed, m/s.
    pub cut_in: f64,
    /// Turbine rated speed, m/s.
    pub rated: f64,
    /// Turbine cut-out (storm shutdown) speed, m/s.
    pub cut_out: f64,
}

impl Default for WindModel {
    fn default() -> WindModel {
        WindModel {
            base_speed: 7.2,
            regime_gain: 2.8,
            seasonal_amplitude: 1.1,
            regime_rho: 0.997,
            reversion: 0.06,
            gust_sigma: 0.55,
            cut_in: 3.0,
            rated: 13.0,
            cut_out: 25.0,
        }
    }
}

impl WindModel {
    /// Generate `days` days of normalized wind power for `site` at
    /// 15-minute resolution, starting at day-of-year `start_day`.
    pub fn generate(
        &self,
        site: &Site,
        start_day: u32,
        days: u32,
        field: &WeatherField,
    ) -> TimeSeries {
        let n = days as usize * crate::STEPS_PER_DAY;
        let t0 = start_day as i64 * crate::STEPS_PER_DAY as i64;

        // Warm the OU integration up from well before the window so the
        // speed at any absolute instant is independent of the window
        // start (the drivers themselves are already window-consistent).
        let warmup = (30.0 / self.reversion).ceil() as usize;
        let gen_start = t0 - warmup as i64;
        let total = warmup + n;
        let regime = field.ar1(Channel::WindRegime, site, self.regime_rho, gen_start, total);
        let gusts = field.ar1(Channel::WindGust, site, 0.3, gen_start, total);

        let mut values = Vec::with_capacity(n);
        let mut v = self.regime_mean(regime[0], start_day);
        for k in 0..total {
            let day_of_year = ((gen_start + k as i64).div_euclid(crate::STEPS_PER_DAY as i64))
                .rem_euclid(365) as u32;
            let mu = self.regime_mean(regime[k], day_of_year);
            v += self.reversion * (mu - v) + self.gust_sigma * gusts[k];
            v = v.max(0.0);
            if k >= warmup {
                values.push(self.power_curve(v));
            }
        }
        TimeSeries::with_start(start_day as u64 * 86_400, INTERVAL_15M, values)
    }

    /// Regime mean wind speed given the synoptic driver value and season.
    fn regime_mean(&self, driver: f64, day_of_year: u32) -> f64 {
        let seasonal = self.seasonal_amplitude
            * (2.0 * std::f64::consts::PI * (day_of_year as f64 - 15.0) / 365.0).cos();
        (self.base_speed + self.regime_gain * driver + seasonal).clamp(1.0, 20.0)
    }

    /// Normalized turbine output for a wind speed in m/s.
    pub fn power_curve(&self, speed: f64) -> f64 {
        if speed < self.cut_in || speed >= self.cut_out {
            return 0.0;
        }
        if speed >= self.rated {
            return 1.0;
        }
        let num = speed.powi(3) - self.cut_in.powi(3);
        let den = self.rated.powi(3) - self.cut_in.powi(3);
        (num / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vb_stats::Summary;

    #[test]
    fn power_curve_shape() {
        let m = WindModel::default();
        assert_eq!(m.power_curve(0.0), 0.0);
        assert_eq!(m.power_curve(2.9), 0.0, "below cut-in");
        assert_eq!(m.power_curve(13.0), 1.0, "at rated");
        assert_eq!(m.power_curve(20.0), 1.0, "between rated and cut-out");
        assert_eq!(m.power_curve(25.0), 0.0, "storm shutdown");
        let p7 = m.power_curve(7.0);
        assert!(p7 > 0.0 && p7 < 1.0);
        // Monotone in the cubic region.
        assert!(m.power_curve(9.0) > p7);
    }

    #[test]
    fn wind_rarely_reaches_zero_but_varies() {
        // Fig 2a: wind has sharp peaks and valleys, rarely zero.
        let site = Site::wind("w", 52.0, 0.0);
        let t = WindModel::default().generate(&site, 0, 60, &WeatherField::new(4));
        let zero_frac = t.values.iter().filter(|&&v| v == 0.0).count() as f64 / t.len() as f64;
        assert!(zero_frac < 0.35, "zero fraction {zero_frac}");
        let s = Summary::of(&t.values);
        assert!(s.cov > 0.5, "wind must be volatile, cov {}", s.cov);
    }

    #[test]
    fn wind_median_is_well_below_peak() {
        // Fig 2b: "median values reaching at most 20% the peak capacity
        // for wind".
        let site = Site::wind("w", 52.0, 0.0);
        let t = WindModel::default().generate(&site, 0, 365, &WeatherField::new(5));
        let s = Summary::of(&t.values);
        assert!(s.p50 <= 0.25, "median {}", s.p50);
        assert!(s.max > 0.9, "should occasionally hit rated power");
    }

    #[test]
    fn winter_is_windier_than_summer() {
        let site = Site::wind("w", 52.0, 0.0);
        let model = WindModel::default();
        let field = WeatherField::new(6);
        let winter = model.generate(&site, 0, 30, &field); // Jan
        let summer = model.generate(&site, 180, 30, &field); // Jul
        assert!(
            Summary::of(&winter.values).mean > Summary::of(&summer.values).mean * 0.9,
            "winter {} vs summer {}",
            Summary::of(&winter.values).mean,
            Summary::of(&summer.values).mean
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let site = Site::wind("w", 52.0, 0.0);
        let f = WeatherField::new(7);
        let a = WindModel::default().generate(&site, 10, 5, &f);
        let b = WindModel::default().generate(&site, 10, 5, &f);
        assert_eq!(a, b);
    }
}
