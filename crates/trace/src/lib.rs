#![warn(missing_docs)]

//! # vb-trace — synthetic renewable generation traces
//!
//! The paper's evaluation is driven by two datasets we cannot ship:
//!
//! * **ELIA** — 15-minute solar/wind generation for 25 Belgian sites,
//!   including official power forecasts (Figures 2, 4, 5), and
//! * **EMHIRES** — normalized hourly generation for >500 European sites
//!   (the §2.3 site-combination study, Figure 3).
//!
//! This crate replaces both with physically-motivated, seeded, fully
//! deterministic synthetic generators:
//!
//! * [`solar`] — clear-sky solar geometry (declination, elevation, day
//!   length from latitude and day-of-year) modulated by a three-state
//!   Markov cloud process (clear / variable / overcast days). This
//!   reproduces the diurnal and seasonal structure of Figure 2a,
//!   including overcast days peaking at a few percent of capacity next to
//!   sunny days peaking near 80 %, and >50 % zero samples over a year
//!   (Figure 2b).
//! * [`wind`] — an Ornstein–Uhlenbeck wind-speed process whose mean
//!   switches between weather regimes (calm / breezy / windy / storm),
//!   pushed through a turbine power curve (cut-in, cubic region, rated,
//!   cut-out). This yields the sharp peaks and valleys of Figure 2a and a
//!   median well under 20 % of peak capacity with a ~2× p99/p75 tail
//!   (Figure 2b).
//! * [`weather`] — spatially correlated stochastic drivers shared between
//!   sites, with correlation decaying over a few hundred kilometres and
//!   weather systems advected eastward. Nearby same-source sites
//!   correlate; distant or different-source sites complement, which is
//!   what makes the §2.3 multi-VB aggregation work.
//! * [`forecast`] — a horizon-parameterised forecast simulator calibrated
//!   to the paper's MAPE bands (8.5–9 % at 3 h, 18–25 % at day,
//!   44 %/75 % at week ahead; Figure 5).
//! * [`catalog`] — a geo-referenced catalog of European sites, including
//!   the NO-solar / UK-wind / PT-wind trio of Figure 3, all with the
//!   400 MW peak capacity the paper assumes.
//! * [`io`] — CSV and compact binary trace serialization.
//!
//! Everything is deterministic given a [`u64`] seed, so experiments and
//! tests are reproducible bit-for-bit.

pub mod catalog;
pub mod forecast;
pub mod io;
pub mod site;
pub mod solar;
pub mod weather;
pub mod wind;

pub use catalog::Catalog;
pub use forecast::{forecast_for, Horizon};
pub use site::{Site, SourceKind};
pub use solar::SolarModel;
pub use weather::WeatherField;
pub use wind::WindModel;

use vb_stats::TimeSeries;

/// Default sampling interval: 15 minutes, matching the ELIA dataset.
pub const INTERVAL_15M: u64 = 900;

/// Samples per day at the 15-minute interval (24 h × 4). The canonical
/// horizon constant: every `96` in the workspace must trace back here or
/// to [`DAY_AHEAD_STEPS`] (enforced by vb-audit's `horizon-literal`
/// lint).
pub const STEPS_PER_DAY: usize = 96;

/// Steps in a week-ahead horizon (7 × [`STEPS_PER_DAY`]).
pub const WEEK_AHEAD_STEPS: usize = 7 * STEPS_PER_DAY;

/// Generate a normalized (0..=1 of peak capacity) generation trace for a
/// site over `days` days starting at `start_day` (day-of-year, 0-based),
/// using a site-specific stream of the global `seed`.
///
/// This is the one-call entry point used throughout the workspace; the
/// per-source models in [`solar`] and [`wind`] expose the knobs.
pub fn generate(site: &Site, start_day: u32, days: u32, seed: u64) -> TimeSeries {
    let field = WeatherField::new(seed);
    generate_in(site, start_day, days, &field)
}

/// Like [`generate`], but drawing from an existing [`WeatherField`] so
/// that multiple sites share correlated weather.
pub fn generate_in(site: &Site, start_day: u32, days: u32, field: &WeatherField) -> TimeSeries {
    match site.kind {
        SourceKind::Solar => SolarModel::default().generate(site, start_day, days, field),
        SourceKind::Wind => WindModel::default().generate(site, start_day, days, field),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_per_seed() {
        let site = Site::solar("test", 50.0, 4.0);
        let a = generate(&site, 120, 4, 7);
        let b = generate(&site, 120, 4, 7);
        let c = generate(&site, 120, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generate_covers_requested_span_at_15min() {
        let site = Site::wind("test", 55.0, -3.0);
        let t = generate(&site, 0, 3, 1);
        assert_eq!(t.interval_secs, INTERVAL_15M);
        assert_eq!(t.len(), 3 * 96);
    }

    #[test]
    fn generated_power_is_normalized() {
        for site in [Site::solar("s", 45.0, 10.0), Site::wind("w", 52.0, 0.0)] {
            let t = generate(&site, 100, 30, 42);
            assert!(t.min().unwrap() >= 0.0);
            assert!(t.max().unwrap() <= 1.0);
        }
    }
}
