//! Renewable sites: location, source kind, capacity, and geography.
//!
//! §2.3 of the paper assumes every farm has the median peak capacity of
//! large farms worldwide — 400 MW — and forms multi-VB groups from sites
//! "in close proximity of each other (<50 ms ping latency)". The latency
//! model here (great-circle distance at a fraction of the speed of light
//! plus a fixed processing overhead) provides that proximity notion.

use serde::{Deserialize, Serialize};

/// The paper's assumed per-farm peak capacity (§2.3).
pub const DEFAULT_CAPACITY_MW: f64 = 400.0;

/// Mean Earth radius in kilometres, for great-circle distances.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// Which renewable source powers a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// Photovoltaic generation (diurnal, zero at night).
    Solar,
    /// Wind-turbine generation (synoptic, rarely zero).
    Wind,
}

impl SourceKind {
    /// Short label used in trace files and reports.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::Solar => "solar",
            SourceKind::Wind => "wind",
        }
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A renewable farm co-located with a VB edge data center.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Human-readable identifier, e.g. `"NO-solar"`.
    pub name: String,
    /// Latitude in degrees north.
    pub lat: f64,
    /// Longitude in degrees east.
    pub lon: f64,
    /// Energy source.
    pub kind: SourceKind,
    /// Peak (nameplate) capacity in MW.
    pub capacity_mw: f64,
}

impl Site {
    /// A solar site with the default 400 MW capacity.
    pub fn solar(name: &str, lat: f64, lon: f64) -> Site {
        Site {
            name: name.to_string(),
            lat,
            lon,
            kind: SourceKind::Solar,
            capacity_mw: DEFAULT_CAPACITY_MW,
        }
    }

    /// A wind site with the default 400 MW capacity.
    pub fn wind(name: &str, lat: f64, lon: f64) -> Site {
        Site {
            name: name.to_string(),
            lat,
            lon,
            kind: SourceKind::Wind,
            capacity_mw: DEFAULT_CAPACITY_MW,
        }
    }

    /// Override the nameplate capacity (builder style).
    pub fn with_capacity(mut self, capacity_mw: f64) -> Site {
        self.capacity_mw = capacity_mw;
        self
    }

    /// Great-circle distance to another site, in kilometres.
    pub fn distance_km(&self, other: &Site) -> f64 {
        haversine_km(self.lat, self.lon, other.lat, other.lon)
    }

    /// Estimated round-trip latency to another site, in milliseconds.
    ///
    /// Light in fibre covers ~200 km/ms one way; real WAN paths are not
    /// geodesics, so we apply a 1.5× path-stretch factor and add 2 ms of
    /// fixed switching/processing overhead. The absolute values only
    /// matter relative to the paper's 50 ms multi-VB edge threshold.
    pub fn rtt_ms(&self, other: &Site) -> f64 {
        let km = self.distance_km(other);
        let one_way_ms = km * 1.5 / 200.0;
        2.0 * one_way_ms + 2.0
    }

    /// Deterministic 64-bit identity used to derive per-site RNG streams.
    pub fn stream_id(&self) -> u64 {
        // FNV-1a over the name and kind: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes().chain(std::iter::once(match self.kind {
            SourceKind::Solar => 0u8,
            SourceKind::Wind => 1u8,
        })) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Great-circle (haversine) distance between two lat/lon points, in km.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_matches_known_city_pair() {
        // London (51.5074, -0.1278) to Paris (48.8566, 2.3522) ≈ 344 km.
        let d = haversine_km(51.5074, -0.1278, 48.8566, 2.3522);
        assert!((d - 344.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Site::solar("a", 60.0, 10.0);
        let b = Site::wind("b", 52.0, -1.5);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
        assert!(a.distance_km(&a) < 1e-9);
    }

    #[test]
    fn rtt_grows_with_distance_and_has_floor() {
        let a = Site::solar("a", 50.0, 5.0);
        let near = Site::wind("n", 50.5, 5.0);
        let far = Site::wind("f", 40.0, -8.0);
        assert!(a.rtt_ms(&near) < a.rtt_ms(&far));
        assert!(a.rtt_ms(&a) >= 2.0, "fixed overhead floor");
    }

    #[test]
    fn nearby_sites_fit_under_the_50ms_threshold() {
        // Oslo to Lisbon is ~2 800 km -> should still be under 50 ms RTT;
        // the paper groups NO/UK/PT sites together.
        let no = Site::solar("NO", 59.9, 10.7);
        let pt = Site::wind("PT", 38.7, -9.1);
        assert!(no.rtt_ms(&pt) < 50.0, "got {}", no.rtt_ms(&pt));
    }

    #[test]
    fn stream_ids_differ_by_name_and_kind() {
        let a = Site::solar("x", 0.0, 0.0);
        let b = Site::wind("x", 0.0, 0.0);
        let c = Site::solar("y", 0.0, 0.0);
        assert_ne!(a.stream_id(), b.stream_id());
        assert_ne!(a.stream_id(), c.stream_id());
        assert_eq!(a.stream_id(), Site::solar("x", 9.0, 9.0).stream_id());
    }

    #[test]
    fn builders_set_fields() {
        let s = Site::wind("w", 1.0, 2.0).with_capacity(250.0);
        assert_eq!(s.kind, SourceKind::Wind);
        assert_eq!(s.capacity_mw, 250.0);
        assert_eq!(SourceKind::Wind.label(), "wind");
        assert_eq!(format!("{}", SourceKind::Solar), "solar");
    }
}
