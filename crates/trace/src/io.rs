//! Trace serialization: a simple CSV form for interoperability with
//! plotting tools, and a compact binary codec (via `bytes`) for caching
//! long simulation inputs.
//!
//! CSV layout (one sample per line):
//!
//! ```csv
//! # interval_secs=900 start_secs=0
//! time_secs,value
//! 0,0.000000
//! 900,0.012345
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt::Write as _;
use vb_stats::TimeSeries;

/// Errors arising when decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIoError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A data line could not be parsed.
    BadLine {
        /// 1-based line number in the input.
        line_no: usize,
        /// The offending line's content.
        content: String,
    },
    /// Binary payload truncated or wrong magic.
    BadBinary(&'static str),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::BadHeader(h) => write!(f, "bad trace header: {h}"),
            TraceIoError::BadLine { line_no, content } => {
                write!(f, "bad trace line {line_no}: {content}")
            }
            TraceIoError::BadBinary(why) => write!(f, "bad binary trace: {why}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

/// Serialize a series to CSV.
pub fn to_csv(series: &TimeSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# interval_secs={} start_secs={}",
        series.interval_secs, series.start_secs
    );
    out.push_str("time_secs,value\n");
    for (i, v) in series.values.iter().enumerate() {
        let _ = writeln!(out, "{},{:.6}", series.time_of(i), v);
    }
    out
}

/// Parse a series from the CSV produced by [`to_csv`].
pub fn from_csv(text: &str) -> Result<TimeSeries, TraceIoError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader("empty input".into()))?;
    let (interval_secs, start_secs) = parse_header(header)?;

    let mut values = Vec::new();
    for (line_no, line) in lines {
        let line = line.trim();
        if line.is_empty() || line == "time_secs,value" {
            continue;
        }
        let value = line
            .split(',')
            .nth(1)
            .and_then(|v| v.trim().parse::<f64>().ok())
            .ok_or_else(|| TraceIoError::BadLine {
                line_no: line_no + 1,
                content: line.to_string(),
            })?;
        values.push(value);
    }
    Ok(TimeSeries {
        start_secs,
        interval_secs,
        values,
    })
}

fn parse_header(header: &str) -> Result<(u64, u64), TraceIoError> {
    let bad = || TraceIoError::BadHeader(header.to_string());
    if !header.starts_with('#') {
        return Err(bad());
    }
    let mut interval = None;
    let mut start = None;
    for tok in header.trim_start_matches('#').split_whitespace() {
        if let Some(v) = tok.strip_prefix("interval_secs=") {
            interval = v.parse::<u64>().ok();
        } else if let Some(v) = tok.strip_prefix("start_secs=") {
            start = v.parse::<u64>().ok();
        }
    }
    match (interval, start) {
        (Some(i), Some(s)) if i > 0 => Ok((i, s)),
        _ => Err(bad()),
    }
}

const BINARY_MAGIC: u32 = 0x5642_5452; // "VBTR"

/// Encode a series into the compact binary form:
/// `magic u32 | start u64 | interval u64 | len u64 | f64 × len`
/// (all little-endian).
pub fn to_binary(series: &TimeSeries) -> Bytes {
    let mut buf = BytesMut::with_capacity(28 + 8 * series.len());
    buf.put_u32_le(BINARY_MAGIC);
    buf.put_u64_le(series.start_secs);
    buf.put_u64_le(series.interval_secs);
    buf.put_u64_le(series.len() as u64);
    for &v in &series.values {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Decode the binary form produced by [`to_binary`].
pub fn from_binary(mut data: Bytes) -> Result<TimeSeries, TraceIoError> {
    if data.remaining() < 28 {
        return Err(TraceIoError::BadBinary("truncated header"));
    }
    if data.get_u32_le() != BINARY_MAGIC {
        return Err(TraceIoError::BadBinary("wrong magic"));
    }
    let start_secs = data.get_u64_le();
    let interval_secs = data.get_u64_le();
    if interval_secs == 0 {
        return Err(TraceIoError::BadBinary("zero interval"));
    }
    let len = data.get_u64_le() as usize;
    if data.remaining() < len * 8 {
        return Err(TraceIoError::BadBinary("truncated payload"));
    }
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(data.get_f64_le());
    }
    Ok(TimeSeries {
        start_secs,
        interval_secs,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        TimeSeries::with_start(900, 900, vec![0.0, 0.25, 0.5, 1.0])
    }

    #[test]
    fn csv_round_trips() {
        let s = sample();
        let parsed = from_csv(&to_csv(&s)).unwrap();
        assert_eq!(parsed.start_secs, s.start_secs);
        assert_eq!(parsed.interval_secs, s.interval_secs);
        assert_eq!(parsed.values, s.values);
    }

    #[test]
    fn csv_contains_wall_clock_times() {
        let csv = to_csv(&sample());
        assert!(csv.contains("900,0.000000"));
        assert!(csv.contains("1800,0.250000"));
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(matches!(from_csv(""), Err(TraceIoError::BadHeader(_))));
        assert!(matches!(
            from_csv("not a header\n1,2"),
            Err(TraceIoError::BadHeader(_))
        ));
        let bad_line = "# interval_secs=900 start_secs=0\ntime_secs,value\nxyz";
        assert!(matches!(
            from_csv(bad_line),
            Err(TraceIoError::BadLine { .. })
        ));
    }

    #[test]
    fn csv_rejects_zero_interval() {
        assert!(from_csv("# interval_secs=0 start_secs=0\n").is_err());
    }

    #[test]
    fn binary_round_trips() {
        let s = sample();
        assert_eq!(from_binary(to_binary(&s)).unwrap(), s);
    }

    #[test]
    fn binary_rejects_corruption() {
        let bytes = to_binary(&sample());
        assert!(matches!(
            from_binary(bytes.slice(0..10)),
            Err(TraceIoError::BadBinary("truncated header"))
        ));
        assert!(matches!(
            from_binary(bytes.slice(0..30)),
            Err(TraceIoError::BadBinary("truncated payload"))
        ));
        let mut corrupted = BytesMut::from(&bytes[..]);
        corrupted[0] ^= 0xff;
        assert!(matches!(
            from_binary(corrupted.freeze()),
            Err(TraceIoError::BadBinary("wrong magic"))
        ));
    }

    #[test]
    fn errors_display_usefully() {
        let e = TraceIoError::BadLine {
            line_no: 3,
            content: "x".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}

/// Serialize a whole dataset — several sites' aligned normalized traces —
/// into one CSV, the shape real ELIA/EMHIRES exports come in:
///
/// ```csv
/// # interval_secs=900 start_secs=0
/// # site NO-solar solar 59.3 10.5 400
/// # site UK-wind wind 53.5 -1.0 400
/// time_secs,NO-solar,UK-wind
/// 0,0.000000,0.412000
/// ```
///
/// # Panics
/// Panics if the vectors differ in length or the traces are misaligned.
pub fn dataset_to_csv(sites: &[crate::Site], traces: &[TimeSeries]) -> String {
    assert_eq!(sites.len(), traces.len(), "one trace per site");
    assert!(!traces.is_empty(), "empty dataset");
    let first = &traces[0];
    for t in traces {
        assert_eq!(t.interval_secs, first.interval_secs, "interval mismatch");
        assert_eq!(t.start_secs, first.start_secs, "start mismatch");
        assert_eq!(t.len(), first.len(), "length mismatch");
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# interval_secs={} start_secs={}",
        first.interval_secs, first.start_secs
    );
    for s in sites {
        let _ = writeln!(
            out,
            "# site {} {} {} {} {}",
            s.name,
            s.kind.label(),
            s.lat,
            s.lon,
            s.capacity_mw
        );
    }
    out.push_str("time_secs");
    for s in sites {
        let _ = write!(out, ",{}", s.name);
    }
    out.push('\n');
    for i in 0..first.len() {
        let _ = write!(out, "{}", first.time_of(i));
        for t in traces {
            let _ = write!(out, ",{:.6}", t.values[i]);
        }
        out.push('\n');
    }
    out
}

/// Parse the dataset CSV produced by [`dataset_to_csv`] (or hand-built
/// from a real dataset export) back into sites and aligned traces.
pub fn dataset_from_csv(text: &str) -> Result<(Vec<crate::Site>, Vec<TimeSeries>), TraceIoError> {
    use crate::{Site, SourceKind};
    let mut lines = text.lines().enumerate().peekable();
    let (_, header) = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader("empty input".into()))?;
    let (interval_secs, start_secs) = parse_header(header)?;

    let mut sites: Vec<Site> = Vec::new();
    while let Some((_, line)) = lines.peek() {
        let Some(rest) = line.strip_prefix("# site ") else {
            break;
        };
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let bad = || TraceIoError::BadHeader(line.to_string());
        if parts.len() != 5 {
            return Err(bad());
        }
        let kind = match parts[1] {
            "solar" => SourceKind::Solar,
            "wind" => SourceKind::Wind,
            _ => return Err(bad()),
        };
        let lat: f64 = parts[2].parse().map_err(|_| bad())?;
        let lon: f64 = parts[3].parse().map_err(|_| bad())?;
        let cap: f64 = parts[4].parse().map_err(|_| bad())?;
        let site = match kind {
            SourceKind::Solar => Site::solar(parts[0], lat, lon),
            SourceKind::Wind => Site::wind(parts[0], lat, lon),
        }
        .with_capacity(cap);
        sites.push(site);
        lines.next();
    }
    if sites.is_empty() {
        return Err(TraceIoError::BadHeader("no '# site' lines".into()));
    }

    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); sites.len()];
    for (line_no, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with("time_secs") {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != sites.len() + 1 {
            return Err(TraceIoError::BadLine {
                line_no: line_no + 1,
                content: line.to_string(),
            });
        }
        for (col, cell) in columns.iter_mut().zip(&cells[1..]) {
            let v: f64 = cell.trim().parse().map_err(|_| TraceIoError::BadLine {
                line_no: line_no + 1,
                content: line.to_string(),
            })?;
            col.push(v);
        }
    }
    let traces = columns
        .into_iter()
        .map(|values| TimeSeries {
            start_secs,
            interval_secs,
            values,
        })
        .collect();
    Ok((sites, traces))
}

#[cfg(test)]
mod dataset_tests {
    use super::*;
    use crate::Site;

    fn sample() -> (Vec<Site>, Vec<TimeSeries>) {
        let sites = vec![
            Site::solar("NO-solar", 59.3, 10.5),
            Site::wind("UK-wind", 53.5, -1.0).with_capacity(250.0),
        ];
        let traces = vec![
            TimeSeries::with_start(86_400, 900, vec![0.0, 0.25, 0.5]),
            TimeSeries::with_start(86_400, 900, vec![0.4, 0.41, 0.39]),
        ];
        (sites, traces)
    }

    #[test]
    fn dataset_round_trips() {
        let (sites, traces) = sample();
        let csv = dataset_to_csv(&sites, &traces);
        let (sites2, traces2) = dataset_from_csv(&csv).unwrap();
        assert_eq!(sites2, sites);
        assert_eq!(traces2.len(), 2);
        for (a, b) in traces.iter().zip(&traces2) {
            assert_eq!(a.start_secs, b.start_secs);
            assert_eq!(a.interval_secs, b.interval_secs);
            for (x, y) in a.values.iter().zip(&b.values) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn dataset_preserves_capacity_and_kind() {
        let (sites, traces) = sample();
        let csv = dataset_to_csv(&sites, &traces);
        let (sites2, _) = dataset_from_csv(&csv).unwrap();
        assert_eq!(sites2[1].capacity_mw, 250.0);
        assert_eq!(sites2[0].kind, crate::SourceKind::Solar);
    }

    #[test]
    fn dataset_rejects_malformed_inputs() {
        assert!(dataset_from_csv("").is_err());
        assert!(dataset_from_csv("# interval_secs=900 start_secs=0\nno sites").is_err());
        let bad_row =
            "# interval_secs=900 start_secs=0\n# site a solar 1 2 3\ntime_secs,a\n0,0.1,0.2";
        assert!(matches!(
            dataset_from_csv(bad_row),
            Err(TraceIoError::BadLine { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dataset_rejects_misaligned_traces() {
        let (sites, mut traces) = sample();
        traces[1].values.pop();
        dataset_to_csv(&sites, &traces);
    }
}
