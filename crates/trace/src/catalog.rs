//! Geo-referenced catalog of European renewable sites.
//!
//! The EMHIRES dataset the paper mines for complementary site groups
//! covers >500 European locations; we ship a representative synthetic
//! catalog instead. It includes the three archetypes of Figure 3 —
//! Norwegian solar, UK wind and Portuguese wind — plus a spread of
//! additional solar and wind farms across the continent, all at the
//! 400 MW capacity §2.3 assumes.

use crate::site::Site;
use crate::weather::WeatherField;
use crate::{generate_in, SourceKind};
use vb_stats::TimeSeries;

/// A collection of sites sharing one weather field.
#[derive(Debug, Clone)]
pub struct Catalog {
    sites: Vec<Site>,
    field: WeatherField,
    /// Measured generation per site, overriding the synthetic
    /// generators (for plugging in real ELIA/EMHIRES-style data). Keyed
    /// parallel to `sites`; the series' `start_secs` anchors them on the
    /// day-of-year axis.
    measured: Vec<Option<TimeSeries>>,
}

impl Catalog {
    /// An empty catalog over a seeded weather field.
    pub fn new(seed: u64) -> Catalog {
        Catalog {
            sites: Vec::new(),
            field: WeatherField::new(seed),
            measured: Vec::new(),
        }
    }

    /// A catalog backed by *measured* generation data instead of the
    /// synthetic generators — the integration point for real
    /// ELIA/EMHIRES-style datasets. Each series must be normalized to
    /// the site's capacity (0..=1) at 15-minute resolution, with
    /// `start_secs = start_day × 86 400` anchoring it on the
    /// day-of-year axis. The weather field (from `seed`) is still used
    /// to synthesise forecast error realizations.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_measured(sites: Vec<Site>, traces: Vec<TimeSeries>, seed: u64) -> Catalog {
        assert_eq!(sites.len(), traces.len(), "one trace per site");
        Catalog {
            measured: traces.into_iter().map(Some).collect(),
            sites,
            field: WeatherField::new(seed),
        }
    }

    /// The catalog used throughout the reproduction: the Figure 3 trio
    /// plus 22 more sites spread over Europe (25 total, matching the
    /// ELIA site count).
    pub fn europe(seed: u64) -> Catalog {
        let mut c = Catalog::new(seed);
        // The Figure 3 trio.
        c.push(Site::solar("NO-solar", 59.3, 10.5)); // southern Norway
        c.push(Site::wind("UK-wind", 53.5, -1.0)); // northern England
        c.push(Site::wind("PT-wind", 39.6, -8.0)); // central Portugal
                                                   // Iberia & France.
        c.push(Site::solar("ES-solar", 37.4, -5.9));
        c.push(Site::solar("PT-solar", 38.0, -7.9));
        c.push(Site::wind("ES-wind", 42.6, -5.6));
        c.push(Site::solar("FR-solar", 43.6, 1.4));
        c.push(Site::wind("FR-wind", 49.9, 2.3));
        // British Isles & Benelux.
        c.push(Site::wind("IE-wind", 53.3, -8.0));
        c.push(Site::wind("SCO-wind", 57.5, -4.2));
        c.push(Site::solar("BE-solar", 50.8, 4.4));
        c.push(Site::wind("BE-wind", 51.2, 2.9));
        c.push(Site::wind("NL-wind", 52.9, 4.8));
        // Germany & central Europe.
        c.push(Site::solar("DE-solar", 48.4, 11.7));
        c.push(Site::wind("DE-wind", 54.3, 8.9));
        c.push(Site::solar("CZ-solar", 49.8, 15.5));
        c.push(Site::wind("PL-wind", 54.2, 16.2));
        c.push(Site::solar("AT-solar", 47.5, 14.5));
        // Nordics & Baltics.
        c.push(Site::wind("DK-wind", 55.5, 8.3));
        c.push(Site::wind("SE-wind", 57.7, 12.0));
        c.push(Site::wind("NO-wind", 58.9, 5.7));
        // Italy & southeast.
        c.push(Site::solar("IT-solar", 40.9, 16.6));
        c.push(Site::wind("IT-wind", 41.1, 15.1));
        c.push(Site::solar("GR-solar", 38.3, 23.8));
        c.push(Site::wind("GR-wind", 39.5, 22.8));
        c
    }

    /// A synthetic paper-scale fleet: `n_sites` modular sites scattered
    /// over the continent (lat 36–60°N, lon 10°W–20°E), alternating
    /// wind and solar, named `F0000-wind`, `F0001-solar`, … in index
    /// order. This is the 10×/100×/1000× scale-up axis for the
    /// `fleet_perf` bench — the follow-up paper's "hundreds of modular
    /// data centers" regime — with fully deterministic placement: the
    /// same `(seed, n_sites)` always yields the same catalog, and a
    /// larger fleet is a strict prefix-extension of a smaller one.
    pub fn fleet(seed: u64, n_sites: usize) -> Catalog {
        // Same splitmix-style mixer the benches use for deterministic
        // pseudo-random streams — decoupled from the weather-field seed
        // so site geography does not shift with the weather draw.
        fn mix(seed: u64, i: u64, salt: u64) -> f64 {
            let h = (seed ^ salt)
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .rotate_left(31)
                .wrapping_mul(0x94D0_49BB_1331_11EB);
            (h >> 11) as f64 / (1u64 << 53) as f64
        }
        let mut c = Catalog::new(seed);
        for i in 0..n_sites {
            let lat = 36.0 + 24.0 * mix(seed, i as u64, 0x1a7);
            let lon = -10.0 + 30.0 * mix(seed, i as u64, 0x2b9);
            let site = if i % 2 == 0 {
                Site::wind(&format!("F{i:04}-wind"), lat, lon)
            } else {
                Site::solar(&format!("F{i:04}-solar"), lat, lon)
            };
            c.push(site);
        }
        c
    }

    /// Add a site (synthetic generation).
    pub fn push(&mut self, site: Site) {
        self.sites.push(site);
        self.measured.push(None);
    }

    /// Add a site with measured generation (see
    /// [`Catalog::from_measured`] for the series conventions).
    pub fn push_measured(&mut self, site: Site, trace: TimeSeries) {
        self.sites.push(site);
        self.measured.push(Some(trace));
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the catalog holds no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The shared weather field.
    pub fn field(&self) -> &WeatherField {
        &self.field
    }

    /// Look a site up by name.
    pub fn get(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// Sites of one source kind.
    pub fn of_kind(&self, kind: SourceKind) -> Vec<&Site> {
        self.sites.iter().filter(|s| s.kind == kind).collect()
    }

    /// The normalized trace for a named site over `[start_day,
    /// start_day + days)`: the measured data when the site carries some
    /// (panicking if the window is not covered), the synthetic generator
    /// otherwise.
    ///
    /// # Panics
    /// Panics if the site is unknown, or if measured data does not cover
    /// the requested window.
    pub fn trace(&self, name: &str, start_day: u32, days: u32) -> TimeSeries {
        let idx = self
            .sites
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown site {name}"));
        self.trace_at(idx, start_day, days)
    }

    fn trace_at(&self, idx: usize, start_day: u32, days: u32) -> TimeSeries {
        match &self.measured[idx] {
            Some(data) => {
                let want_start = start_day as u64 * 86_400;
                let want_len = (days as usize) * crate::STEPS_PER_DAY;
                assert_eq!(
                    data.interval_secs,
                    crate::INTERVAL_15M,
                    "measured data must be 15-minute"
                );
                assert!(
                    want_start >= data.start_secs,
                    "measured data for {} starts after the requested window",
                    self.sites[idx].name
                );
                let offset = ((want_start - data.start_secs) / data.interval_secs) as usize;
                assert!(
                    offset + want_len <= data.len(),
                    "measured data for {} ends before the requested window",
                    self.sites[idx].name
                );
                data.slice(offset, offset + want_len)
            }
            None => generate_in(&self.sites[idx], start_day, days, &self.field),
        }
    }

    /// Traces for all sites over the same window, in catalog order.
    pub fn traces(&self, start_day: u32, days: u32) -> Vec<TimeSeries> {
        (0..self.sites.len())
            .map(|i| self.trace_at(i, start_day, days))
            .collect()
    }

    /// Generate the trace in megawatts (normalized × capacity).
    ///
    /// # Panics
    /// Panics if the site is unknown.
    pub fn trace_mw(&self, name: &str, start_day: u32, days: u32) -> TimeSeries {
        let site = self
            .get(name)
            .unwrap_or_else(|| panic!("unknown site {name}"));
        self.trace(name, start_day, days).scale(site.capacity_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn europe_catalog_has_the_figure3_trio() {
        let c = Catalog::europe(1);
        assert_eq!(c.len(), 25, "25 sites, matching ELIA's site count");
        for name in ["NO-solar", "UK-wind", "PT-wind"] {
            assert!(c.get(name).is_some(), "{name} missing");
        }
        assert_eq!(c.get("NO-solar").unwrap().kind, SourceKind::Solar);
        assert_eq!(c.get("UK-wind").unwrap().kind, SourceKind::Wind);
    }

    #[test]
    fn catalog_mixes_solar_and_wind() {
        let c = Catalog::europe(1);
        let solar = c.of_kind(SourceKind::Solar).len();
        let wind = c.of_kind(SourceKind::Wind).len();
        assert!(solar >= 10 && wind >= 10, "solar {solar}, wind {wind}");
        assert_eq!(solar + wind, c.len());
    }

    #[test]
    fn all_sites_default_to_400mw() {
        let c = Catalog::europe(1);
        assert!(c.sites().iter().all(|s| s.capacity_mw == 400.0));
    }

    #[test]
    fn trace_mw_scales_by_capacity() {
        let c = Catalog::europe(2);
        let norm = c.trace("UK-wind", 0, 2);
        let mw = c.trace_mw("UK-wind", 0, 2);
        for (a, b) in norm.values.iter().zip(&mw.values) {
            assert!((a * 400.0 - b).abs() < 1e-9);
        }
    }

    #[test]
    fn traces_returns_one_per_site() {
        let c = Catalog::europe(3);
        let ts = c.traces(0, 1);
        assert_eq!(ts.len(), c.len());
        assert!(ts.iter().all(|t| t.len() == 96));
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn unknown_site_panics() {
        Catalog::europe(1).trace("nowhere", 0, 1);
    }

    #[test]
    fn fleet_is_deterministic_and_prefix_stable() {
        let a = Catalog::fleet(9, 30);
        let b = Catalog::fleet(9, 30);
        assert_eq!(a.len(), 30);
        for (x, y) in a.sites().iter().zip(b.sites()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.lat.to_bits(), y.lat.to_bits());
            assert_eq!(x.lon.to_bits(), y.lon.to_bits());
        }
        // A bigger fleet extends a smaller one without renumbering.
        let big = Catalog::fleet(9, 300);
        for (x, y) in a.sites().iter().zip(big.sites()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.lat.to_bits(), y.lat.to_bits());
        }
    }

    #[test]
    fn fleet_sites_are_in_bounds_and_mixed() {
        let c = Catalog::fleet(5, 100);
        assert!(c
            .sites()
            .iter()
            .all(|s| (36.0..=60.0).contains(&s.lat) && (-10.0..=20.0).contains(&s.lon)));
        assert_eq!(c.of_kind(SourceKind::Wind).len(), 50);
        assert_eq!(c.of_kind(SourceKind::Solar).len(), 50);
        assert_eq!(c.get("F0000-wind").map(|s| s.kind), Some(SourceKind::Wind));
        assert_eq!(
            c.get("F0099-solar").map(|s| s.kind),
            Some(SourceKind::Solar)
        );
    }
}

#[cfg(test)]
mod measured_tests {
    use super::*;
    use crate::INTERVAL_15M;

    fn measured_catalog() -> Catalog {
        // Two days of flat measured data anchored at day 10.
        let site = Site::wind("meter", 52.0, 0.0);
        let data = TimeSeries::with_start(10 * 86_400, INTERVAL_15M, vec![0.5; 2 * 96]);
        Catalog::from_measured(vec![site], vec![data], 1)
    }

    #[test]
    fn measured_data_overrides_the_generator() {
        let c = measured_catalog();
        let t = c.trace("meter", 10, 1);
        assert_eq!(t.len(), 96);
        assert!(t.values.iter().all(|&v| v == 0.5));
        // Window alignment: second day slice starts a day later.
        let t2 = c.trace("meter", 11, 1);
        assert_eq!(t2.start_secs, 11 * 86_400);
    }

    #[test]
    #[should_panic(expected = "ends before the requested window")]
    fn measured_window_overrun_panics() {
        measured_catalog().trace("meter", 11, 2);
    }

    #[test]
    #[should_panic(expected = "starts after the requested window")]
    fn measured_window_underrun_panics() {
        measured_catalog().trace("meter", 9, 1);
    }

    #[test]
    fn mixed_catalog_serves_both_backends() {
        let mut c = measured_catalog();
        c.push(Site::solar("synthetic", 50.0, 5.0));
        let ts = c.traces(10, 1);
        assert_eq!(ts.len(), 2);
        assert!(ts[0].values.iter().all(|&v| v == 0.5), "measured");
        assert!(ts[1].values.iter().any(|&v| v != 0.5), "synthetic");
    }

    #[test]
    fn dataset_csv_feeds_a_catalog_end_to_end() {
        // The real-data integration path: synthesize -> export -> import
        // -> measured catalog must reproduce the original traces.
        let source = Catalog::europe(3);
        let names = ["NO-solar", "UK-wind"];
        let sites: Vec<Site> = names
            .iter()
            .map(|n| source.get(n).unwrap().clone())
            .collect();
        let traces: Vec<TimeSeries> = names.iter().map(|n| source.trace(n, 5, 2)).collect();
        let csv = crate::io::dataset_to_csv(&sites, &traces);
        let (sites2, traces2) = crate::io::dataset_from_csv(&csv).unwrap();
        let measured = Catalog::from_measured(sites2, traces2, 9);
        let round = measured.trace("UK-wind", 5, 2);
        for (a, b) in traces[1].values.iter().zip(&round.values) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
