//! Solar generation model.
//!
//! Figure 2a of the paper shows solar power as a diurnal curve whose peak
//! swings from ~3.5 % of capacity on an overcast day to ~77 % on the next
//! sunny day, with "spiky" production on days of variable cloud; §2.2
//! adds that winter peaks are ≈75 % lower than summer and that over a
//! year more than half of all 15-minute samples are zero (night).
//!
//! The model composes two parts:
//!
//! 1. **Clear-sky geometry** — solar declination from day-of-year, solar
//!    elevation from latitude/hour angle, plus a simple air-mass
//!    attenuation. This produces the diurnal bell and the seasonal
//!    amplitude swing deterministically.
//! 2. **Cloud regimes** — each day is classed Clear / Variable / Overcast
//!    by thresholding a slow, spatially correlated weather driver, then a
//!    per-sample transmittance is drawn around the regime level (fast
//!    AR(1) noise on variable days → the spiky trace of Fig 2a).

use crate::site::Site;
use crate::weather::{Channel, WeatherField};
use crate::INTERVAL_15M;
use serde::{Deserialize, Serialize};
use vb_stats::TimeSeries;

/// Cloud-cover class of a whole day, as in Fig 2a's annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DayRegime {
    /// Mostly clear sky: transmittance near 0.9.
    Clear,
    /// Broken clouds: transmittance oscillates rapidly.
    Variable,
    /// Heavy overcast: a few percent of clear-sky output.
    Overcast,
}

/// Tunable solar model. [`SolarModel::default`] is calibrated to the
/// paper's Figure 2 statistics (see `tests/calibration.rs`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolarModel {
    /// Transmittance on clear days.
    pub clear_transmittance: f64,
    /// Mean transmittance on overcast days.
    pub overcast_transmittance: f64,
    /// Centre of the transmittance range on variable days.
    pub variable_mid: f64,
    /// Half-range of the variable-day oscillation.
    pub variable_amplitude: f64,
    /// AR(1) persistence of the fast within-day cloud noise (per 15 min).
    pub fast_rho: f64,
    /// Daily-driver value above which a day is clear.
    pub clear_threshold: f64,
    /// Daily-driver value below which a day is overcast. The asymmetry
    /// (clear days more common than fully overcast ones) matches mid-
    /// latitude European climatology and sets Fig 2b's p75/p99 levels.
    pub overcast_threshold: f64,
    /// Optical-depth coefficient of the air-mass attenuation.
    pub airmass_tau: f64,
    /// Output below this fraction of capacity is clipped to zero — the
    /// inverter's minimum operating point. Together with night this gives
    /// Fig 2b's ">50 % zero samples over a year".
    pub min_output: f64,
}

impl Default for SolarModel {
    fn default() -> SolarModel {
        SolarModel {
            clear_transmittance: 0.91,
            overcast_transmittance: 0.07,
            variable_mid: 0.62,
            variable_amplitude: 0.36,
            fast_rho: 0.55,
            clear_threshold: -0.25,
            overcast_threshold: -0.75,
            airmass_tau: 0.10,
            min_output: 0.008,
        }
    }
}

impl SolarModel {
    /// Generate `days` days of normalized solar power for `site` at
    /// 15-minute resolution, starting at day-of-year `start_day`.
    pub fn generate(
        &self,
        site: &Site,
        start_day: u32,
        days: u32,
        field: &WeatherField,
    ) -> TimeSeries {
        let n = days as usize * crate::STEPS_PER_DAY;
        let t0 = start_day as i64 * crate::STEPS_PER_DAY as i64;

        // Slow daily driver (sampled once per day at local noon) decides
        // the regime; fast noise shapes within-day transmittance.
        let fast = field.ar1(Channel::Cloud, site, self.fast_rho, t0, n);
        // Daily driver: heavily smoothed cloud channel — one value per day.
        let daily = field.ar1(Channel::Cloud, site, 0.995, t0, n);

        let mut values = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // k indexes two driver arrays
        for k in 0..n {
            let abs_sample = t0 + k as i64;
            let steps_per_day = crate::STEPS_PER_DAY as i64;
            let day_of_year = (abs_sample.div_euclid(steps_per_day)).rem_euclid(365) as u32;
            let hour_utc =
                (abs_sample.rem_euclid(steps_per_day)) as f64 * 24.0 / crate::STEPS_PER_DAY as f64;

            let elev = sin_elevation(site.lat, site.lon, day_of_year, hour_utc);
            if elev <= 0.0 {
                values.push(0.0);
                continue;
            }

            // Regime from the daily driver, held constant within the day.
            let day_index = (k / crate::STEPS_PER_DAY) * crate::STEPS_PER_DAY; // first sample of this day
            let regime = self.classify(daily[day_index]);
            let trans = self.transmittance(regime, fast[k], daily[day_index]);

            // Air-mass attenuation rounds off mornings and evenings.
            let airmass = (-self.airmass_tau * (1.0 / elev.max(0.05) - 1.0)).exp();
            let p = (elev * airmass * trans).clamp(0.0, 1.0);
            values.push(if p < self.min_output { 0.0 } else { p });
        }
        TimeSeries::with_start(start_day as u64 * 86_400, INTERVAL_15M, values)
    }

    /// Classify a day given its slow-driver value.
    pub fn classify(&self, driver: f64) -> DayRegime {
        if driver > self.clear_threshold {
            DayRegime::Clear
        } else if driver < self.overcast_threshold {
            DayRegime::Overcast
        } else {
            DayRegime::Variable
        }
    }

    /// Per-sample transmittance for a regime.
    fn transmittance(&self, regime: DayRegime, fast: f64, daily: f64) -> f64 {
        match regime {
            DayRegime::Clear => (self.clear_transmittance + 0.04 * fast).clamp(0.75, 0.98),
            DayRegime::Overcast => {
                (self.overcast_transmittance + 0.03 * fast + 0.02 * daily).clamp(0.01, 0.16)
            }
            DayRegime::Variable => {
                (self.variable_mid + self.variable_amplitude * fast).clamp(0.04, 0.95)
            }
        }
    }
}

/// Sine of the solar elevation angle at a site and instant.
///
/// Standard formula: `sin α = sin φ sin δ + cos φ cos δ cos H` with
/// declination `δ = 23.45° · sin(360°·(284+n)/365)` and hour angle
/// `H = 15°·(t_solar − 12)`. Solar local time shifts with longitude
/// (`+lon/15` hours), which is what makes "day in one location and dusk
/// in another" (§2.3) emerge across the catalog.
pub fn sin_elevation(lat: f64, lon: f64, day_of_year: u32, hour_utc: f64) -> f64 {
    let decl = 23.45_f64.to_radians()
        * (2.0 * std::f64::consts::PI * (284.0 + day_of_year as f64 + 1.0) / 365.0).sin();
    let solar_hour = hour_utc + lon / 15.0;
    let hour_angle = (15.0 * (solar_hour - 12.0)).to_radians();
    let phi = lat.to_radians();
    phi.sin() * decl.sin() + phi.cos() * decl.cos() * hour_angle.cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUMMER: u32 = 171; // ~Jun 21
    const WINTER: u32 = 354; // ~Dec 21

    #[test]
    fn elevation_is_zero_at_night_and_peaks_at_noon() {
        assert!(sin_elevation(50.0, 0.0, SUMMER, 0.0) < 0.0, "midnight");
        let noon = sin_elevation(50.0, 0.0, SUMMER, 12.0);
        let morning = sin_elevation(50.0, 0.0, SUMMER, 8.0);
        assert!(noon > morning && morning > 0.0);
    }

    #[test]
    fn summer_noon_beats_winter_noon() {
        let s = sin_elevation(50.0, 0.0, SUMMER, 12.0);
        let w = sin_elevation(50.0, 0.0, WINTER, 12.0);
        // Winter peak ≈75% less than summer (paper §2.2).
        assert!(w < 0.45 * s, "summer {s}, winter {w}");
    }

    #[test]
    fn longitude_shifts_the_solar_day() {
        // Lisbon (-9°E) reaches its solar noon ~36 min after Greenwich.
        let greenwich_noon = sin_elevation(50.0, 0.0, SUMMER, 12.0);
        let lisbon_at_greenwich_noon = sin_elevation(50.0, -9.0, SUMMER, 12.0);
        let lisbon_at_its_noon = sin_elevation(50.0, -9.0, SUMMER, 12.6);
        assert!(lisbon_at_its_noon > lisbon_at_greenwich_noon);
        assert!((lisbon_at_its_noon - greenwich_noon).abs() < 1e-3);
    }

    #[test]
    fn night_samples_are_exactly_zero() {
        let site = Site::solar("s", 50.8, 4.4); // Belgium, like ELIA
        let t = SolarModel::default().generate(&site, SUMMER, 2, &WeatherField::new(1));
        // First sample of the day is midnight UTC — dark in June Belgium.
        assert_eq!(t.values[0], 0.0);
        let zeros = t.values.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 40, "nights should be dark, got {zeros} zeros");
    }

    #[test]
    fn a_year_is_more_than_half_zeros() {
        // Fig 2b: "over 50% zero values for solar energy due to night".
        let site = Site::solar("s", 50.8, 4.4);
        let t = SolarModel::default().generate(&site, 0, 365, &WeatherField::new(2));
        let zero_frac = t.values.iter().filter(|&&v| v == 0.0).count() as f64 / t.len() as f64;
        assert!(zero_frac > 0.50, "zero fraction {zero_frac}");
        assert!(zero_frac < 0.70, "still must produce by day: {zero_frac}");
    }

    #[test]
    fn clear_days_peak_much_higher_than_overcast_days() {
        let site = Site::solar("s", 50.8, 4.4);
        let model = SolarModel::default();
        let field = WeatherField::new(3);
        // Generate a summer month and split days by regime.
        let t = model.generate(&site, 150, 30, &field);
        let daily = field.ar1(Channel::Cloud, &site, 0.995, 150 * 96, 30 * 96);
        let mut clear_peaks = Vec::new();
        let mut overcast_peaks = Vec::new();
        for d in 0..30 {
            let peak = t.values[d * 96..(d + 1) * 96]
                .iter()
                .copied()
                .fold(0.0, f64::max);
            match model.classify(daily[d * 96]) {
                DayRegime::Clear => clear_peaks.push(peak),
                DayRegime::Overcast => overcast_peaks.push(peak),
                DayRegime::Variable => {}
            }
        }
        if let (Some(&c), Some(&o)) = (clear_peaks.first(), overcast_peaks.first()) {
            assert!(c > 0.6, "clear peak {c}");
            assert!(o < 0.2, "overcast peak {o}");
        }
        // At least assert overall peak consistent with Fig 2a (~0.77).
        let overall = t.max().unwrap();
        assert!(overall > 0.6 && overall <= 1.0, "peak {overall}");
    }

    #[test]
    fn classify_thresholds() {
        let m = SolarModel::default();
        assert_eq!(m.classify(1.0), DayRegime::Clear);
        assert_eq!(m.classify(-0.3), DayRegime::Variable);
        assert_eq!(m.classify(-1.0), DayRegime::Overcast);
    }
}
