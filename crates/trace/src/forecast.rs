//! Power-forecast simulator.
//!
//! §3.1 of the paper leans on a key property: "migrations are spiky, but
//! also predictable". Figure 5 quantifies the ELIA forecasts by horizon:
//!
//! | Horizon      | MAPE (solar) | MAPE (wind) |
//! |--------------|--------------|-------------|
//! | 3 hours      | 8.5–9 %      | 8.5–9 %     |
//! | day-ahead    | 18–25 %      | 18–25 %     |
//! | week-ahead   | ~44 %        | ~75 %       |
//!
//! We do not have a weather model to forecast from, so the simulator
//! works backwards: it degrades the *actual* series with
//! horizon-dependent smoothing (forecasts miss fast fluctuations) and
//! multiplicative noise (amplitude errors grow with horizon), calibrated
//! so the realized MAPE lands in the paper's bands. The scheduler only
//! ever sees the forecast series, so this reproduces exactly the
//! information structure the paper's co-scheduler exploits.

use crate::site::{Site, SourceKind};
use crate::weather::{Channel, WeatherField};
use serde::{Deserialize, Serialize};
use vb_stats::TimeSeries;

/// Forecast lead time, mirroring Figure 5's three horizons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Horizon {
    /// 3 hours ahead — MAPE target 8.5–9 %.
    Hours3,
    /// Day ahead — MAPE target 18–25 %.
    DayAhead,
    /// Week ahead — MAPE target ~44 % (solar) / ~75 % (wind).
    WeekAhead,
}

impl Horizon {
    /// Lead time in 15-minute samples.
    pub fn lead_samples(self) -> usize {
        match self {
            Horizon::Hours3 => 12,
            Horizon::DayAhead => crate::STEPS_PER_DAY,
            Horizon::WeekAhead => crate::WEEK_AHEAD_STEPS,
        }
    }

    /// All three paper horizons.
    pub fn all() -> [Horizon; 3] {
        [Horizon::Hours3, Horizon::DayAhead, Horizon::WeekAhead]
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Horizon::Hours3 => "3Hour-Ahead",
            Horizon::DayAhead => "Day-Ahead",
            Horizon::WeekAhead => "Week-Ahead",
        }
    }
}

/// Error-model parameters for one (horizon, source) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastParams {
    /// Width (in samples) of the centred moving average applied to the
    /// actuals: forecasts can't see fast fluctuations.
    pub smooth_window: usize,
    /// Standard deviation of the multiplicative amplitude error.
    pub mult_sigma: f64,
    /// AR(1) persistence of the amplitude error (errors are correlated —
    /// a forecast that is too low tends to stay too low for hours).
    pub error_rho: f64,
}

impl ForecastParams {
    /// Calibrated defaults per horizon and source kind.
    pub fn for_horizon(horizon: Horizon, kind: SourceKind) -> ForecastParams {
        match (horizon, kind) {
            (Horizon::Hours3, _) => ForecastParams {
                smooth_window: 1,
                mult_sigma: 0.11,
                error_rho: 0.9,
            },
            (Horizon::DayAhead, SourceKind::Solar) => ForecastParams {
                smooth_window: 3,
                mult_sigma: 0.18,
                error_rho: 0.97,
            },
            (Horizon::DayAhead, SourceKind::Wind) => ForecastParams {
                smooth_window: 5,
                mult_sigma: 0.22,
                error_rho: 0.97,
            },
            (Horizon::WeekAhead, SourceKind::Solar) => ForecastParams {
                smooth_window: 5,
                mult_sigma: 0.42,
                error_rho: 0.99,
            },
            (Horizon::WeekAhead, SourceKind::Wind) => ForecastParams {
                smooth_window: 25,
                mult_sigma: 0.68,
                error_rho: 0.99,
            },
        }
    }
}

/// Produce a forecast of `actual` for `site` at the given horizon.
///
/// The returned series is aligned sample-for-sample with `actual` (it
/// forecasts the same instants, as issued `horizon` ahead of time).
/// Deterministic: the error realization is drawn from the site's weather
/// field stream, keyed by horizon, so re-running an experiment reproduces
/// the same forecasts.
pub fn forecast_for(
    actual: &TimeSeries,
    site: &Site,
    horizon: Horizon,
    field: &WeatherField,
) -> TimeSeries {
    let params = ForecastParams::for_horizon(horizon, site.kind);
    forecast_with(actual, site, horizon, params, field)
}

/// [`forecast_for`] with explicit parameters (used by the calibration
/// tests and the forecast-sensitivity ablation).
pub fn forecast_with(
    actual: &TimeSeries,
    site: &Site,
    horizon: Horizon,
    params: ForecastParams,
    field: &WeatherField,
) -> TimeSeries {
    let n = actual.len();
    if n == 0 {
        return actual.clone();
    }
    let smooth = moving_average(&actual.values, params.smooth_window);

    // Error stream: unique per (site, horizon) but deterministic. Offset
    // the time axis per horizon so the three horizons' errors differ.
    let t0 = (actual.start_secs / actual.interval_secs) as i64
        + horizon.lead_samples() as i64 * 1_000_003;
    let noise = field.ar1(Channel::WindGust, site, params.error_rho, t0, n);

    let values = smooth
        .iter()
        .zip(&noise)
        .map(|(&s, &e)| (s * (1.0 + params.mult_sigma * e)).clamp(0.0, 1.0))
        .collect();
    TimeSeries {
        start_secs: actual.start_secs,
        interval_secs: actual.interval_secs,
        values,
    }
}

/// Centred moving average with edge truncation.
fn moving_average(values: &[f64], window: usize) -> Vec<f64> {
    let w = window.max(1);
    let half = w / 2;
    let n = values.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f64 = values[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_in;

    #[test]
    fn moving_average_smooths_and_preserves_constants() {
        let flat = vec![2.0; 10];
        assert_eq!(moving_average(&flat, 5), flat);
        let spiky = vec![0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let sm = moving_average(&spiky, 3);
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(spread(&sm) < spread(&spiky));
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let v = vec![1.0, 3.0, 2.0];
        assert_eq!(moving_average(&v, 1), v);
        assert_eq!(moving_average(&v, 0), v, "window 0 clamps to 1");
    }

    #[test]
    fn forecast_is_deterministic_and_aligned() {
        let site = Site::wind("w", 52.0, 0.0);
        let field = WeatherField::new(3);
        let actual = generate_in(&site, 10, 7, &field);
        let a = forecast_for(&actual, &site, Horizon::DayAhead, &field);
        let b = forecast_for(&actual, &site, Horizon::DayAhead, &field);
        assert_eq!(a, b);
        assert_eq!(a.len(), actual.len());
        assert_eq!(a.start_secs, actual.start_secs);
    }

    #[test]
    fn horizons_have_distinct_errors() {
        let site = Site::wind("w", 52.0, 0.0);
        let field = WeatherField::new(3);
        let actual = generate_in(&site, 10, 7, &field);
        let h3 = forecast_for(&actual, &site, Horizon::Hours3, &field);
        let d1 = forecast_for(&actual, &site, Horizon::DayAhead, &field);
        assert_ne!(h3, d1);
    }

    #[test]
    fn error_grows_with_horizon() {
        // The core property of Fig 5: longer horizons are worse.
        let field = WeatherField::new(8);
        for site in [Site::solar("s", 50.8, 4.4), Site::wind("w", 50.8, 4.4)] {
            let actual = generate_in(&site, 60, 60, &field);
            let m3 = vb_stats::mape(
                &actual.values,
                &forecast_for(&actual, &site, Horizon::Hours3, &field).values,
            );
            let md = vb_stats::mape(
                &actual.values,
                &forecast_for(&actual, &site, Horizon::DayAhead, &field).values,
            );
            let mw = vb_stats::mape(
                &actual.values,
                &forecast_for(&actual, &site, Horizon::WeekAhead, &field).values,
            );
            assert!(m3 < md && md < mw, "{}: {m3} {md} {mw}", site.name);
        }
    }

    #[test]
    fn forecasts_stay_normalized() {
        let site = Site::solar("s", 50.8, 4.4);
        let field = WeatherField::new(9);
        let actual = generate_in(&site, 100, 14, &field);
        let f = forecast_for(&actual, &site, Horizon::WeekAhead, &field);
        assert!(f.min().unwrap() >= 0.0);
        assert!(f.max().unwrap() <= 1.0);
    }

    #[test]
    fn lead_samples_match_horizons() {
        assert_eq!(Horizon::Hours3.lead_samples(), 12);
        assert_eq!(Horizon::DayAhead.lead_samples(), 96);
        assert_eq!(Horizon::WeekAhead.lead_samples(), 672);
        assert_eq!(Horizon::all().len(), 3);
        assert_eq!(Horizon::DayAhead.label(), "Day-Ahead");
    }
}
