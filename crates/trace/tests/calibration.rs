//! Calibration tests: pin the synthetic generators to the statistics the
//! paper reports for the real ELIA/EMHIRES data (§2.2, Figure 2b and
//! Figure 5). These are the contract that makes the substitution of
//! synthetic traces for the proprietary datasets defensible — if a model
//! change drifts out of the paper's bands, these tests fail.

use vb_stats::{mape_above, Summary};
use vb_trace::{forecast_for, Catalog, Horizon};

/// MAPE filter threshold: 2 % of capacity (see `vb_stats::mape_above`).
const MAPE_FLOOR: f64 = 0.02;

#[test]
fn solar_year_statistics_match_figure_2b() {
    let c = Catalog::europe(42);
    let t = c.trace("BE-solar", 0, 365);
    let s = Summary::of(&t.values);
    let zeros = t.values.iter().filter(|&&v| v == 0.0).count() as f64 / t.len() as f64;

    // "over 50% zero values for solar energy due to night times"
    assert!(zeros > 0.50 && zeros < 0.68, "zero fraction {zeros}");
    // "The tail is also high, with 99th divided by 75th percentile ratios
    // of 4× for solar" — we accept 3.5–8× (synthetic Belgium vs ELIA's
    // 25-site aggregate, which is smoother).
    let tail = s.tail_ratio();
    assert!((3.5..8.0).contains(&tail), "solar p99/p75 {tail}");
    // Plausible capacity factor for Belgian solar (~10 %).
    assert!(
        (0.06..0.16).contains(&s.mean),
        "solar capacity factor {}",
        s.mean
    );
    // Sunny-day peak near the paper's 77 %.
    assert!(s.max > 0.70 && s.max <= 1.0, "solar peak {}", s.max);
}

#[test]
fn wind_year_statistics_match_figure_2b() {
    let c = Catalog::europe(42);
    let t = c.trace("BE-wind", 0, 365);
    let s = Summary::of(&t.values);
    let zeros = t.values.iter().filter(|&&v| v == 0.0).count() as f64 / t.len() as f64;

    // "median values reaching at most 20% the peak capacity for wind"
    assert!(s.p50 <= 0.22, "wind median {}", s.p50);
    // "...and 2× for wind" (p99/p75), accept 1.5–3×.
    let tail = s.tail_ratio();
    assert!((1.5..3.0).contains(&tail), "wind p99/p75 {tail}");
    // Fig 2a: wind "rarely go[es] down to zero".
    assert!(zeros < 0.20, "wind zero fraction {zeros}");
    // Wind hits rated power sometimes.
    assert!(s.max > 0.9, "wind peak {}", s.max);
}

#[test]
fn forecast_mape_matches_figure_5_bands() {
    let c = Catalog::europe(42);
    for (site_name, bands) in [
        // (3h, day, week) target bands with modest slack around the
        // paper's 8.5–9 %, 18–25 %, 44 %/75 %.
        ("BE-solar", [(7.0, 11.0), (16.0, 27.0), (36.0, 52.0)]),
        ("BE-wind", [(7.0, 11.0), (16.0, 27.0), (60.0, 90.0)]),
    ] {
        let site = c.get(site_name).unwrap();
        let actual = c.trace(site_name, 0, 365);
        for (h, (lo, hi)) in Horizon::all().into_iter().zip(bands) {
            let f = forecast_for(&actual, site, h, c.field());
            let m = mape_above(&actual.values, &f.values, MAPE_FLOOR);
            assert!(
                (lo..hi).contains(&m),
                "{site_name} {}: MAPE {m:.1}% outside [{lo}, {hi}]",
                h.label()
            );
        }
    }
}

#[test]
fn forecast_quality_ranks_by_horizon_everywhere() {
    // Fig 5's qualitative claim must hold at every catalog site, not just
    // the calibration site.
    let c = Catalog::europe(7);
    for site in c.sites().iter().take(8) {
        let actual = c.trace(&site.name, 30, 60);
        let mapes: Vec<f64> = Horizon::all()
            .into_iter()
            .map(|h| {
                let f = forecast_for(&actual, site, h, c.field());
                mape_above(&actual.values, &f.values, MAPE_FLOOR)
            })
            .collect();
        assert!(
            mapes[0] < mapes[1] && mapes[1] < mapes[2],
            "{}: {mapes:?}",
            site.name
        );
    }
}

#[test]
fn seasonality_winter_solar_is_much_weaker() {
    // §2.2: "peak production in winter is ≈75% less than summer".
    let c = Catalog::europe(42);
    let summer = c.trace("BE-solar", 160, 30);
    let winter = c.trace("BE-solar", 340, 30);
    let speak = summer.max().unwrap();
    let wpeak = winter.max().unwrap();
    assert!(
        wpeak < 0.55 * speak,
        "winter peak {wpeak} vs summer peak {speak}"
    );
}

#[test]
fn different_sources_at_one_location_are_complementary() {
    // §2.3 reason (a): wind blows at night when solar is dark, so the
    // combined signal is steadier than solar alone.
    let c = Catalog::europe(42);
    let solar = c.trace("BE-solar", 90, 30);
    let wind = c.trace("BE-wind", 90, 30);
    let combined = solar.add(&wind).scale(0.5);
    let cov_solar = Summary::of(&solar.values).cov;
    let cov_combined = Summary::of(&combined.values).cov;
    assert!(
        cov_combined < 0.75 * cov_solar,
        "combined cov {cov_combined} vs solar cov {cov_solar}"
    );
}
