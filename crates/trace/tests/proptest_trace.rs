//! Property tests for the trace generators and serialization.

use proptest::prelude::*;
use vb_stats::TimeSeries;
use vb_trace::io::{from_binary, from_csv, to_binary, to_csv};
use vb_trace::{forecast_for, generate_in, Catalog, Horizon, Site, SourceKind, WeatherField};

fn arb_site() -> impl Strategy<Value = Site> {
    (
        36.0..66.0f64,
        -10.0..26.0f64,
        proptest::bool::ANY,
        "[a-z]{3,8}",
    )
        .prop_map(|(lat, lon, solar, name)| {
            if solar {
                Site::solar(&name, lat, lon)
            } else {
                Site::wind(&name, lat, lon)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_always_normalized(site in arb_site(), start in 0u32..360, seed in 0u64..50) {
        let field = WeatherField::new(seed);
        let t = generate_in(&site, start, 2, &field);
        prop_assert_eq!(t.len(), 2 * 96);
        for &v in &t.values {
            prop_assert!((0.0..=1.0).contains(&v), "out of range: {v}");
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn windows_are_consistent_across_start_days(site in arb_site(), start in 1u32..200) {
        // Generating [start, start+2) must agree with the tail of
        // [start-1, start+2): same absolute days, same values.
        let field = WeatherField::new(7);
        let long = generate_in(&site, start - 1, 3, &field);
        let short = generate_in(&site, start, 2, &field);
        for i in 0..short.len() {
            prop_assert!((long.values[96 + i] - short.values[i]).abs() < 1e-9,
                "mismatch at {i}");
        }
    }

    #[test]
    fn solar_sites_are_dark_at_local_midnight(lat in 40.0..60.0f64, lon in -8.0..20.0f64, seed in 0u64..20) {
        let site = Site::solar("s", lat, lon);
        let field = WeatherField::new(seed);
        let t = generate_in(&site, 172, 1, &field); // summer solstice
        // Local solar midnight sample: hour ≈ 24 - lon/15.
        let midnight_hour = (24.0 - lon / 15.0) % 24.0;
        let idx = ((midnight_hour * 4.0) as usize) % 96;
        prop_assert_eq!(t.values[idx], 0.0);
    }

    #[test]
    fn forecasts_stay_normalized_and_aligned(site in arb_site(), seed in 0u64..20) {
        let field = WeatherField::new(seed);
        let actual = generate_in(&site, 100, 3, &field);
        for h in Horizon::all() {
            let f = forecast_for(&actual, &site, h, &field);
            prop_assert_eq!(f.len(), actual.len());
            prop_assert_eq!(f.interval_secs, actual.interval_secs);
            for &v in &f.values {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn csv_roundtrip_is_lossless_to_printed_precision(
        values in proptest::collection::vec(0.0..1.0f64, 1..100),
        start in 0u64..10_000,
    ) {
        let ts = TimeSeries::with_start(start * 900, 900, values);
        let parsed = from_csv(&to_csv(&ts)).unwrap();
        prop_assert_eq!(parsed.start_secs, ts.start_secs);
        prop_assert_eq!(parsed.interval_secs, ts.interval_secs);
        prop_assert_eq!(parsed.len(), ts.len());
        for (a, b) in ts.values.iter().zip(&parsed.values) {
            prop_assert!((a - b).abs() < 1e-6, "CSV keeps 6 decimals");
        }
    }

    #[test]
    fn binary_roundtrip_is_exact(
        values in proptest::collection::vec(-1e6..1e6f64, 0..200),
        start in 0u64..1_000_000,
        interval in 1u64..100_000,
    ) {
        let ts = TimeSeries::with_start(start, interval, values);
        let back = from_binary(to_binary(&ts)).unwrap();
        prop_assert_eq!(back, ts);
    }

    #[test]
    fn distance_satisfies_triangle_inequality(a in arb_site(), b in arb_site(), c in arb_site()) {
        let ab = a.distance_km(&b);
        let bc = b.distance_km(&c);
        let ac = a.distance_km(&c);
        prop_assert!(ac <= ab + bc + 1e-6, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn rtt_is_symmetric(a in arb_site(), b in arb_site()) {
        prop_assert!((a.rtt_ms(&b) - b.rtt_ms(&a)).abs() < 1e-9);
    }
}

#[test]
fn regression_window_consistency_at_first_day() {
    // Pinned from `proptest_trace.proptest-regressions` (the offline
    // proptest stand-in does not read that file): a wind site queried at
    // start = 1 overlaps the first generated day, where the look-back
    // window for [start-1, ...) begins at absolute day 0.
    let site = Site::wind("aaa", 36.0, 0.0);
    let field = WeatherField::new(7);
    let long = generate_in(&site, 0, 3, &field);
    let short = generate_in(&site, 1, 2, &field);
    for i in 0..short.len() {
        assert!(
            (long.values[96 + i] - short.values[i]).abs() < 1e-9,
            "mismatch at {i}"
        );
    }
}

#[test]
fn catalog_sites_have_distinct_stream_ids() {
    let catalog = Catalog::europe(1);
    let mut ids: Vec<u64> = catalog.sites().iter().map(|s| s.stream_id()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), catalog.len(), "stream ids must be unique");
}

#[test]
fn solar_and_wind_sites_use_their_models() {
    // A solar site must have zero samples (night); a wind site must not
    // have solar's >50% zero share.
    let catalog = Catalog::europe(3);
    for site in catalog.sites() {
        let t = catalog.trace(&site.name, 0, 10);
        let zeros = t.values.iter().filter(|&&v| v == 0.0).count() as f64 / t.len() as f64;
        match site.kind {
            SourceKind::Solar => assert!(zeros > 0.3, "{} zeros {zeros}", site.name),
            SourceKind::Wind => assert!(zeros < 0.3, "{} zeros {zeros}", site.name),
        }
    }
}
