//! Metric primitive semantics: counter saturation, concurrent updates,
//! histogram bucket boundaries, and span aggregation.
//!
//! Metric names are unique per test: the registry is process-global and
//! the test harness runs tests concurrently in one process.

#![cfg(feature = "telemetry")]

use vb_telemetry::{counter, float_counter, gauge, histogram, span};

#[test]
fn counter_counts_and_saturates() {
    let c = counter!("test.counter.basic");
    assert_eq!(c.get(), 0);
    c.inc();
    c.add(41);
    assert_eq!(c.get(), 42);

    let s = counter!("test.counter.saturating");
    s.add(u64::MAX - 1);
    s.add(5);
    assert_eq!(s.get(), u64::MAX, "must saturate, not wrap");
    s.inc();
    assert_eq!(s.get(), u64::MAX);
}

#[test]
fn call_sites_with_the_same_name_share_a_metric() {
    fn bump() {
        counter!("test.counter.shared").inc();
    }
    counter!("test.counter.shared").inc();
    bump();
    bump();
    assert_eq!(counter!("test.counter.shared").get(), 3);
}

#[test]
fn concurrent_increments_are_not_lost() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    counter!("test.counter.concurrent").inc();
                    float_counter!("test.float.concurrent").add(0.5);
                }
            });
        }
    });
    assert_eq!(
        counter!("test.counter.concurrent").get(),
        (THREADS * PER_THREAD) as u64
    );
    let total = float_counter!("test.float.concurrent").get();
    assert!(
        (total - THREADS as f64 * PER_THREAD as f64 * 0.5).abs() < 1e-9,
        "float accumulation lost updates: {total}"
    );
}

#[test]
fn gauge_keeps_the_last_value() {
    let g = gauge!("test.gauge.last");
    g.set(0.25);
    g.set(0.75);
    assert_eq!(g.get(), 0.75);
    g.set(-3.5);
    assert_eq!(g.get(), -3.5);
}

#[test]
fn histogram_buckets_use_inclusive_upper_bounds() {
    static BOUNDS: [f64; 3] = [1.0, 10.0, 100.0];
    let h = histogram!("test.hist.bounds", &BOUNDS);
    h.observe(0.5); // <= 1.0        -> bucket 0
    h.observe(1.0); // == bound      -> bucket 0 (inclusive upper bound)
    h.observe(1.0000001); //          -> bucket 1
    h.observe(10.0); //               -> bucket 1
    h.observe(99.9); //               -> bucket 2
    h.observe(1e6); // overflow       -> bucket 3

    let snap = vb_telemetry::snapshot();
    let hist = snap.histogram("test.hist.bounds").expect("registered");
    assert_eq!(hist.bounds, vec![1.0, 10.0, 100.0]);
    assert_eq!(hist.counts, vec![2, 2, 1, 1]);
    assert_eq!(hist.count, 6);
    assert_eq!(hist.min, 0.5);
    assert_eq!(hist.max, 1e6);
    assert!((hist.sum - (0.5 + 1.0 + 1.0000001 + 10.0 + 99.9 + 1e6)).abs() < 1e-6);
}

#[test]
fn histogram_observations_survive_concurrency() {
    static BOUNDS: [f64; 2] = [10.0, 1000.0];
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                for i in 0..1_000 {
                    histogram!("test.hist.concurrent", &BOUNDS).observe((t * i) as f64);
                }
            });
        }
    });
    let snap = vb_telemetry::snapshot();
    let hist = snap.histogram("test.hist.concurrent").expect("registered");
    assert_eq!(hist.count, 4_000);
    assert_eq!(hist.counts.iter().sum::<u64>(), 4_000);
    assert_eq!(hist.min, 0.0);
    assert_eq!(hist.max, 3.0 * 999.0);
}

#[test]
fn spans_aggregate_across_nesting_and_threads() {
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let _outer = span!("test.span.outer");
                for _ in 0..5 {
                    let _inner = span!("test.span.inner");
                    std::hint::black_box(());
                }
            });
        }
    });
    let snap = vb_telemetry::snapshot();
    let outer = snap.span("test.span.outer").expect("outer merged");
    let inner = snap.span("test.span.inner").expect("inner merged");
    assert_eq!(outer.count, 3);
    assert_eq!(inner.count, 15);
    assert!(outer.min_ns <= outer.max_ns);
    assert!(outer.total_ns >= outer.max_ns);
    assert!(
        inner.mean_ns() <= outer.mean_ns(),
        "inner spans nest inside outer"
    );
}
