//! Run-report JSONL round-trip: capture -> serialize -> parse -> equal.
//!
//! The capture test is a single test fn because it exercises the
//! process-global registry (including `reset`), which would race with
//! sibling tests in the same binary.

use vb_telemetry::{Json, RunReport};

#[cfg(feature = "telemetry")]
#[test]
fn capture_serialize_parse_roundtrip() {
    use vb_telemetry::{counter, event, float_counter, gauge, histogram, span};

    vb_telemetry::reset();
    {
        let _run = span!("roundtrip.run");
        counter!("roundtrip.steps").add(7);
        float_counter!("roundtrip.gb_moved").add(12.625);
        gauge!("roundtrip.utilization").set(0.6875);
        static BOUNDS: [f64; 3] = [1.0, 8.0, 64.0];
        for v in [0.5, 3.0, 9.0, 100.0] {
            histogram!("roundtrip.batch", &BOUNDS).observe(v);
        }
        event(
            "epoch_planned",
            &[
                ("epoch", Json::from(3u64)),
                ("policy", Json::from("mip")),
                ("moves", Json::from(14u64)),
                ("gb", Json::from(9.5)),
            ],
        );
        event("phase_done", &[("name", Json::from("warmup"))]);
    }

    let report = RunReport::capture("roundtrip_demo");
    assert_eq!(report.name, "roundtrip_demo");
    assert_eq!(report.events.len(), 2);
    assert_eq!(report.events[0].kind, "epoch_planned");
    assert_eq!(report.snapshot.counter("roundtrip.steps"), Some(7));
    assert_eq!(
        report.snapshot.float_counter("roundtrip.gb_moved"),
        Some(12.625)
    );
    assert_eq!(report.snapshot.gauge("roundtrip.utilization"), Some(0.6875));
    let hist = report.snapshot.histogram("roundtrip.batch").expect("hist");
    assert_eq!(hist.counts, vec![1, 1, 1, 1]);
    assert!(report.snapshot.span("roundtrip.run").is_some());

    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), 3, "2 events + 1 summary");
    let parsed = RunReport::parse_jsonl(&jsonl).expect("parse back");
    assert_eq!(parsed, report, "JSONL round-trip must be lossless");

    // A second serialization of the parsed report is byte-identical.
    assert_eq!(parsed.to_jsonl(), jsonl);
}

#[cfg(not(feature = "telemetry"))]
#[test]
fn capture_is_empty_when_compiled_out() {
    // The API surface still exists; everything no-ops.
    let _span = vb_telemetry::span!("disabled.run");
    vb_telemetry::counter!("disabled.steps").add(7);
    vb_telemetry::event("epoch_planned", &[("epoch", Json::from(1u64))]);

    let report = RunReport::capture("disabled");
    assert!(report.events.is_empty());
    assert!(report.snapshot.is_empty());

    // Reports still serialize and parse (as an empty run).
    let back = RunReport::parse_jsonl(&report.to_jsonl()).expect("parse");
    assert_eq!(back, report);
}

#[test]
fn parser_accepts_hand_written_reports() {
    let text = concat!(
        "{\"type\":\"event\",\"seq\":0,\"kind\":\"start\",\"fields\":{\"note\":\"a \\\"quoted\\\" name\",\"ok\":true,\"x\":null}}\n",
        "{\"type\":\"summary\",\"name\":\"hand\",\"counters\":{\"c\":3},",
        "\"float_counters\":{\"f\":1.5},\"gauges\":{},",
        "\"histograms\":{\"h\":{\"bounds\":[1.0,2.0],\"counts\":[1,0,2],\"count\":3,\"sum\":7.5,\"min\":0.5,\"max\":4.0}},",
        "\"spans\":{\"s\":{\"count\":2,\"total_ns\":100,\"min_ns\":40,\"max_ns\":60}}}\n",
    );
    let report = RunReport::parse_jsonl(text).expect("valid report");
    assert_eq!(report.name, "hand");
    assert_eq!(report.events.len(), 1);
    assert_eq!(
        report.events[0].fields[0].1,
        Json::Str("a \"quoted\" name".to_string())
    );
    assert_eq!(report.snapshot.counter("c"), Some(3));
    assert_eq!(
        report.snapshot.histogram("h").unwrap().counts,
        vec![1, 0, 2]
    );
    assert_eq!(report.snapshot.span("s").unwrap().mean_ns(), 50);
}

#[test]
fn zero_event_reports_with_nonempty_snapshots_roundtrip() {
    // Regression: a run that records metrics but emits no events (and no
    // series) must survive serialize -> parse -> serialize, including
    // empty histograms whose min/max were never observed.
    use vb_telemetry::{HistogramSnapshot, RunReport, Snapshot, SpanStat};
    let report = RunReport {
        name: "quiet_run".to_string(),
        events: Vec::new(),
        series: Vec::new(),
        snapshot: Snapshot {
            counters: vec![("quiet.steps".to_string(), 42)],
            float_counters: vec![("quiet.gb".to_string(), 0.0)],
            gauges: vec![("quiet.util".to_string(), 0.25)],
            histograms: vec![(
                "quiet.empty_hist".to_string(),
                HistogramSnapshot {
                    bounds: vec![1.0, 10.0],
                    counts: vec![0, 0, 0],
                    count: 0,
                    sum: 0.0,
                    min: 0.0,
                    max: 0.0,
                },
            )],
            spans: vec![(
                "quiet.span".to_string(),
                SpanStat {
                    count: 3,
                    total_ns: 300,
                    min_ns: 50,
                    max_ns: 200,
                },
            )],
        },
    };
    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), 1, "summary line only");
    let parsed = RunReport::parse_jsonl(&jsonl).expect("zero-event report parses");
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_jsonl(), jsonl);

    // Trailing newlines, blank/whitespace lines and CRLF endings are
    // tolerated wherever a line boundary can occur.
    for decorated in [
        format!("{jsonl}\n\n"),
        format!("\n  \n{jsonl}"),
        format!("  {}  \n\t\n", jsonl.trim_end()),
        jsonl.trim_end().to_string(), // no final newline
        jsonl.replace('\n', "\r\n"),
    ] {
        let parsed = RunReport::parse_jsonl(&decorated)
            .unwrap_or_else(|e| panic!("must parse {decorated:?}: {e}"));
        assert_eq!(parsed, report);
    }

    // Error offsets stay within the input even without a final newline.
    let truncated = "{\"type\":\"event\",\"seq\":0,\"kind\":\"k\",\"fields\":{}}";
    let err = RunReport::parse_jsonl(truncated).expect_err("missing summary");
    assert!(err.offset <= truncated.len());
}

#[test]
fn series_lines_roundtrip_between_events_and_summary() {
    use vb_telemetry::{RunReport, SeriesData};
    let mut report = RunReport {
        name: "with_series".to_string(),
        ..RunReport::default()
    };
    report.series.push(SeriesData {
        name: "demo.step_series".to_string(),
        instance: "greedy".to_string(),
        epochs: vec![0, 1, 2],
        columns: vec![
            ("queued_apps".to_string(), vec![0.0, 2.0, 1.0]),
            ("transfer_gb".to_string(), vec![0.5, 0.0, 3.25]),
        ],
    });
    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), 2, "1 series + 1 summary");
    let parsed = RunReport::parse_jsonl(&jsonl).expect("parse");
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_jsonl(), jsonl);
    assert_eq!(
        parsed.series[0].column("transfer_gb"),
        Some(&[0.5, 0.0, 3.25][..])
    );

    // Malformed series lines are rejected with a clear error.
    let summary = jsonl.lines().last().expect("summary line");
    let ragged = format!(
        "{}\n{summary}\n",
        "{\"type\":\"series\",\"name\":\"s.x\",\"instance\":\"\",\"epochs\":[0,1],\"columns\":{\"v\":[1.0]}}"
    );
    assert!(
        RunReport::parse_jsonl(&ragged).is_err(),
        "column length must match epochs"
    );
    let after_summary = format!(
        "{summary}\n{}\n",
        jsonl.lines().next().expect("series line")
    );
    assert!(
        RunReport::parse_jsonl(&after_summary).is_err(),
        "series after summary is malformed"
    );
}

#[test]
fn parser_rejects_malformed_input() {
    assert!(RunReport::parse_jsonl("").is_err(), "no summary line");
    assert!(
        RunReport::parse_jsonl("{\"type\":\"event\",\"seq\":0}\n").is_err(),
        "event missing fields and no summary"
    );
    assert!(
        RunReport::parse_jsonl("not json at all\n").is_err(),
        "not JSON"
    );
    let dup = "{\"type\":\"summary\",\"name\":\"a\",\"counters\":{},\"float_counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{}}\n";
    assert!(
        RunReport::parse_jsonl(&format!("{dup}{dup}")).is_err(),
        "two summaries"
    );
}

#[test]
fn json_value_round_trips_tricky_scalars() {
    for text in [
        "{\"neg\":-12,\"big\":9007199254740993,\"frac\":0.1,\"exp\":1e-9,\"s\":\"\\u00e9\\n\"}",
        "[1,2.5,null,true,false,\"\",[],{}]",
    ] {
        let v = Json::parse(text).expect("parse");
        let emitted = v.emit();
        let reparsed = Json::parse(&emitted).expect("reparse");
        assert_eq!(v, reparsed, "emit/parse must be stable for {text}");
    }
    // Integers beyond 2^53 survive exactly (stored as i64, not f64).
    let v = Json::parse("9007199254740993").unwrap();
    assert_eq!(v, Json::Int(9_007_199_254_740_993));
    assert_eq!(v.emit(), "9007199254740993");
}
