//! RAII timing spans with thread-local aggregation.
//!
//! Each [`SpanGuard`] times its scope with a monotonic clock. Durations
//! accumulate into a thread-local map keyed by span name; when the
//! outermost span on a thread closes, the whole map merges into the
//! global registry in one lock acquisition. Hot loops can therefore open
//! thousands of nested spans without touching shared state.

use crate::snapshot::SpanStat;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static LOCAL: RefCell<HashMap<&'static str, SpanStat>> = RefCell::new(HashMap::new());
}

/// Guard returned by [`span!`](crate::span!); records the elapsed time
/// for `name` when dropped.
#[must_use = "a span guard times its scope; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    /// Open a span. Prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard {
            name,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        LOCAL.with(|local| {
            local
                .borrow_mut()
                .entry(self.name)
                .or_default()
                .record_ns(ns);
        });
        let depth = DEPTH.with(|d| {
            let v = d.get() - 1;
            d.set(v);
            v
        });
        if depth == 0 {
            LOCAL.with(|local| {
                let mut map = local.borrow_mut();
                if !map.is_empty() {
                    crate::registry::global().merge_spans(&map);
                    map.clear();
                }
            });
        }
    }
}
