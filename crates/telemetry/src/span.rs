//! RAII timing spans with thread-local aggregation.
//!
//! Each [`SpanGuard`] times its scope with a monotonic clock. Durations
//! accumulate into a thread-local map keyed by span name; when the
//! outermost span on a thread closes, the whole map merges into the
//! global registry in one lock acquisition. Hot loops can therefore open
//! thousands of nested spans without touching shared state.

use crate::snapshot::SpanStat;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static LOCAL: RefCell<HashMap<&'static str, SpanStat>> = RefCell::new(HashMap::new());
}

/// Guard returned by [`span!`](crate::span!); records the elapsed time
/// for `name` when dropped, and (when trace recording is on) a
/// begin/end pair in the causal timeline — see [`crate::trace`].
#[must_use = "a span guard times its scope; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    /// Timeline span id; 0 when trace recording was off at open, so the
    /// matching end record is suppressed and traces stay balanced.
    trace_id: u64,
}

impl SpanGuard {
    /// Open a span. Prefer the [`span!`](crate::span!) macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        DEPTH.with(|d| d.set(d.get() + 1));
        let trace_id = crate::trace::begin_span(name);
        SpanGuard {
            name,
            start: Instant::now(),
            trace_id,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        crate::trace::end_span(self.trace_id, self.name);
        LOCAL.with(|local| {
            local
                .borrow_mut()
                .entry(self.name)
                .or_default()
                .record_ns(ns);
        });
        let depth = DEPTH.with(|d| {
            let v = d.get() - 1;
            d.set(v);
            v
        });
        if depth == 0 {
            LOCAL.with(|local| {
                let mut map = local.borrow_mut();
                if !map.is_empty() {
                    crate::registry::global().merge_spans(&map);
                    map.clear();
                }
            });
            // The outermost close is also the natural point to hand this
            // thread's timeline records to the global collector.
            crate::trace::flush_thread();
        }
    }
}
