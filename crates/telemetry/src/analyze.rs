//! Offline analysis of Chrome trace files produced by
//! [`chrome_trace_json`](crate::chrome_trace_json): rebuild the span
//! forest, break wall-clock down per phase (span name), and rank the
//! slowest individual spans — e.g. the top-k slowest `sched.sim_epoch`
//! epochs of a run.
//!
//! Compiled unconditionally (it reads files, it does not record), so the
//! `trace_analyze` binary works even in `--no-default-features` builds.

use crate::report::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One reconstructed span from a Chrome trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    pub name: String,
    pub tid: u64,
    /// Span id from the Begin record's `args` (0 when absent).
    pub id: u64,
    /// Parent span id from the Begin record's `args` (0 for roots).
    pub parent: u64,
    /// Begin timestamp in microseconds.
    pub ts_us: f64,
    /// Wall-clock duration in microseconds (0 for unclosed spans).
    pub dur_us: f64,
    /// Duration minus time spent in direct children on the same thread.
    pub self_us: f64,
}

/// Parse a Chrome trace-event JSON array into spans. Begin/End records
/// pair up per thread in file order (the exporter preserves each
/// thread's recording order); unknown phases are ignored so traces with
/// metadata records still load.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceSpan>, String> {
    let doc = Json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let Json::Arr(items) = doc else {
        return Err("trace must be a JSON array of trace events".to_string());
    };
    let mut spans: Vec<TraceSpan> = Vec::new();
    let mut stacks: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for item in &items {
        let ph = item.get("ph").and_then(Json::as_str).unwrap_or("");
        let tid = item.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let ts = item.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
        match ph {
            "B" => {
                let name = item
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let args = item.get("args");
                let field = |key: &str| {
                    args.and_then(|a| a.get(key))
                        .and_then(Json::as_u64)
                        .unwrap_or(0)
                };
                let idx = spans.len();
                spans.push(TraceSpan {
                    name,
                    tid,
                    id: field("id"),
                    parent: field("parent"),
                    ts_us: ts,
                    dur_us: 0.0,
                    self_us: 0.0,
                });
                stacks.entry(tid).or_default().push(idx);
            }
            "E" => {
                if let Some(idx) = stacks.entry(tid).or_default().pop() {
                    let dur = (ts - spans[idx].ts_us).max(0.0);
                    spans[idx].dur_us = dur;
                    spans[idx].self_us += dur;
                    if let Some(&pidx) = stacks.get(&tid).and_then(|s| s.last()) {
                        spans[pidx].self_us -= dur;
                    }
                }
            }
            _ => {}
        }
    }
    // Unclosed spans never accumulated their own duration; clamp the
    // child subtractions so self time stays non-negative.
    for s in &mut spans {
        s.self_us = s.self_us.max(0.0);
    }
    Ok(spans)
}

/// Aggregated wall-clock for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    pub name: String,
    pub count: u64,
    pub total_us: f64,
    pub self_us: f64,
    pub max_us: f64,
}

/// Per-phase breakdown, sorted by self time (descending) — the phases
/// where wall-clock is actually spent, not just enclosed.
pub fn phase_breakdown(spans: &[TraceSpan]) -> Vec<PhaseStat> {
    let mut by_name: BTreeMap<&str, PhaseStat> = BTreeMap::new();
    for s in spans {
        let stat = by_name.entry(&s.name).or_insert_with(|| PhaseStat {
            name: s.name.clone(),
            count: 0,
            total_us: 0.0,
            self_us: 0.0,
            max_us: 0.0,
        });
        stat.count += 1;
        stat.total_us += s.dur_us;
        stat.self_us += s.self_us;
        stat.max_us = stat.max_us.max(s.dur_us);
    }
    let mut out: Vec<PhaseStat> = by_name.into_values().collect();
    out.sort_by(|a, b| b.self_us.total_cmp(&a.self_us));
    out
}

/// The `k` slowest spans, optionally restricted to one name (e.g.
/// `sched.sim_epoch` to rank epochs), sorted by duration descending.
pub fn top_spans<'a>(spans: &'a [TraceSpan], name: Option<&str>, k: usize) -> Vec<&'a TraceSpan> {
    let mut picked: Vec<&TraceSpan> = spans
        .iter()
        .filter(|s| name.is_none_or(|n| s.name == n))
        .collect();
    picked.sort_by(|a, b| b.dur_us.total_cmp(&a.dur_us));
    picked.truncate(k);
    picked
}

fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.3}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.3}ms", us / 1_000.0)
    } else {
        format!("{us:.1}us")
    }
}

/// Human-readable report: per-phase wall-clock table plus the top-`k`
/// slowest spans named `focus` (all names when `focus` is empty).
pub fn render_analysis(spans: &[TraceSpan], focus: &str, k: usize) -> String {
    let mut out = String::new();
    let phases = phase_breakdown(spans);
    let name_w = phases
        .iter()
        .map(|p| p.name.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}",
        "phase", "count", "total", "self", "max"
    );
    for p in &phases {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}",
            p.name,
            p.count,
            fmt_us(p.total_us),
            fmt_us(p.self_us),
            fmt_us(p.max_us)
        );
    }
    let filter = if focus.is_empty() { None } else { Some(focus) };
    let top = top_spans(spans, filter, k);
    if !top.is_empty() {
        let label = filter.unwrap_or("any phase");
        let _ = writeln!(out, "\ntop {} slowest spans ({label}):", top.len());
        for (rank, s) in top.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{:<2} {:<name_w$}  tid={:<3} t+{:>12}  dur={:>12}",
                rank + 1,
                s.name,
                s.tid,
                fmt_us(s.ts_us),
                fmt_us(s.dur_us)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{chrome_trace_json, TraceEvent, TracePhase};

    fn ev(phase: TracePhase, id: u64, parent: u64, tid: u64, ts_ns: u64) -> TraceEvent {
        TraceEvent {
            phase,
            id,
            parent,
            tid,
            ts_ns,
            name: match id {
                1 => "outer.phase",
                _ => "inner.phase",
            },
        }
    }

    #[test]
    fn breakdown_and_top_k_from_exported_trace() {
        use TracePhase::{Begin, End};
        // outer [0, 12ms] contains inner [2ms, 5ms]; a second inner on
        // another thread [0, 4ms].
        let events = [
            ev(Begin, 1, 0, 1, 0),
            ev(Begin, 2, 1, 1, 2_000_000),
            ev(End, 2, 0, 1, 5_000_000),
            ev(End, 1, 0, 1, 12_000_000),
            ev(Begin, 3, 1, 2, 0),
            ev(End, 3, 0, 2, 4_000_000),
        ];
        let spans = parse_chrome_trace(&chrome_trace_json(&events)).expect("parse");
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.id == 1).expect("outer");
        assert_eq!(outer.parent, 0);
        assert!((outer.dur_us - 12_000.0).abs() < 1e-6);
        assert!(
            (outer.self_us - 9_000.0).abs() < 1e-6,
            "inner time excluded"
        );
        let cross = spans.iter().find(|s| s.id == 3).expect("cross-thread");
        assert_eq!(cross.parent, 1, "parent link survives export");

        let phases = phase_breakdown(&spans);
        assert_eq!(phases[0].name, "outer.phase", "sorted by self time");
        assert_eq!(phases[1].count, 2);

        let top = top_spans(&spans, Some("inner.phase"), 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].id, 3, "slowest inner span ranks first");

        let text = render_analysis(&spans, "inner.phase", 5);
        assert!(text.contains("outer.phase"));
        assert!(text.contains("top 2 slowest spans (inner.phase)"));
    }

    #[test]
    fn rejects_non_array_and_tolerates_metadata() {
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("not json").is_err());
        // Metadata records (ph "M") and unclosed spans don't break it.
        let text = "[{\"ph\":\"M\",\"name\":\"process_name\"},\
                    {\"name\":\"open.phase\",\"ph\":\"B\",\"ts\":1.0,\"tid\":1}]";
        let spans = parse_chrome_trace(text).expect("parse");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur_us, 0.0);
    }
}
