//! Process-global metric registry, span aggregates, and the structured
//! event stream.

use crate::metrics::{Counter, FloatCounter, Gauge, Histogram, DEFAULT_BOUNDS};
use crate::report::{Event, Json};
use crate::snapshot::{Snapshot, SpanStat};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Lock a registry mutex, recovering from poisoning. Telemetry must stay
/// usable during unwinding: if a panic elsewhere poisoned a lock, a later
/// `.unwrap()` here would turn the first panic into a double panic and
/// abort the process. The guarded data (metric maps, event vectors) has
/// no invariants a half-completed update can break, so taking the inner
/// guard is always safe.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Registry of named metrics. Lookups take a lock; updates through the
/// returned handles are lock-free, so the lock is only contended when a
/// call site first resolves its metric.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<HashMap<&'static str, Arc<Counter>>>,
    float_counters: Mutex<HashMap<&'static str, Arc<FloatCounter>>>,
    gauges: Mutex<HashMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<HashMap<&'static str, Arc<Histogram>>>,
    spans: Mutex<HashMap<&'static str, SpanStat>>,
    events: Mutex<Vec<Event>>,
}

impl Registry {
    /// Get or create the named counter.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = lock_or_recover(&self.counters);
        Arc::clone(map.entry(name).or_insert_with(|| Arc::new(Counter::new())))
    }

    /// Get or create the named float counter.
    pub fn float_counter(&self, name: &'static str) -> Arc<FloatCounter> {
        let mut map = lock_or_recover(&self.float_counters);
        Arc::clone(
            map.entry(name)
                .or_insert_with(|| Arc::new(FloatCounter::new())),
        )
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut map = lock_or_recover(&self.gauges);
        Arc::clone(map.entry(name).or_insert_with(|| Arc::new(Gauge::new())))
    }

    /// Get or create the named histogram. `bounds` applies only on first
    /// creation; later callers share the existing buckets.
    pub fn histogram(&self, name: &'static str, bounds: Option<&[f64]>) -> Arc<Histogram> {
        let mut map = lock_or_recover(&self.histograms);
        Arc::clone(
            map.entry(name).or_insert_with(|| {
                Arc::new(Histogram::with_bounds(bounds.unwrap_or(&DEFAULT_BOUNDS)))
            }),
        )
    }

    /// Merge a thread's span aggregates (called when a thread's
    /// outermost span closes).
    pub(crate) fn merge_spans(&self, local: &HashMap<&'static str, SpanStat>) {
        let mut map = lock_or_recover(&self.spans);
        for (name, stat) in local {
            map.entry(name).or_default().merge(stat);
        }
    }

    /// Append a structured event to the run's stream.
    pub fn event(&self, kind: &str, fields: &[(&str, Json)]) {
        let mut events = lock_or_recover(&self.events);
        let seq = events.len() as u64;
        events.push(Event {
            seq,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Copy of the event stream so far.
    pub fn events(&self) -> Vec<Event> {
        lock_or_recover(&self.events).clone()
    }

    /// Freeze every metric into plain data, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot {
            counters: lock_or_recover(&self.counters)
                .iter()
                .map(|(&n, c)| (n.to_string(), c.get()))
                .collect(),
            float_counters: lock_or_recover(&self.float_counters)
                .iter()
                .map(|(&n, c)| (n.to_string(), c.get()))
                .collect(),
            gauges: lock_or_recover(&self.gauges)
                .iter()
                .map(|(&n, g)| (n.to_string(), g.get()))
                .collect(),
            histograms: lock_or_recover(&self.histograms)
                .iter()
                .map(|(&n, h)| (n.to_string(), h.snapshot()))
                .collect(),
            spans: lock_or_recover(&self.spans)
                .iter()
                .map(|(&n, &s)| (n.to_string(), s))
                .collect(),
        };
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.float_counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap.spans.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }

    /// Zero every metric in place and clear span aggregates and events.
    /// Registrations survive, so handles cached at call sites stay
    /// valid — this is how benches separate back-to-back runs.
    pub fn reset(&self) {
        for c in lock_or_recover(&self.counters).values() {
            c.reset();
        }
        for c in lock_or_recover(&self.float_counters).values() {
            c.reset();
        }
        for g in lock_or_recover(&self.gauges).values() {
            g.reset();
        }
        for h in lock_or_recover(&self.histograms).values() {
            h.reset();
        }
        lock_or_recover(&self.spans).clear();
        lock_or_recover(&self.events).clear();
    }
}

/// The process-global registry every macro records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Snapshot the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Record a structured event in the global run stream.
pub fn event(kind: &str, fields: &[(&str, Json)]) {
    global().event(kind, fields);
}

/// Copy of the global event stream so far.
pub fn events() -> Vec<Event> {
    global().events()
}

/// Reset the global registry, recorded series, and trace timeline
/// (between runs — see [`Registry::reset`]).
pub fn reset() {
    global().reset();
    crate::series::reset_series();
    crate::trace::reset_trace();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_locks_recover_instead_of_double_panicking() {
        let reg = Registry::default();
        reg.counter("poison.test").inc();
        // Poison the counters mutex by panicking while holding the lock.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = reg.counters.lock().unwrap();
            panic!("deliberate poison");
        }));
        assert!(reg.counters.is_poisoned());
        // Every telemetry path must keep working afterwards.
        reg.counter("poison.test").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("poison.test"), Some(2));
        reg.event("after.poison", &[]);
        assert_eq!(reg.events().len(), 1);
        reg.reset();
        assert_eq!(reg.snapshot().counter("poison.test"), Some(0));
    }
}
