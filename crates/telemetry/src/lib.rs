//! # vb-telemetry
//!
//! Zero-dependency observability for the virtual-battery workspace:
//!
//! * **Metrics** — [`counter!`], [`float_counter!`], [`gauge!`] and
//!   [`histogram!`] resolve a name to a process-global metric once per
//!   call site (cached in a static), then update it with a single atomic
//!   operation. No locks on the hot path.
//! * **Spans** — [`span!`] returns an RAII guard that times the enclosed
//!   scope. Durations aggregate in thread-local storage and merge into
//!   the global registry when the outermost span on a thread closes, so
//!   deeply nested instrumentation stays cheap.
//! * **Run reports** — [`event`] records structured moments (an epoch
//!   planned, a figure completed); [`RunReport::capture`] bundles the
//!   event stream with a full metric snapshot and serializes to JSONL
//!   that [`RunReport::parse_jsonl`] reads back.
//! * **Trace timelines** — every [`span!`] also records begin/end events
//!   with span/parent/thread ids into per-thread buffers; [`trace_events`]
//!   drains them and [`chrome_trace_json`] exports Perfetto-loadable
//!   Chrome trace JSON. [`trace_context`]/[`adopt_trace`] carry causality
//!   across `vb-par` worker threads. See [`trace`].
//! * **Metric series** — [`series_sample`] appends per-epoch rows to a
//!   compact columnar buffer keyed by `(name, instance)`, embedded in
//!   the run report for step-by-step inspection. See [`series`].
//! * **Trace analysis** — [`analyze`] parses a Chrome trace back into
//!   spans and prints per-phase wall-clock breakdowns and top-k slowest
//!   spans (also available as the `trace_analyze` binary).
//!
//! ## Compile-out
//!
//! Everything is gated behind the `telemetry` cargo feature (on by
//! default). With `--no-default-features` the same API exists but every
//! handle is a unit struct with `#[inline]` empty methods: call sites in
//! the solver, scheduler and simulators compile to nothing.
//!
//! ```
//! let _span = vb_telemetry::span!("example.work");
//! vb_telemetry::counter!("example.iterations").add(10);
//! vb_telemetry::histogram!("example.batch_size").observe(32.0);
//! let report = vb_telemetry::RunReport::capture("example");
//! let jsonl = report.to_jsonl();
//! let back = vb_telemetry::RunReport::parse_jsonl(&jsonl).unwrap();
//! assert_eq!(report, back);
//! ```

pub mod analyze;
pub mod report;
pub mod series;
mod snapshot;
pub mod trace;

pub use analyze::{parse_chrome_trace, phase_breakdown, render_analysis, PhaseStat, TraceSpan};
pub use report::{Event, Json, RunReport};
pub use series::{series_extend, series_sample, series_snapshot, SeriesData};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanStat};
pub use trace::{
    adopt_trace, chrome_trace_json, set_trace_enabled, trace_context, trace_drops, trace_enabled,
    trace_events, TraceAdoptGuard, TraceContext, TraceEvent, TracePhase,
};

#[cfg(feature = "telemetry")]
mod metrics;
#[cfg(feature = "telemetry")]
mod registry;
#[cfg(feature = "telemetry")]
mod span;

#[cfg(feature = "telemetry")]
pub use metrics::{Counter, FloatCounter, Gauge, Histogram};
#[cfg(feature = "telemetry")]
pub use registry::{event, events, global, reset, snapshot, Registry};
#[cfg(feature = "telemetry")]
pub use span::SpanGuard;

#[cfg(feature = "telemetry")]
#[doc(hidden)]
pub mod cells {
    pub use crate::metrics::{CounterCell, FloatCounterCell, GaugeCell, HistogramCell};
}

#[cfg(not(feature = "telemetry"))]
mod noop;
#[cfg(not(feature = "telemetry"))]
pub use noop::{
    event, events, reset, snapshot, Counter, FloatCounter, Gauge, Histogram, SpanGuard,
};
#[cfg(not(feature = "telemetry"))]
#[doc(hidden)]
pub mod cells {
    pub use crate::noop::{CounterCell, FloatCounterCell, GaugeCell, HistogramCell};
}

/// Monotonic counter handle for the named metric.
///
/// The name must be a string literal (or `&'static str` expression); the
/// registry lookup happens once per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __VB_CELL: $crate::cells::CounterCell = $crate::cells::CounterCell::new();
        __VB_CELL.get($name)
    }};
}

/// Monotonic `f64` accumulator handle (e.g. gigabytes moved).
#[macro_export]
macro_rules! float_counter {
    ($name:expr) => {{
        static __VB_CELL: $crate::cells::FloatCounterCell = $crate::cells::FloatCounterCell::new();
        __VB_CELL.get($name)
    }};
}

/// Last-value gauge handle (e.g. current utilization).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __VB_CELL: $crate::cells::GaugeCell = $crate::cells::GaugeCell::new();
        __VB_CELL.get($name)
    }};
}

/// Fixed-bucket histogram handle. The one-argument form uses the default
/// decade buckets; pass a `&'static [f64]` of ascending upper bounds to
/// customize.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __VB_CELL: $crate::cells::HistogramCell = $crate::cells::HistogramCell::new();
        __VB_CELL.get($name, None)
    }};
    ($name:expr, $bounds:expr) => {{
        static __VB_CELL: $crate::cells::HistogramCell = $crate::cells::HistogramCell::new();
        __VB_CELL.get($name, Some($bounds))
    }};
}

/// Time the enclosing scope: `let _span = span!("solver.mip_solve");`.
///
/// Durations are aggregated per thread and merged into the registry when
/// the thread's outermost span closes; nested spans are tracked
/// independently by name.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}
