//! Machine-readable run reports: a JSONL event stream plus a final
//! metric-summary line, with a parser for round-tripping.
//!
//! The JSON support here is deliberately tiny (one enum, one emitter,
//! one recursive-descent parser) to keep the crate dependency-free; the
//! workspace policy is "no serde_json".

use crate::series::SeriesData;
use crate::snapshot::{HistogramSnapshot, Snapshot, SpanStat};
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted reports are
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers emit without a decimal point and parse back exactly.
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Emit compact JSON. Non-finite numbers become `null`.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        // Keep a decimal point so the value parses back
                        // as Num, not Int.
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor covering both `Int` and `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n.min(i64::MAX as u64) as i64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n.min(i64::MAX as usize) as i64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON / report parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// One structured moment in a run (an epoch planned, a phase finished).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub kind: String,
    pub fields: Vec<(String, Json)>,
}

impl Event {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::from("event")),
            ("seq".into(), Json::from(self.seq)),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("fields".into(), Json::Obj(self.fields.clone())),
        ])
    }

    fn from_json(value: &Json, offset_hint: usize) -> Result<Event, ParseError> {
        let invalid = |msg: &str| ParseError {
            message: msg.to_string(),
            offset: offset_hint,
        };
        let seq = value
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| invalid("event missing seq"))?;
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("event missing kind"))?
            .to_string();
        let fields = match value.get("fields") {
            Some(Json::Obj(fields)) => fields.clone(),
            _ => return Err(invalid("event missing fields")),
        };
        Ok(Event { seq, kind, fields })
    }
}

/// A complete run report: name, event stream, per-epoch metric series,
/// and final metric snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    pub name: String,
    pub events: Vec<Event>,
    pub series: Vec<SeriesData>,
    pub snapshot: Snapshot,
}

impl RunReport {
    /// Bundle the global registry's current events, recorded series and
    /// metrics under `name`. With the `telemetry` feature off this
    /// returns an empty report.
    pub fn capture(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            events: crate::events(),
            series: crate::series_snapshot(),
            snapshot: crate::snapshot(),
        }
    }

    /// Serialize as JSONL: one line per event, one line per series, then
    /// one `summary` line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json().emit());
            out.push('\n');
        }
        for series in &self.series {
            out.push_str(&series_json(series).emit());
            out.push('\n');
        }
        out.push_str(&self.summary_json().emit());
        out.push('\n');
        out
    }

    fn summary_json(&self) -> Json {
        let snap = &self.snapshot;
        let num_map = |pairs: &[(String, f64)]| {
            Json::Obj(
                pairs
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::Num(*v)))
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("type".into(), Json::from("summary")),
            ("name".into(), Json::Str(self.name.clone())),
            (
                "counters".into(),
                Json::Obj(
                    snap.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            ("float_counters".into(), num_map(&snap.float_counters)),
            ("gauges".into(), num_map(&snap.gauges)),
            (
                "histograms".into(),
                Json::Obj(
                    snap.histograms
                        .iter()
                        .map(|(n, h)| {
                            (
                                n.clone(),
                                Json::Obj(vec![
                                    (
                                        "bounds".into(),
                                        Json::Arr(h.bounds.iter().map(|&b| Json::Num(b)).collect()),
                                    ),
                                    (
                                        "counts".into(),
                                        Json::Arr(
                                            h.counts.iter().map(|&c| Json::from(c)).collect(),
                                        ),
                                    ),
                                    ("count".into(), Json::from(h.count)),
                                    ("sum".into(), Json::Num(h.sum)),
                                    ("min".into(), Json::Num(h.min)),
                                    ("max".into(), Json::Num(h.max)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "spans".into(),
                Json::Obj(
                    snap.spans
                        .iter()
                        .map(|(n, s)| {
                            (
                                n.clone(),
                                Json::Obj(vec![
                                    ("count".into(), Json::from(s.count)),
                                    ("total_ns".into(), Json::from(s.total_ns)),
                                    ("min_ns".into(), Json::from(s.min_ns)),
                                    ("max_ns".into(), Json::from(s.max_ns)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a JSONL document produced by [`RunReport::to_jsonl`].
    ///
    /// Tolerant of blank / whitespace-only lines, CRLF line endings, and
    /// a missing final newline; a report with zero events (just series
    /// and/or the summary line) round-trips like any other.
    pub fn parse_jsonl(text: &str) -> Result<RunReport, ParseError> {
        let mut report = RunReport::default();
        let mut saw_summary = false;
        let mut offset = 0;
        for line in text.split('\n') {
            let line_offset = offset;
            // `+ 1` for the split-off '\n'; the final segment has none,
            // so clamp when reporting end-of-input errors below.
            offset += line.len() + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value = Json::parse(line).map_err(|mut e| {
                e.offset += line_offset;
                e
            })?;
            let invalid = |msg: &str| ParseError {
                message: msg.to_string(),
                offset: line_offset,
            };
            match value.get("type").and_then(Json::as_str) {
                Some("event") => {
                    if saw_summary {
                        return Err(invalid("event after summary line"));
                    }
                    report.events.push(Event::from_json(&value, line_offset)?);
                }
                Some("series") => {
                    if saw_summary {
                        return Err(invalid("series after summary line"));
                    }
                    report.series.push(parse_series(&value, line_offset)?);
                }
                Some("summary") => {
                    if saw_summary {
                        return Err(invalid("duplicate summary line"));
                    }
                    saw_summary = true;
                    report.name = value
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| invalid("summary missing name"))?
                        .to_string();
                    report.snapshot = parse_snapshot(&value, line_offset)?;
                }
                _ => return Err(invalid("line is neither event, series nor summary")),
            }
        }
        if !saw_summary {
            return Err(ParseError {
                message: "missing summary line".to_string(),
                offset: offset.min(text.len()),
            });
        }
        Ok(report)
    }
}

fn series_json(s: &SeriesData) -> Json {
    Json::Obj(vec![
        ("type".into(), Json::from("series")),
        ("name".into(), Json::Str(s.name.clone())),
        ("instance".into(), Json::Str(s.instance.clone())),
        (
            "epochs".into(),
            Json::Arr(s.epochs.iter().map(|&e| Json::from(e)).collect()),
        ),
        (
            "columns".into(),
            Json::Obj(
                s.columns
                    .iter()
                    .map(|(c, vals)| {
                        (
                            c.clone(),
                            Json::Arr(vals.iter().map(|&v| Json::Num(v)).collect()),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn parse_series(value: &Json, offset: usize) -> Result<SeriesData, ParseError> {
    let invalid = |msg: &str| ParseError {
        message: msg.to_string(),
        offset,
    };
    let text_field = |key: &str| -> Result<String, ParseError> {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| invalid(&format!("series missing {key}")))
    };
    let epochs = match value.get("epochs") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|i| i.as_u64().ok_or_else(|| invalid("bad series epoch")))
            .collect::<Result<Vec<u64>, ParseError>>()?,
        _ => return Err(invalid("series missing epochs")),
    };
    let mut columns = Vec::new();
    match value.get("columns") {
        Some(Json::Obj(fields)) => {
            for (name, vals) in fields {
                let vals = match vals {
                    Json::Arr(items) => items
                        .iter()
                        .map(|i| i.as_f64().ok_or_else(|| invalid("bad series value")))
                        .collect::<Result<Vec<f64>, ParseError>>()?,
                    _ => return Err(invalid("series column is not an array")),
                };
                if vals.len() != epochs.len() {
                    return Err(invalid("series column length != epoch count"));
                }
                columns.push((name.clone(), vals));
            }
        }
        _ => return Err(invalid("series missing columns")),
    }
    Ok(SeriesData {
        name: text_field("name")?,
        instance: text_field("instance")?,
        epochs,
        columns,
    })
}

fn parse_snapshot(value: &Json, offset: usize) -> Result<Snapshot, ParseError> {
    let invalid = |msg: &str| ParseError {
        message: msg.to_string(),
        offset,
    };
    let obj_pairs = |key: &str| -> Result<Vec<(String, Json)>, ParseError> {
        match value.get(key) {
            Some(Json::Obj(fields)) => Ok(fields.clone()),
            _ => Err(invalid(&format!("summary missing {key}"))),
        }
    };

    let mut snap = Snapshot::default();
    for (name, v) in obj_pairs("counters")? {
        let v = v.as_u64().ok_or_else(|| invalid("bad counter value"))?;
        snap.counters.push((name, v));
    }
    for (name, v) in obj_pairs("float_counters")? {
        let v = v.as_f64().ok_or_else(|| invalid("bad float counter"))?;
        snap.float_counters.push((name, v));
    }
    for (name, v) in obj_pairs("gauges")? {
        let v = v.as_f64().ok_or_else(|| invalid("bad gauge"))?;
        snap.gauges.push((name, v));
    }
    for (name, h) in obj_pairs("histograms")? {
        let f64_arr = |key: &str| -> Result<Vec<f64>, ParseError> {
            match h.get(key) {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|i| i.as_f64().ok_or_else(|| invalid("bad histogram bound")))
                    .collect(),
                _ => Err(invalid("histogram missing bounds")),
            }
        };
        let counts = match h.get("counts") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| i.as_u64().ok_or_else(|| invalid("bad histogram count")))
                .collect::<Result<Vec<u64>, ParseError>>()?,
            _ => return Err(invalid("histogram missing counts")),
        };
        let scalar = |key: &str| {
            h.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| invalid("bad histogram scalar"))
        };
        snap.histograms.push((
            name,
            HistogramSnapshot {
                bounds: f64_arr("bounds")?,
                counts,
                count: h
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| invalid("bad histogram count"))?,
                sum: scalar("sum")?,
                min: scalar("min")?,
                max: scalar("max")?,
            },
        ));
    }
    for (name, s) in obj_pairs("spans")? {
        let field = |key: &str| {
            s.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| invalid("bad span field"))
        };
        snap.spans.push((
            name,
            SpanStat {
                count: field("count")?,
                total_ns: field("total_ns")?,
                min_ns: field("min_ns")?,
                max_ns: field("max_ns")?,
            },
        ));
    }
    Ok(snap)
}
