//! Plain-data snapshot types shared by the live registry, the no-op
//! build, and the run-report serializer.

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub float_counters: Vec<(String, f64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub spans: Vec<(String, SpanStat)>,
}

impl Snapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a float counter by name.
    pub fn float_counter(&self, name: &str) -> Option<f64> {
        self.float_counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Look up span timing stats by name.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// True when nothing was recorded (always the case with the
    /// `telemetry` feature disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.float_counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

/// Frozen histogram state: `counts[i]` observations fell in
/// `(bounds[i-1], bounds[i]]`, with a final overflow bucket, plus running
/// count / sum / min / max of the raw observations.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean of the raw observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregated timings for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanStat {
    /// Merge another aggregate into this one.
    pub fn merge(&mut self, other: &SpanStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Record a single duration.
    pub fn record_ns(&mut self, ns: u64) {
        self.merge(&SpanStat {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        });
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}
