//! Analyze a Chrome trace file written by the bench harness:
//! per-phase wall-clock breakdown plus the top-k slowest spans.
//!
//! ```text
//! cargo run -p vb-telemetry --bin trace_analyze -- \
//!     target/run-reports/table1_policies.trace.json --span sched.sim_epoch --top 10
//! ```

use std::process::ExitCode;

const USAGE: &str = "usage: trace_analyze <trace.json> [--span NAME] [--top K]\n\
    \n\
    --span NAME  rank the K slowest spans of this name (default sched.sim_epoch;\n\
    \x20            pass an empty string to rank across all names)\n\
    --top K      how many slow spans to list (default 10)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut focus = "sched.sim_epoch".to_string();
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--span" => match it.next() {
                Some(v) => focus = v.clone(),
                None => return usage_error("--span needs a value"),
            },
            "--top" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => top = v,
                None => return usage_error("--top needs an integer"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            other => return usage_error(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(path) = path else {
        return usage_error("missing trace file path");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let spans = match vb_telemetry::parse_chrome_trace(&text) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("error: {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    if spans.is_empty() {
        eprintln!("error: {path}: no spans in trace");
        return ExitCode::FAILURE;
    }
    println!("{path}: {} spans", spans.len());
    print!("{}", vb_telemetry::render_analysis(&spans, &focus, top));
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
