//! Per-epoch metric series: compact columnar samples of simulation
//! state, embedded in the JSONL run report.
//!
//! Aggregate metrics say *how much*; a series says *when*. Call
//! [`series_sample`] once per epoch (or step) with the values to record:
//!
//! ```
//! vb_telemetry::series_sample(
//!     "example.step_series",
//!     "greedy",
//!     42,
//!     &[("queued_apps", 3.0), ("transfer_gb", 12.5)],
//! );
//! ```
//!
//! Samples accumulate in a process-global store keyed by
//! `(name, instance)` — `instance` distinguishes concurrent recorders of
//! the same series (e.g. the four policies a Table-1 run simulates in
//! parallel), so interleaved threads never mix rows. Within one key,
//! rows stay in append order; the snapshot sorts keys, which keeps run
//! reports byte-identical across thread counts.
//!
//! Columns may vary between samples: a column first seen mid-series is
//! backfilled with zeros, and columns missing from a sample are padded
//! with zeros, so every column always has exactly one value per epoch.

/// One recorded series: parallel `epochs` / per-column value vectors.
/// Plain data — shared by the live store, the no-op build, and the
/// run-report serializer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesData {
    pub name: String,
    /// Distinguishes concurrent recorders of the same series name
    /// (policy name, site name, ...); empty when unused.
    pub instance: String,
    pub epochs: Vec<u64>,
    pub columns: Vec<(String, Vec<f64>)>,
}

impl SeriesData {
    /// Number of sampled epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Values of one column, if present.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns
            .iter()
            .find(|(c, _)| c == name)
            .map(|(_, v)| v.as_slice())
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::SeriesData;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn store() -> &'static Mutex<Vec<SeriesData>> {
        static STORE: OnceLock<Mutex<Vec<SeriesData>>> = OnceLock::new();
        STORE.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Append one row to the `(name, instance)` series. Sampling the
    /// same column twice at one epoch keeps the last value.
    pub fn series_sample(name: &'static str, instance: &str, epoch: u64, columns: &[(&str, f64)]) {
        let mut all = lock_or_recover(store());
        if !all.iter().any(|s| s.name == name && s.instance == instance) {
            all.push(SeriesData {
                name: name.to_string(),
                instance: instance.to_string(),
                ..SeriesData::default()
            });
        }
        let Some(buf) = all
            .iter_mut()
            .find(|s| s.name == name && s.instance == instance)
        else {
            return;
        };
        buf.epochs.push(epoch);
        let rows = buf.epochs.len();
        for &(col, v) in columns {
            let idx = match buf.columns.iter().position(|(c, _)| c == col) {
                Some(i) => i,
                None => {
                    // New column mid-series: backfill earlier epochs.
                    buf.columns.push((col.to_string(), vec![0.0; rows - 1]));
                    buf.columns.len() - 1
                }
            };
            let vals = &mut buf.columns[idx].1;
            if vals.len() == rows {
                vals[rows - 1] = v;
            } else {
                vals.resize(rows - 1, 0.0);
                vals.push(v);
            }
        }
        for (_, vals) in &mut buf.columns {
            if vals.len() < rows {
                vals.resize(rows, 0.0);
            }
        }
    }

    /// Append many rows to the `(name, instance)` series in one store
    /// lock — the hot-loop batching form of [`series_sample`]. A tight
    /// per-step loop (the group simulator samples every one of its
    /// thousands of steps, from every fleet-shard thread at once) pays
    /// one global mutex acquisition per *run* instead of per step; the
    /// resulting store content is identical to calling `series_sample`
    /// once per row with the same columns. Every column slice must be
    /// parallel to `epochs`.
    pub fn series_extend(
        name: &'static str,
        instance: &str,
        epochs: &[u64],
        columns: &[(&str, &[f64])],
    ) {
        if epochs.is_empty() {
            return;
        }
        let mut all = lock_or_recover(store());
        if !all.iter().any(|s| s.name == name && s.instance == instance) {
            all.push(SeriesData {
                name: name.to_string(),
                instance: instance.to_string(),
                ..SeriesData::default()
            });
        }
        let Some(buf) = all
            .iter_mut()
            .find(|s| s.name == name && s.instance == instance)
        else {
            return;
        };
        let start = buf.epochs.len();
        buf.epochs.extend_from_slice(epochs);
        let rows = buf.epochs.len();
        for &(col, vals) in columns {
            debug_assert_eq!(vals.len(), epochs.len(), "column {col} not parallel");
            let idx = match buf.columns.iter().position(|(c, _)| c == col) {
                Some(i) => i,
                None => {
                    // New column mid-series: backfill earlier epochs.
                    buf.columns.push((col.to_string(), vec![0.0; start]));
                    buf.columns.len() - 1
                }
            };
            let out = &mut buf.columns[idx].1;
            out.resize(start, 0.0);
            out.extend(vals.iter().copied().take(epochs.len()));
        }
        for (_, vals) in &mut buf.columns {
            if vals.len() < rows {
                vals.resize(rows, 0.0);
            }
        }
    }

    /// Copy of every recorded series, sorted by `(name, instance)` for
    /// deterministic reports regardless of recorder thread interleaving.
    pub fn series_snapshot() -> Vec<SeriesData> {
        let mut all = lock_or_recover(store()).clone();
        all.sort_by(|a, b| (&a.name, &a.instance).cmp(&(&b.name, &b.instance)));
        all
    }

    /// Drop every recorded series (between runs).
    pub(crate) fn reset_series() {
        lock_or_recover(store()).clear();
    }
}

#[cfg(feature = "telemetry")]
pub(crate) use imp::reset_series;
#[cfg(feature = "telemetry")]
pub use imp::{series_extend, series_sample, series_snapshot};

/// Samples are dropped when telemetry is compiled out.
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
pub fn series_sample(_name: &'static str, _instance: &str, _epoch: u64, _columns: &[(&str, f64)]) {}

/// Samples are dropped when telemetry is compiled out.
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
pub fn series_extend(
    _name: &'static str,
    _instance: &str,
    _epochs: &[u64],
    _columns: &[(&str, &[f64])],
) {
}

/// Always empty when telemetry is compiled out.
#[cfg(not(feature = "telemetry"))]
#[inline]
pub fn series_snapshot() -> Vec<SeriesData> {
    Vec::new()
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    // The store is process-global; a unique name per test keeps these
    // independent of sibling tests in the binary.
    #[test]
    fn rows_accumulate_and_columns_align() {
        series_sample("seriestest.basic", "a", 0, &[("x", 1.0), ("y", 2.0)]);
        series_sample("seriestest.basic", "a", 1, &[("y", 4.0), ("z", 9.0)]);
        series_sample("seriestest.basic", "b", 0, &[("x", 7.0)]);

        let all = series_snapshot();
        let a = all
            .iter()
            .find(|s| s.name == "seriestest.basic" && s.instance == "a")
            .expect("series a");
        assert_eq!(a.epochs, vec![0, 1]);
        assert_eq!(a.column("x"), Some(&[1.0, 0.0][..]), "missing sample pads");
        assert_eq!(a.column("y"), Some(&[2.0, 4.0][..]));
        assert_eq!(
            a.column("z"),
            Some(&[0.0, 9.0][..]),
            "late column backfills"
        );
        let b = all
            .iter()
            .find(|s| s.name == "seriestest.basic" && s.instance == "b")
            .expect("series b");
        assert_eq!(b.epochs, vec![0]);
        assert_eq!(b.column("x"), Some(&[7.0][..]));
    }

    #[test]
    fn extend_matches_repeated_samples() {
        // The batched form must leave the store in exactly the state
        // repeated single samples would.
        let epochs: Vec<u64> = (0..5).collect();
        let a: Vec<f64> = epochs.iter().map(|&e| e as f64 * 1.5).collect();
        let b: Vec<f64> = epochs.iter().map(|&e| 10.0 - e as f64).collect();
        for (i, &e) in epochs.iter().enumerate() {
            series_sample(
                "seriestest.extend",
                "one-by-one",
                e,
                &[("a", a[i]), ("b", b[i])],
            );
        }
        series_extend(
            "seriestest.extend",
            "batched",
            &epochs,
            &[("a", &a), ("b", &b)],
        );
        let all = series_snapshot();
        let find = |inst: &str| {
            all.iter()
                .find(|s| s.name == "seriestest.extend" && s.instance == inst)
                .expect("series recorded")
        };
        let (single, batched) = (find("one-by-one"), find("batched"));
        assert_eq!(single.epochs, batched.epochs);
        assert_eq!(single.columns, batched.columns);
    }

    #[test]
    fn extend_appends_and_backfills_like_sample() {
        series_sample("seriestest.extend_mix", "x", 0, &[("old", 1.0)]);
        series_extend(
            "seriestest.extend_mix",
            "x",
            &[1, 2],
            &[("new", &[5.0, 6.0])],
        );
        let all = series_snapshot();
        let s = all
            .iter()
            .find(|s| s.name == "seriestest.extend_mix")
            .expect("series recorded");
        assert_eq!(s.epochs, vec![0, 1, 2]);
        assert_eq!(s.column("old"), Some(&[1.0, 0.0, 0.0][..]), "old pads");
        assert_eq!(s.column("new"), Some(&[0.0, 5.0, 6.0][..]), "new backfills");
    }

    #[test]
    fn snapshot_is_sorted_by_name_then_instance() {
        series_sample("seriestest.sort_z", "1", 0, &[("v", 0.0)]);
        series_sample("seriestest.sort_a", "2", 0, &[("v", 0.0)]);
        series_sample("seriestest.sort_a", "1", 0, &[("v", 0.0)]);
        let keys: Vec<(String, String)> = series_snapshot()
            .into_iter()
            .filter(|s| s.name.starts_with("seriestest.sort"))
            .map(|s| (s.name, s.instance))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("seriestest.sort_a".to_string(), "1".to_string()),
                ("seriestest.sort_a".to_string(), "2".to_string()),
                ("seriestest.sort_z".to_string(), "1".to_string()),
            ]
        );
    }
}
