//! API mirror compiled when the `telemetry` feature is **off**: every
//! handle is a unit struct whose methods are empty and `#[inline]`, so
//! instrumented call sites optimize away entirely.

use crate::report::{Event, Json};
use crate::snapshot::Snapshot;

/// No-op counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter;

impl Counter {
    #[inline(always)]
    pub fn inc(&self) {}
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op float counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct FloatCounter;

impl FloatCounter {
    #[inline(always)]
    pub fn add(&self, _v: f64) {}
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op gauge.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gauge;

impl Gauge {
    #[inline(always)]
    pub fn set(&self, _v: f64) {}
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram.
#[derive(Debug, Default, Clone, Copy)]
pub struct Histogram;

impl Histogram {
    #[inline(always)]
    pub fn observe(&self, _v: f64) {}
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }
}

/// No-op span guard.
#[must_use = "a span guard times its scope; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct SpanGuard;

impl SpanGuard {
    #[inline(always)]
    pub fn enter(_name: &'static str) -> SpanGuard {
        SpanGuard
    }
}

/// Always-empty snapshot.
#[inline]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Events are dropped when telemetry is compiled out.
#[inline(always)]
pub fn event(_kind: &str, _fields: &[(&str, Json)]) {}

/// Copy of the (always empty) event stream.
#[inline]
pub fn events() -> Vec<Event> {
    Vec::new()
}

/// Nothing to reset.
#[inline(always)]
pub fn reset() {}

macro_rules! noop_cell {
    ($cell:ident, $metric:ident) => {
        pub struct $cell;

        impl $cell {
            pub const fn new() -> $cell {
                $cell
            }

            #[inline(always)]
            pub fn get(&'static self, _name: &'static str) -> $metric {
                $metric
            }
        }
    };
}

noop_cell!(CounterCell, Counter);
noop_cell!(FloatCounterCell, FloatCounter);
noop_cell!(GaugeCell, Gauge);

pub struct HistogramCell;

impl HistogramCell {
    pub const fn new() -> HistogramCell {
        HistogramCell
    }

    #[inline(always)]
    pub fn get(&'static self, _name: &'static str, _bounds: Option<&'static [f64]>) -> Histogram {
        Histogram
    }
}
