//! Atomic metric primitives and the per-call-site caching cells the
//! `counter!` / `gauge!` / `histogram!` macros expand to.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default histogram bucket upper bounds: decades from 1e-9 to 1e9,
/// suitable for both sub-microsecond durations (seconds) and large
/// magnitudes (GB, node counts).
pub(crate) const DEFAULT_BOUNDS: [f64; 19] = [
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7,
    1e8, 1e9,
];

/// Monotonic `u64` counter. Increments saturate instead of wrapping.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Monotonic `f64` accumulator (bits stored in an `AtomicU64`).
#[derive(Debug)]
pub struct FloatCounter {
    bits: AtomicU64,
}

impl Default for FloatCounter {
    fn default() -> FloatCounter {
        FloatCounter {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl FloatCounter {
    pub(crate) fn new() -> FloatCounter {
        FloatCounter::default()
    }

    /// Add `v` (typically non-negative; no sign restriction enforced).
    #[inline]
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Last-value gauge (bits stored in an `AtomicU64`).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    pub(crate) fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Fixed-bucket histogram: `counts[i]` records observations `<=
/// bounds[i]` (and greater than the previous bound); one extra overflow
/// bucket catches the rest. Also tracks count / sum / min / max of the
/// raw observations with atomic fast paths.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    pub(crate) fn with_bounds(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        update_f64(&self.sum_bits, |s| s + v);
        update_f64(&self.min_bits, |m| m.min(v));
        update_f64(&self.max_bits, |m| m.max(v));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freeze into plain data (non-finite min/max of an empty histogram
    /// are normalized to 0 so snapshots always serialize).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
        }
    }

    pub(crate) fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

fn update_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        if next == cur {
            return;
        }
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

macro_rules! metric_cell {
    ($cell:ident, $metric:ident, $register:ident) => {
        /// Per-call-site cache: resolves the named metric against the
        /// global registry once, then hands out the same `&'static` handle.
        pub struct $cell(OnceLock<Arc<$metric>>);

        impl Default for $cell {
            fn default() -> $cell {
                $cell::new()
            }
        }

        impl $cell {
            pub const fn new() -> $cell {
                $cell(OnceLock::new())
            }

            pub fn get(&'static self, name: &'static str) -> &'static $metric {
                self.0
                    .get_or_init(|| crate::registry::global().$register(name))
            }
        }
    };
}

metric_cell!(CounterCell, Counter, counter);
metric_cell!(FloatCounterCell, FloatCounter, float_counter);
metric_cell!(GaugeCell, Gauge, gauge);

/// Per-call-site cache for histograms; carries optional custom bounds.
pub struct HistogramCell(OnceLock<Arc<Histogram>>);

impl Default for HistogramCell {
    fn default() -> HistogramCell {
        HistogramCell::new()
    }
}

impl HistogramCell {
    pub const fn new() -> HistogramCell {
        HistogramCell(OnceLock::new())
    }

    pub fn get(
        &'static self,
        name: &'static str,
        bounds: Option<&'static [f64]>,
    ) -> &'static Histogram {
        self.0
            .get_or_init(|| crate::registry::global().histogram(name, bounds))
    }
}
