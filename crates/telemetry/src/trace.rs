//! Causal trace timelines: begin/end records for every [`span!`] scope,
//! linked by span id / parent id, exportable as Chrome trace-event JSON
//! (loadable in Perfetto or `chrome://tracing`).
//!
//! ## Recording design
//!
//! The hot path touches only thread-local state. Each thread appends
//! [`TraceEvent`]s to a private buffer and flushes it into the bounded
//! process-global collector in one lock acquisition when either the
//! buffer fills ([`VB_TRACE_THREAD_CAPACITY`], default 16 384 events) or
//! the thread's outermost span closes. The collector itself is bounded
//! ([`VB_TRACE_CAPACITY`], default 1 048 576 events); once full, further
//! events are dropped and counted in [`trace_drops`] — recording never
//! blocks and never grows without bound.
//!
//! ## Cross-thread causality
//!
//! [`trace_context`] captures the calling thread's innermost open span;
//! [`adopt_trace`] installs that context on a worker thread so spans the
//! worker opens nest under the caller's span. `vb-par` does this around
//! every `par_map` fan-out, which is why worker timelines appear as
//! children of the span that launched them.
//!
//! Recording can be switched off at runtime with [`set_trace_enabled`]
//! or by setting `VB_TRACE=0`; with `--no-default-features` the whole
//! module compiles to no-ops (`trace_events` returns an empty vec).
//!
//! [`span!`]: crate::span!
//! [`VB_TRACE_THREAD_CAPACITY`]: self#recording-design
//! [`VB_TRACE_CAPACITY`]: self#recording-design

use crate::report::Json;

/// Whether a record marks a span opening or closing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    Begin,
    End,
}

/// One begin/end record in a trace timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub phase: TracePhase,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span at open time; 0 for roots. End records
    /// carry 0 — the Begin record owns the causal link.
    pub parent: u64,
    /// Small stable per-thread number (assigned on first trace use).
    pub tid: u64,
    /// Monotonic nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    pub name: &'static str,
}

/// A captured parent-span link, handed to worker threads so their spans
/// nest under the capturing thread's innermost open span. `Copy` + cheap
/// so `vb-par` can clone it into every worker closure.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceContext {
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    pub(crate) parent: u64,
}

/// Render trace events as a Chrome trace-event JSON array (duration
/// events, `ph: "B"/"E"`, timestamps in microseconds). The output loads
/// directly in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`; Begin records carry the span id and parent id in
/// `args` so causal links survive the export.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut arr = Vec::with_capacity(events.len());
    for ev in events {
        let mut fields = vec![
            ("name".to_string(), Json::from(ev.name)),
            ("cat".to_string(), Json::from("vb")),
            (
                "ph".to_string(),
                Json::from(match ev.phase {
                    TracePhase::Begin => "B",
                    TracePhase::End => "E",
                }),
            ),
            ("ts".to_string(), Json::Num(ev.ts_ns as f64 / 1000.0)),
            ("pid".to_string(), Json::from(1u64)),
            ("tid".to_string(), Json::from(ev.tid)),
        ];
        if ev.phase == TracePhase::Begin {
            fields.push((
                "args".to_string(),
                Json::Obj(vec![
                    ("id".to_string(), Json::from(ev.id)),
                    ("parent".to_string(), Json::from(ev.parent)),
                ]),
            ));
        }
        arr.push(Json::Obj(fields));
    }
    Json::Arr(arr).emit()
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{TraceContext, TraceEvent, TracePhase};
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// See `registry::lock_or_recover`: telemetry must survive lock
    /// poisoning from unrelated panics.
    fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn trace_epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        trace_epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn enabled_flag() -> &'static AtomicBool {
        static FLAG: OnceLock<AtomicBool> = OnceLock::new();
        FLAG.get_or_init(|| {
            let off = matches!(
                std::env::var("VB_TRACE").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            AtomicBool::new(!off)
        })
    }

    /// Turn trace recording on or off at runtime. Span timing aggregates
    /// are unaffected; only timeline records stop.
    pub fn set_trace_enabled(on: bool) {
        enabled_flag().store(on, Ordering::Relaxed);
    }

    /// True when timeline records are being collected.
    pub fn trace_enabled() -> bool {
        enabled_flag().load(Ordering::Relaxed)
    }

    fn env_capacity(var: &str, default: usize) -> usize {
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|v| v.max(16))
            .unwrap_or(default)
    }

    fn thread_capacity() -> usize {
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| env_capacity("VB_TRACE_THREAD_CAPACITY", 16 * 1024))
    }

    fn global_capacity() -> usize {
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| env_capacity("VB_TRACE_CAPACITY", 1 << 20))
    }

    fn collector() -> &'static Mutex<Vec<TraceEvent>> {
        static COLLECTOR: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
        COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
    }

    static DROPPED: AtomicU64 = AtomicU64::new(0);

    /// Number of trace events discarded because the global collector was
    /// full. Zero for paper-sized runs at the default capacity; a
    /// non-zero value means the timeline has holes and `VB_TRACE_CAPACITY`
    /// should be raised.
    pub fn trace_drops() -> u64 {
        DROPPED.load(Ordering::Relaxed)
    }

    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
        static ADOPTED: Cell<u64> = const { Cell::new(0) };
        static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        static BUF: RefCell<Vec<TraceEvent>> = const { RefCell::new(Vec::new()) };
    }

    fn tid() -> u64 {
        TID.with(|t| {
            let mut v = t.get();
            if v == 0 {
                static NEXT_TID: AtomicU64 = AtomicU64::new(1);
                v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
                t.set(v);
            }
            v
        })
    }

    fn push(ev: TraceEvent) {
        BUF.with(|b| {
            let mut buf = b.borrow_mut();
            buf.push(ev);
            if buf.len() >= thread_capacity() {
                flush_buf(&mut buf);
            }
        });
    }

    fn flush_buf(buf: &mut Vec<TraceEvent>) {
        if buf.is_empty() {
            return;
        }
        let mut global = lock_or_recover(collector());
        let room = global_capacity().saturating_sub(global.len());
        if room >= buf.len() {
            global.append(buf);
        } else {
            let overflow = (buf.len() - room) as u64;
            global.extend(buf.drain(..room));
            DROPPED.fetch_add(overflow, Ordering::Relaxed);
            buf.clear();
        }
    }

    /// Flush this thread's private buffer into the global collector.
    /// Called when the thread's outermost span closes and by
    /// [`trace_events`].
    pub(crate) fn flush_thread() {
        BUF.with(|b| flush_buf(&mut b.borrow_mut()));
    }

    /// Record a span opening. Returns the span id to hand back to
    /// [`end_span`], or 0 when recording is disabled.
    pub(crate) fn begin_span(name: &'static str) -> u64 {
        if !trace_enabled() {
            return 0;
        }
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN
            .with(|s| s.borrow().last().copied())
            .unwrap_or_else(|| ADOPTED.with(Cell::get));
        push(TraceEvent {
            phase: TracePhase::Begin,
            id,
            parent,
            tid: tid(),
            ts_ns: now_ns(),
            name,
        });
        OPEN.with(|s| s.borrow_mut().push(id));
        id
    }

    /// Record a span closing. `id` 0 (recording was off at open) is a
    /// no-op so Begin/End records always pair up.
    pub(crate) fn end_span(id: u64, name: &'static str) {
        if id == 0 {
            return;
        }
        OPEN.with(|s| {
            let mut open = s.borrow_mut();
            // RAII guards close innermost-first; search from the top in
            // case a guard was leaked and drop everything above it.
            if let Some(pos) = open.iter().rposition(|&v| v == id) {
                open.truncate(pos);
            }
        });
        push(TraceEvent {
            phase: TracePhase::End,
            id,
            parent: 0,
            tid: tid(),
            ts_ns: now_ns(),
            name,
        });
    }

    /// Capture the calling thread's innermost open span as a parent link
    /// for spans opened on another thread.
    pub fn trace_context() -> TraceContext {
        let parent = OPEN
            .with(|s| s.borrow().last().copied())
            .unwrap_or_else(|| ADOPTED.with(Cell::get));
        TraceContext { parent }
    }

    /// Guard restoring the previously adopted context on drop.
    #[must_use = "the adopted context lasts only while the guard lives"]
    #[derive(Debug)]
    pub struct TraceAdoptGuard {
        prev: u64,
    }

    /// Install `ctx` as the parent for root spans this thread opens while
    /// the returned guard lives. Dropping the guard restores the previous
    /// context and flushes the thread's trace buffer (worker threads
    /// usually exit right after).
    pub fn adopt_trace(ctx: TraceContext) -> TraceAdoptGuard {
        let prev = ADOPTED.with(|a| a.replace(ctx.parent));
        TraceAdoptGuard { prev }
    }

    impl Drop for TraceAdoptGuard {
        fn drop(&mut self) {
            ADOPTED.with(|a| a.set(self.prev));
            flush_thread();
        }
    }

    /// Drain every collected trace event (flushing the calling thread's
    /// buffer first). Buffers of other threads that still have open
    /// spans are not visible — drain from the thread that owns the run,
    /// after its fan-outs have joined.
    pub fn trace_events() -> Vec<TraceEvent> {
        flush_thread();
        std::mem::take(&mut *lock_or_recover(collector()))
    }

    /// Clear collected events, the calling thread's buffer, and the drop
    /// counter (span ids keep incrementing so ids stay process-unique).
    pub(crate) fn reset_trace() {
        BUF.with(|b| b.borrow_mut().clear());
        lock_or_recover(collector()).clear();
        DROPPED.store(0, Ordering::Relaxed);
    }
}

#[cfg(feature = "telemetry")]
pub use imp::{
    adopt_trace, set_trace_enabled, trace_context, trace_drops, trace_enabled, trace_events,
    TraceAdoptGuard,
};
#[cfg(feature = "telemetry")]
pub(crate) use imp::{begin_span, end_span, flush_thread, reset_trace};

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::{TraceContext, TraceEvent};

    #[inline(always)]
    pub fn set_trace_enabled(_on: bool) {}

    #[inline(always)]
    pub fn trace_enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn trace_drops() -> u64 {
        0
    }

    #[inline(always)]
    pub fn trace_context() -> TraceContext {
        TraceContext::default()
    }

    /// No-op adopt guard.
    #[must_use = "the adopted context lasts only while the guard lives"]
    #[derive(Debug)]
    pub struct TraceAdoptGuard;

    #[inline(always)]
    pub fn adopt_trace(_ctx: TraceContext) -> TraceAdoptGuard {
        TraceAdoptGuard
    }

    /// Always empty when telemetry is compiled out.
    #[inline]
    pub fn trace_events() -> Vec<TraceEvent> {
        Vec::new()
    }
}

#[cfg(not(feature = "telemetry"))]
pub use imp::{
    adopt_trace, set_trace_enabled, trace_context, trace_drops, trace_enabled, trace_events,
    TraceAdoptGuard,
};

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    // Trace state is process-global; one test fn avoids cross-test races.
    #[test]
    fn spans_nest_adopt_and_export() {
        reset_trace();
        set_trace_enabled(true);

        let outer_id;
        {
            let _outer = crate::span!("trace.test_outer");
            outer_id = trace_context().parent;
            assert_ne!(outer_id, 0, "open span must be the context parent");
            {
                let _inner = crate::span!("trace.test_inner");
            }
            let ctx = trace_context();
            let handle = std::thread::spawn(move || {
                let _adopt = adopt_trace(ctx);
                let _w = crate::span!("trace.test_worker");
            });
            handle.join().expect("worker");
        }

        let events = trace_events();
        let begins: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.phase == TracePhase::Begin)
            .collect();
        let ends = events.iter().filter(|e| e.phase == TracePhase::End).count();
        assert_eq!(begins.len(), 3);
        assert_eq!(ends, 3, "every span closed");

        let by_name = |n: &str| {
            begins
                .iter()
                .find(|e| e.name == n)
                .unwrap_or_else(|| panic!("missing span {n}"))
        };
        let outer = by_name("trace.test_outer");
        let inner = by_name("trace.test_inner");
        let worker = by_name("trace.test_worker");
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.id, outer_id);
        assert_eq!(inner.parent, outer.id, "nested span links to parent");
        assert_eq!(
            worker.parent, outer.id,
            "adopted context parents cross-thread spans"
        );
        assert_ne!(worker.tid, outer.tid);
        assert_eq!(trace_drops(), 0);

        // Export is a valid JSON array with B/E phases and µs timestamps.
        let json = chrome_trace_json(&events);
        let doc = crate::Json::parse(&json).expect("chrome trace parses");
        let crate::Json::Arr(items) = doc else {
            panic!("trace export must be a JSON array");
        };
        assert_eq!(items.len(), 6);
        for item in &items {
            let ph = item.get("ph").and_then(crate::Json::as_str).expect("ph");
            assert!(ph == "B" || ph == "E");
            assert!(item.get("ts").and_then(crate::Json::as_f64).is_some());
        }

        // Disabled recording emits nothing.
        set_trace_enabled(false);
        {
            let _off = crate::span!("trace.test_disabled");
        }
        assert!(trace_events().is_empty());
        set_trace_enabled(true);
        reset_trace();
    }
}
