//! Property tests for the site graph, clique enumeration and link model.

use proptest::prelude::*;
use vb_net::{k_cliques, maximal_cliques, LinkSimulator, SiteGraph, WanModel};
use vb_trace::Site;

fn arb_sites(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Site>> {
    proptest::collection::vec((36.0..66.0f64, -10.0..26.0f64), n).prop_map(|coords| {
        coords
            .into_iter()
            .enumerate()
            .map(|(i, (lat, lon))| {
                if i % 2 == 0 {
                    Site::solar(&format!("s{i}"), lat, lon)
                } else {
                    Site::wind(&format!("w{i}"), lat, lon)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adjacency_is_symmetric_and_irreflexive(sites in arb_sites(2..12), thr in 5.0..60.0f64) {
        let g = SiteGraph::build(sites, thr);
        for i in 0..g.len() {
            prop_assert!(!g.is_edge(i, i));
            for j in 0..g.len() {
                prop_assert_eq!(g.is_edge(i, j), g.is_edge(j, i));
                if g.is_edge(i, j) {
                    prop_assert!(g.rtt_ms(i, j) < thr);
                }
            }
        }
    }

    #[test]
    fn every_k_clique_is_a_clique_and_unique(sites in arb_sites(3..12), k in 2usize..5) {
        let g = SiteGraph::build(sites, 40.0);
        let cliques = k_cliques(&g, k);
        let mut seen = std::collections::HashSet::new();
        for c in &cliques {
            prop_assert_eq!(c.len(), k);
            prop_assert!(g.is_clique(c));
            prop_assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted");
            prop_assert!(seen.insert(c.clone()), "duplicate clique {c:?}");
        }
    }

    #[test]
    fn clique_counts_are_consistent_across_k(sites in arb_sites(4..10)) {
        // Every (k+1)-clique contains k+1 distinct k-cliques, so the
        // count can't jump from zero.
        let g = SiteGraph::build(sites, 40.0);
        for k in 2..4 {
            let small = k_cliques(&g, k).len();
            let big = k_cliques(&g, k + 1).len();
            if big > 0 {
                prop_assert!(small > 0, "a {}-clique implies {}-cliques", k + 1, k);
            }
        }
    }

    #[test]
    fn maximal_cliques_cover_every_vertex(sites in arb_sites(2..10)) {
        let g = SiteGraph::build(sites, 40.0);
        let cliques = maximal_cliques(&g);
        let mut covered = vec![false; g.len()];
        for c in &cliques {
            prop_assert!(g.is_clique(c));
            for &v in c {
                covered[v] = true;
            }
            // Maximality: no vertex outside extends the clique.
            for v in 0..g.len() {
                if !c.contains(&v) {
                    let extends = c.iter().all(|&u| g.is_edge(u, v));
                    prop_assert!(!extends, "clique {c:?} extendable by {v}");
                }
            }
        }
        prop_assert!(covered.iter().all(|&b| b), "isolated vertices are maximal 1-cliques");
    }

    #[test]
    fn diameter_bounds_member_rtts(sites in arb_sites(3..10)) {
        let g = SiteGraph::build(sites, 45.0);
        for c in k_cliques(&g, 3) {
            let d = g.diameter_ms(&c);
            for (a, &i) in c.iter().enumerate() {
                for &j in &c[a + 1..] {
                    prop_assert!(g.rtt_ms(i, j) <= d + 1e-9);
                }
            }
            prop_assert!(d < 45.0);
        }
    }

    #[test]
    fn link_drains_everything_eventually(
        bursts in proptest::collection::vec(0.0..30_000.0f64, 1..30),
        gbps in 50.0..400.0f64,
    ) {
        let mut link = LinkSimulator::new(gbps, 900.0);
        link.run(&bursts);
        // Idle long enough: backlog must reach zero.
        let total: f64 = bursts.iter().sum();
        let intervals_needed = (total / link.capacity_gb()).ceil() as usize + 1;
        for _ in 0..intervals_needed {
            link.step(0.0);
        }
        prop_assert!(link.backlog_gb() < 1e-6, "backlog {}", link.backlog_gb());
    }

    #[test]
    fn busy_fraction_stays_in_unit_interval(
        volumes in proptest::collection::vec(0.0..100_000.0f64, 0..40),
        interval in 1.0..3_600.0f64,
        gbps in 10.0..1_000.0f64,
    ) {
        let wan = WanModel { site_link_gbps: gbps, ..WanModel::default() };
        let frac = wan.busy_fraction(&volumes, interval);
        prop_assert!((0.0..=1.0).contains(&frac), "fraction {frac} out of [0,1]");
        prop_assert!(frac.is_finite());
    }

    #[test]
    fn busy_profile_conserves_drain_seconds(
        volumes in proptest::collection::vec(0.0..100_000.0f64, 1..40),
        interval in 1.0..3_600.0f64,
    ) {
        let wan = WanModel::default();
        let (busy, leftover) = wan.busy_profile(&volumes, interval);
        prop_assert_eq!(busy.len(), volumes.len());
        let total_drain: f64 = volumes.iter().map(|&gb| wan.drain_secs(gb)).sum();
        let accounted: f64 = busy.iter().sum::<f64>() + leftover;
        prop_assert!(
            (accounted - total_drain).abs() < 1e-6 * total_drain.max(1.0),
            "busy+leftover {accounted} != drain {total_drain}"
        );
        prop_assert!(leftover >= 0.0);
        for &b in &busy {
            prop_assert!((0.0..=interval + 1e-9).contains(&b));
        }
    }

    #[test]
    fn busy_fraction_never_below_old_clamped_estimate(
        volumes in proptest::collection::vec(0.0..100_000.0f64, 1..40),
        interval in 1.0..3_600.0f64,
    ) {
        // The carry-over fix can only *increase* the busy estimate: the
        // old per-interval clamp discarded excess drain work.
        let wan = WanModel::default();
        let clamped: f64 = volumes
            .iter()
            .map(|&gb| wan.drain_secs(gb).min(interval))
            .sum::<f64>()
            / (volumes.len() as f64 * interval);
        let carried = wan.busy_fraction(&volumes, interval);
        prop_assert!(carried >= clamped - 1e-12, "carried {carried} < clamped {clamped}");
    }
}
