//! Store-and-forward link simulator.
//!
//! Migration bursts are spiky (Fig 4a); a finite WAN link drains them
//! over time, building a backlog when a burst exceeds the link's
//! per-interval capacity. This simulator quantifies completion latency
//! and backlog so the scheduler's burst-smoothing benefit (MIP-peak,
//! §3.1) can be expressed in seconds of transfer delay rather than only
//! in bytes.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One pending transfer on the link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Transfer {
    /// Remaining volume, GB.
    remaining_gb: f64,
    /// Interval index at which the transfer was enqueued.
    enqueued_at: u64,
}

/// Per-interval link telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Interval index.
    pub interval: u64,
    /// GB drained this interval.
    pub drained_gb: f64,
    /// Backlog remaining after the interval, GB.
    pub backlog_gb: f64,
    /// Link utilization this interval in [0, 1].
    pub utilization: f64,
    /// Number of transfers completed this interval.
    pub completed: usize,
    /// Worst queueing delay (in intervals) among transfers completed
    /// this interval.
    pub worst_delay_intervals: u64,
}

/// A FIFO link with fixed capacity draining queued transfers.
#[derive(Debug, Clone)]
pub struct LinkSimulator {
    capacity_gb_per_interval: f64,
    queue: VecDeque<Transfer>,
    interval: u64,
}

impl LinkSimulator {
    /// A link that can move `gbps` gigabits/s, stepped at
    /// `interval_secs` granularity.
    pub fn new(gbps: f64, interval_secs: f64) -> LinkSimulator {
        assert!(
            gbps > 0.0 && interval_secs > 0.0,
            "capacity must be positive"
        );
        LinkSimulator {
            capacity_gb_per_interval: gbps * interval_secs / 8.0,
            queue: VecDeque::new(),
            interval: 0,
        }
    }

    /// GB the link can move in one interval.
    pub fn capacity_gb(&self) -> f64 {
        self.capacity_gb_per_interval
    }

    /// Current backlog, GB.
    pub fn backlog_gb(&self) -> f64 {
        self.queue.iter().map(|t| t.remaining_gb).sum()
    }

    /// Enqueue a burst and advance one interval, draining FIFO.
    pub fn step(&mut self, offered_gb: f64) -> LinkStats {
        if offered_gb > 0.0 {
            self.queue.push_back(Transfer {
                remaining_gb: offered_gb,
                enqueued_at: self.interval,
            });
        }
        let mut budget = self.capacity_gb_per_interval;
        let mut drained = 0.0;
        let mut completed = 0usize;
        let mut worst_delay = 0u64;
        while budget > 1e-12 {
            let Some(front) = self.queue.front_mut() else {
                break;
            };
            let take = front.remaining_gb.min(budget);
            front.remaining_gb -= take;
            budget -= take;
            drained += take;
            if front.remaining_gb <= 1e-12 {
                worst_delay = worst_delay.max(self.interval - front.enqueued_at);
                completed += 1;
                self.queue.pop_front();
            }
        }
        let stats = LinkStats {
            interval: self.interval,
            drained_gb: drained,
            backlog_gb: self.backlog_gb(),
            utilization: drained / self.capacity_gb_per_interval,
            completed,
            worst_delay_intervals: worst_delay,
        };
        self.interval += 1;
        stats
    }

    /// Run a whole offered-load series through the link.
    pub fn run(&mut self, offered_gb: &[f64]) -> Vec<LinkStats> {
        offered_gb.iter().map(|&gb| self.step(gb)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 200 Gbps at 900 s intervals = 22 500 GB per interval.
    fn link() -> LinkSimulator {
        LinkSimulator::new(200.0, 900.0)
    }

    #[test]
    fn capacity_conversion() {
        assert!((link().capacity_gb() - 22_500.0).abs() < 1e-9);
    }

    #[test]
    fn small_burst_completes_immediately() {
        let mut l = link();
        let s = l.step(1_000.0);
        assert_eq!(s.completed, 1);
        assert_eq!(s.backlog_gb, 0.0);
        assert_eq!(s.worst_delay_intervals, 0);
        assert!((s.utilization - 1_000.0 / 22_500.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_burst_builds_backlog_and_delays() {
        let mut l = link();
        // 50 000 GB needs ~2.2 intervals.
        let s0 = l.step(50_000.0);
        assert_eq!(s0.completed, 0);
        assert!((s0.backlog_gb - 27_500.0).abs() < 1e-9);
        assert!((s0.utilization - 1.0).abs() < 1e-9);
        let s1 = l.step(0.0);
        assert_eq!(s1.completed, 0);
        let s2 = l.step(0.0);
        assert_eq!(s2.completed, 1);
        assert_eq!(s2.worst_delay_intervals, 2);
        assert_eq!(s2.backlog_gb, 0.0);
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut l = link();
        l.step(30_000.0); // backlog 7 500
        let s = l.step(10_000.0); // drains 7 500 + 10 000 = 17 500 < cap
        assert_eq!(s.completed, 2, "both finish this interval");
        assert_eq!(s.worst_delay_intervals, 1, "first waited one interval");
    }

    #[test]
    fn conservation_of_volume() {
        let mut l = link();
        let offered = [40_000.0, 0.0, 10_000.0, 0.0, 0.0, 5_000.0, 0.0];
        let stats = l.run(&offered);
        let drained: f64 = stats.iter().map(|s| s.drained_gb).sum();
        let total: f64 = offered.iter().sum();
        assert!((drained + l.backlog_gb() - total).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        LinkSimulator::new(0.0, 900.0);
    }
}
