//! Subgraph identification (Fig 6, step 1).
//!
//! "First, we find all cliques (fully connected sub-graphs) of a given
//! size k (k = 2 to 5). … Then, for each k, we sort all subgraphs based
//! on the total coefficient of variability."
//!
//! Exact enumeration is fine at fleet scale: the paper's graphs have
//! tens of nodes (ELIA has 25 sites), and enumeration only extends
//! cliques through ascending node ids, so each clique is produced once.
//! A Bron–Kerbosch maximal-clique enumerator is provided as well for
//! callers that want the coarsest grouping.

use crate::graph::SiteGraph;
use vb_stats::{coefficient_of_variation, TimeSeries};

/// Enumerate all cliques of exactly `k` nodes, each sorted ascending.
///
/// # Panics
/// Panics if `k == 0`.
pub fn k_cliques(graph: &SiteGraph, k: usize) -> Vec<Vec<usize>> {
    assert!(k > 0, "k must be positive");
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    extend_cliques(graph, k, 0, &mut current, &mut out);
    out
}

fn extend_cliques(
    graph: &SiteGraph,
    k: usize,
    from: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if current.len() == k {
        out.push(current.clone());
        return;
    }
    // Prune: not enough nodes left to finish the clique.
    let needed = k - current.len();
    if graph.len() < needed || from > graph.len() - needed {
        return;
    }
    for v in from..graph.len() {
        if current.iter().all(|&u| graph.is_edge(u, v)) {
            current.push(v);
            extend_cliques(graph, k, v + 1, current, out);
            current.pop();
        }
    }
}

/// Enumerate all *maximal* cliques (Bron–Kerbosch with pivoting).
pub fn maximal_cliques(graph: &SiteGraph) -> Vec<Vec<usize>> {
    let n = graph.len();
    let mut out = Vec::new();
    let mut r = Vec::new();
    let p: Vec<usize> = (0..n).collect();
    bron_kerbosch(graph, &mut r, p, Vec::new(), &mut out);
    out
}

fn bron_kerbosch(
    graph: &SiteGraph,
    r: &mut Vec<usize>,
    mut p: Vec<usize>,
    mut x: Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        out.push(clique);
        return;
    }
    // Pivot on the vertex of P ∪ X with the most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| graph.is_edge(u, v)).count())
        // vb-audit: allow(no-panic, the p.is_empty() && x.is_empty() early return above makes the chain non-empty)
        .expect("P ∪ X non-empty");
    let candidates: Vec<usize> = p
        .iter()
        .copied()
        .filter(|&v| !graph.is_edge(pivot, v))
        .collect();
    for v in candidates {
        r.push(v);
        let p2 = p.iter().copied().filter(|&u| graph.is_edge(u, v)).collect();
        let x2 = x.iter().copied().filter(|&u| graph.is_edge(u, v)).collect();
        bron_kerbosch(graph, r, p2, x2, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// A clique scored for scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct CliqueScore {
    /// Node ids, ascending.
    pub nodes: Vec<usize>,
    /// Coefficient of variation of the clique's *combined* power (lower
    /// is better: steadier aggregate energy).
    pub cov: f64,
    /// Worst pairwise RTT inside the clique, in ms.
    pub diameter_ms: f64,
}

/// Score and sort cliques by the cov of their combined generation
/// (ascending — steadiest groups first), tie-broken by diameter.
///
/// `traces[i]` must be the generation series of graph node `i` in
/// *absolute* power units (MW), so that combining sites with different
/// capacities weighs them correctly.
///
/// # Panics
/// Panics if `traces.len() != graph.len()` or the traces are misaligned.
pub fn rank_cliques_by_cov(
    graph: &SiteGraph,
    cliques: &[Vec<usize>],
    traces: &[TimeSeries],
) -> Vec<CliqueScore> {
    assert_eq!(graph.len(), traces.len(), "one trace per node");
    // Per-clique scoring (combined series + cov) fans out over cores;
    // chunked claims keep cursor traffic negligible for the thousands of
    // small cliques a k = 4..5 sweep enumerates. The final sort is a
    // stable total order on the deterministic per-index scores, so the
    // ranking is identical at any thread count.
    let mut scored: Vec<CliqueScore> = vb_par::par_map_chunked(cliques.len(), 8, |c| {
        let nodes = &cliques[c];
        let refs: Vec<&TimeSeries> = nodes.iter().map(|&i| &traces[i]).collect();
        let combined = TimeSeries::sum_of(&refs);
        CliqueScore {
            nodes: nodes.clone(),
            cov: coefficient_of_variation(&combined.values),
            diameter_ms: graph.diameter_ms(nodes),
        }
    });
    scored.sort_by(|a, b| {
        a.cov
            .total_cmp(&b.cov)
            .then(a.diameter_ms.total_cmp(&b.diameter_ms))
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use vb_trace::Site;

    /// 4 nearby sites (complete graph) plus one outlier connected to
    /// nothing.
    fn dense_graph() -> SiteGraph {
        let sites = vec![
            Site::wind("a", 50.0, 4.0),
            Site::solar("b", 50.4, 4.4),
            Site::wind("c", 50.8, 3.8),
            Site::solar("d", 50.2, 3.4),
            Site::solar("far", 38.0, 24.0),
        ];
        SiteGraph::build(sites, 20.0)
    }

    #[test]
    fn counts_match_binomials_on_the_complete_part() {
        let g = dense_graph();
        // The 4 nearby sites are fully connected: C(4,k) cliques.
        assert_eq!(k_cliques(&g, 2).len(), 6);
        assert_eq!(k_cliques(&g, 3).len(), 4);
        assert_eq!(k_cliques(&g, 4).len(), 1);
        assert_eq!(k_cliques(&g, 5).len(), 0, "outlier breaks the 5-clique");
    }

    #[test]
    fn k1_cliques_are_the_nodes() {
        let g = dense_graph();
        assert_eq!(k_cliques(&g, 1).len(), g.len());
    }

    #[test]
    fn every_enumerated_clique_is_a_clique() {
        let g = dense_graph();
        for k in 2..=4 {
            for c in k_cliques(&g, k) {
                assert!(g.is_clique(&c), "{c:?} is not a clique");
                assert_eq!(c.len(), k);
                assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            }
        }
    }

    #[test]
    fn maximal_cliques_of_the_dense_graph() {
        let g = dense_graph();
        let mut cliques = maximal_cliques(&g);
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1, 2, 3], vec![4]]);
    }

    #[test]
    fn ranking_prefers_complementary_pairs() {
        let g = dense_graph();
        // Hand-built traces: node 0 and node 1 perfectly complementary
        // (sum constant), node 2 correlated with node 0.
        let mk = |vals: &[f64]| TimeSeries::new(900, vals.to_vec());
        let traces = vec![
            mk(&[1.0, 0.0, 1.0, 0.0]),
            mk(&[0.0, 1.0, 0.0, 1.0]),
            mk(&[1.0, 0.0, 1.0, 0.0]),
            mk(&[0.5, 0.5, 0.5, 0.5]),
            mk(&[0.2, 0.9, 0.1, 0.8]),
        ];
        let pairs = k_cliques(&g, 2);
        let ranked = rank_cliques_by_cov(&g, &pairs, &traces);
        // Best pair must have cov 0: {0,1} (sum constant 1.0) — or
        // {3, anything constant}? node 3 alone is constant but its pairs
        // with 0/1/2 vary; {0,1} is the unique zero-cov pair.
        assert_eq!(ranked[0].nodes, vec![0, 1]);
        assert!(ranked[0].cov < 1e-12);
        // cov must be non-decreasing down the ranking.
        for w in ranked.windows(2) {
            assert!(w[0].cov <= w[1].cov + 1e-12);
        }
    }

    #[test]
    fn ranking_reports_diameters() {
        let g = dense_graph();
        let traces: Vec<TimeSeries> = (0..5)
            .map(|i| TimeSeries::new(900, vec![i as f64 + 1.0; 4]))
            .collect();
        let ranked = rank_cliques_by_cov(&g, &k_cliques(&g, 2), &traces);
        for s in &ranked {
            assert!(s.diameter_ms > 0.0);
            assert!(s.diameter_ms < 20.0, "edges respect the threshold");
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn k0_panics() {
        k_cliques(&dense_graph(), 0);
    }
}
