//! The latency-thresholded VB site graph (Fig 6's input graph).

use serde::{Deserialize, Serialize};
use vb_trace::Site;

/// The paper's multi-VB proximity threshold: 50 ms RTT.
pub const DEFAULT_LATENCY_THRESHOLD_MS: f64 = 50.0;

/// An undirected graph over VB sites with edges between pairs whose RTT
/// is below a threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteGraph {
    sites: Vec<Site>,
    /// Dense symmetric adjacency, `adj[i][j] == true` iff edge (i, j).
    adj: Vec<Vec<bool>>,
    /// Pairwise RTT matrix in ms.
    rtt: Vec<Vec<f64>>,
    threshold_ms: f64,
}

impl SiteGraph {
    /// Build the graph from sites using the geographic latency model and
    /// the given RTT threshold in milliseconds.
    pub fn build(sites: Vec<Site>, threshold_ms: f64) -> SiteGraph {
        let n = sites.len();
        let mut adj = vec![vec![false; n]; n];
        let mut rtt = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let ms = sites[i].rtt_ms(&sites[j]);
                rtt[i][j] = ms;
                rtt[j][i] = ms;
                let edge = ms < threshold_ms;
                adj[i][j] = edge;
                adj[j][i] = edge;
            }
        }
        SiteGraph {
            sites,
            adj,
            rtt,
            threshold_ms,
        }
    }

    /// Build with the paper's 50 ms threshold.
    pub fn with_default_threshold(sites: Vec<Site>) -> SiteGraph {
        SiteGraph::build(sites, DEFAULT_LATENCY_THRESHOLD_MS)
    }

    /// Number of sites (nodes).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The sites, indexed by node id.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// The site at a node.
    pub fn site(&self, i: usize) -> &Site {
        &self.sites[i]
    }

    /// The RTT threshold used to build the graph.
    pub fn threshold_ms(&self) -> f64 {
        self.threshold_ms
    }

    /// Is there an edge between nodes `i` and `j`?
    pub fn is_edge(&self, i: usize, j: usize) -> bool {
        self.adj[i][j]
    }

    /// RTT between two nodes in milliseconds.
    pub fn rtt_ms(&self, i: usize, j: usize) -> f64 {
        self.rtt[i][j]
    }

    /// Neighbors of node `i` in ascending order.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        (0..self.len()).filter(|&j| self.adj[i][j]).collect()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        let mut count = 0;
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                if self.adj[i][j] {
                    count += 1;
                }
            }
        }
        count
    }

    /// Do the given nodes form a clique (pairwise connected)?
    pub fn is_clique(&self, nodes: &[usize]) -> bool {
        for (a, &i) in nodes.iter().enumerate() {
            for &j in &nodes[a + 1..] {
                if !self.adj[i][j] {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum RTT between any pair in a node set — the latency an
    /// application split across those sites would experience.
    pub fn diameter_ms(&self, nodes: &[usize]) -> f64 {
        let mut worst: f64 = 0.0;
        for (a, &i) in nodes.iter().enumerate() {
            for &j in &nodes[a + 1..] {
                worst = worst.max(self.rtt[i][j]);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_outlier() -> SiteGraph {
        // Three nearby sites and one across the continent.
        let sites = vec![
            Site::wind("a", 50.0, 4.0),
            Site::solar("b", 50.5, 4.5),
            Site::wind("c", 51.0, 3.5),
            Site::solar("far", 38.0, 24.0), // Greece: ~2 300 km away
        ];
        SiteGraph::build(sites, 20.0)
    }

    #[test]
    fn edges_respect_the_threshold() {
        let g = triangle_plus_outlier();
        assert!(g.is_edge(0, 1));
        assert!(g.is_edge(1, 2));
        assert!(g.is_edge(0, 2));
        assert!(!g.is_edge(0, 3), "the outlier exceeds the threshold");
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let g = triangle_plus_outlier();
        for i in 0..g.len() {
            assert!(!g.is_edge(i, i));
            for j in 0..g.len() {
                assert_eq!(g.is_edge(i, j), g.is_edge(j, i));
            }
        }
    }

    #[test]
    fn neighbors_and_cliques() {
        let g = triangle_plus_outlier();
        assert_eq!(g.neighbors(0), vec![1, 2]);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[2]), "singletons are trivially cliques");
        assert!(g.is_clique(&[]), "the empty set is trivially a clique");
    }

    #[test]
    fn diameter_is_the_worst_pairwise_rtt() {
        let g = triangle_plus_outlier();
        let d = g.diameter_ms(&[0, 1, 2]);
        assert!(d > 0.0 && d < 20.0);
        assert!(g.diameter_ms(&[0, 3]) > d);
        assert_eq!(g.diameter_ms(&[1]), 0.0);
    }

    #[test]
    fn default_threshold_is_50ms() {
        let g = SiteGraph::with_default_threshold(vec![
            Site::wind("a", 50.0, 4.0),
            Site::wind("b", 52.0, 0.0),
        ]);
        assert_eq!(g.threshold_ms(), 50.0);
        assert!(g.is_edge(0, 1), "London–Brussels scale is well under 50 ms");
    }
}
