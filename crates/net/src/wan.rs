//! WAN capacity accounting.
//!
//! The paper sizes the networking problem with two back-of-envelope
//! arguments that this module turns into code:
//!
//! * §3: "if the migration is to complete within 5 minutes, then a
//!   10 terabyte spike requires ≈200 Gbps network capacity for a single
//!   site. This is roughly 40 % of the share of WAN capacity per site,
//!   assuming ≈100 sites (each with 1000 servers) share an aggregate WAN
//!   link with 50 terabits/sec capacity."
//! * §5: "migration occurs only 2-4 % of the time assuming 200 Gbps WAN
//!   link per VB site."

use serde::{Deserialize, Serialize};

/// Gigabytes → gigabits.
const GBIT_PER_GBYTE: f64 = 8.0;

/// Per-site WAN model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WanModel {
    /// Provisioned per-site WAN link capacity in Gbps (paper: 200).
    pub site_link_gbps: f64,
    /// Aggregate WAN capacity shared by the fleet, in Gbps
    /// (paper: 50 Tbps = 50 000 Gbps, after B4).
    pub aggregate_gbps: f64,
    /// Number of sites sharing the aggregate (paper: ≈100).
    pub n_sites: usize,
    /// Deadline within which a migration burst must complete, seconds
    /// (paper: 5 minutes).
    pub migration_deadline_secs: f64,
}

impl Default for WanModel {
    fn default() -> WanModel {
        WanModel {
            site_link_gbps: 200.0,
            aggregate_gbps: 50_000.0,
            n_sites: 100,
            migration_deadline_secs: 300.0,
        }
    }
}

impl WanModel {
    /// Fair share of the aggregate WAN per site, in Gbps. A fleet of
    /// zero sites has no share.
    pub fn per_site_share_gbps(&self) -> f64 {
        if self.n_sites == 0 {
            return 0.0;
        }
        self.aggregate_gbps / self.n_sites as f64
    }

    /// Capacity needed to move `gb` within the migration deadline, Gbps.
    /// A non-positive (or NaN) deadline means the burst cannot complete
    /// at any finite rate; report zero rather than ±inf/NaN.
    pub fn required_gbps(&self, gb: f64) -> f64 {
        if self.migration_deadline_secs.is_nan() || self.migration_deadline_secs <= 0.0 {
            return 0.0;
        }
        gb * GBIT_PER_GBYTE / self.migration_deadline_secs
    }

    /// The required capacity for a burst as a fraction of the per-site
    /// share of the aggregate WAN (the paper's "roughly 40 %" figure for
    /// a 10 TB spike). Returns 0.0 when the share itself is degenerate.
    pub fn share_fraction(&self, gb: f64) -> f64 {
        let share = self.per_site_share_gbps();
        if share.is_nan() || share <= 0.0 {
            return 0.0;
        }
        self.required_gbps(gb) / share
    }

    /// Seconds needed to drain `gb` over the provisioned site link. A
    /// non-positive (or NaN) link rate can never drain anything.
    pub fn drain_secs(&self, gb: f64) -> f64 {
        if gb <= 0.0 || self.site_link_gbps.is_nan() || self.site_link_gbps <= 0.0 {
            0.0
        } else {
            gb * GBIT_PER_GBYTE / self.site_link_gbps
        }
    }

    /// Per-interval busy seconds with backlog carry-over, plus the
    /// backlog (in seconds of drain) still queued after the last
    /// interval.
    ///
    /// A burst whose drain time exceeds `interval_secs` keeps the link
    /// busy into the *following* intervals rather than silently
    /// vanishing at the interval boundary: each interval's unfinished
    /// drain work carries forward as backlog. Conservation holds:
    /// Σ busy + leftover == Σ drain_secs (up to float rounding).
    pub fn busy_profile(&self, gb_per_interval: &[f64], interval_secs: f64) -> (Vec<f64>, f64) {
        let mut busy = Vec::with_capacity(gb_per_interval.len());
        let mut backlog = 0.0_f64;
        for &gb in gb_per_interval {
            backlog += self.drain_secs(gb);
            let drained = backlog.min(interval_secs);
            busy.push(drained);
            backlog -= drained;
        }
        (busy, backlog)
    }

    /// Fraction of wall-clock time the site link is busy migrating,
    /// given per-interval migration volumes (GB per `interval_secs`).
    /// This is the §5 "2-4 % of the time" statistic.
    ///
    /// Bursts too large to drain within their own interval stay busy in
    /// subsequent intervals (see [`busy_profile`](Self::busy_profile));
    /// only backlog outstanding *after the last interval* is excluded,
    /// since the observation window ends there. Returns 0.0 for an empty
    /// series or a non-positive (or NaN) `interval_secs`.
    pub fn busy_fraction(&self, gb_per_interval: &[f64], interval_secs: f64) -> f64 {
        if gb_per_interval.is_empty() || interval_secs.is_nan() || interval_secs <= 0.0 {
            return 0.0;
        }
        let (busy, _leftover) = self.busy_profile(gb_per_interval, interval_secs);
        let total_busy: f64 = busy.iter().sum();
        // Each interval's busy time is ≤ interval_secs, but summation
        // rounding can push the ratio a couple of ulps past 1.0.
        let fraction = (total_busy / (gb_per_interval.len() as f64 * interval_secs)).min(1.0);
        vb_telemetry::gauge!("net.wan_busy_fraction").set(fraction);
        fraction
    }

    /// Peak link utilization over a series of per-interval volumes: the
    /// largest fraction of the interval the link would need to run at
    /// full rate (can exceed 1.0 when the link is overwhelmed). Returns
    /// 0.0 for a non-positive (or NaN) `interval_secs`.
    pub fn peak_utilization(&self, gb_per_interval: &[f64], interval_secs: f64) -> f64 {
        if interval_secs.is_nan() || interval_secs <= 0.0 {
            return 0.0;
        }
        let peak = gb_per_interval
            .iter()
            .map(|&gb| self.drain_secs(gb) / interval_secs)
            .fold(0.0, f64::max);
        vb_telemetry::gauge!("net.wan_peak_utilization").set(peak);
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        let wan = WanModel::default();
        // 10 TB in 5 minutes ≈ 267 Gbps — the paper rounds to ≈200 Gbps.
        let gbps = wan.required_gbps(10_000.0);
        assert!((200.0..300.0).contains(&gbps), "got {gbps}");
        // Per-site share of 50 Tbps over 100 sites = 500 Gbps; a 10 TB
        // spike needs ~40-55% of it (paper: "roughly 40%").
        assert_eq!(wan.per_site_share_gbps(), 500.0);
        let frac = wan.share_fraction(10_000.0);
        assert!((0.35..0.6).contains(&frac), "got {frac}");
    }

    #[test]
    fn drain_time_scales_linearly() {
        let wan = WanModel::default();
        assert_eq!(wan.drain_secs(0.0), 0.0);
        // 200 Gbps moves 25 GB/s.
        assert!((wan.drain_secs(25.0) - 1.0).abs() < 1e-9);
        assert!((wan.drain_secs(2_500.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn busy_fraction_counts_drain_time() {
        let wan = WanModel::default();
        // One 2 500 GB burst (100 s of drain) in four 900 s intervals.
        let frac = wan.busy_fraction(&[2_500.0, 0.0, 0.0, 0.0], 900.0);
        assert!((frac - 100.0 / 3_600.0).abs() < 1e-9);
        assert_eq!(wan.busy_fraction(&[], 900.0), 0.0);
    }

    #[test]
    fn busy_fraction_saturates_per_interval() {
        let wan = WanModel::default();
        // A burst too big to drain within the whole series keeps the
        // link busy 100% of the observed window.
        let huge = 1e9;
        assert!((wan.busy_fraction(&[huge], 900.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_fraction_carries_backlog_into_later_intervals() {
        let wan = WanModel::default();
        // 45 000 GB = 1 800 s of drain at 200 Gbps. In 900 s intervals
        // that is two full intervals of work: the old per-interval clamp
        // reported 900/3600 = 0.25; with carry the link is busy for
        // 1 800/3 600 = 0.5 of the window.
        let frac = wan.busy_fraction(&[45_000.0, 0.0, 0.0, 0.0], 900.0);
        assert!((frac - 0.5).abs() < 1e-9, "got {frac}");
        // Overlapping bursts stack rather than vanish at boundaries.
        let frac = wan.busy_fraction(&[45_000.0, 45_000.0, 0.0, 0.0], 900.0);
        assert!((frac - 1.0).abs() < 1e-9, "got {frac}");
    }

    #[test]
    fn busy_profile_conserves_drain_time() {
        let wan = WanModel::default();
        let volumes = [45_000.0, 100.0, 0.0, 30_000.0];
        let (busy, leftover) = wan.busy_profile(&volumes, 900.0);
        let total_drain: f64 = volumes.iter().map(|&gb| wan.drain_secs(gb)).sum();
        let accounted: f64 = busy.iter().sum::<f64>() + leftover;
        assert!((accounted - total_drain).abs() < 1e-6);
        for &b in &busy {
            assert!((0.0..=900.0).contains(&b));
        }
    }

    #[test]
    fn degenerate_intervals_return_zero_not_nan() {
        let wan = WanModel::default();
        for secs in [0.0, -900.0, f64::NAN] {
            assert_eq!(wan.busy_fraction(&[100.0], secs), 0.0);
            assert_eq!(wan.peak_utilization(&[100.0], secs), 0.0);
        }
    }

    #[test]
    fn degenerate_models_return_zero_not_nan() {
        let zero_sites = WanModel {
            n_sites: 0,
            ..WanModel::default()
        };
        assert_eq!(zero_sites.per_site_share_gbps(), 0.0);
        assert_eq!(zero_sites.share_fraction(10_000.0), 0.0);
        for bad in [0.0, -5.0, f64::NAN] {
            let wan = WanModel {
                migration_deadline_secs: bad,
                ..WanModel::default()
            };
            assert_eq!(wan.required_gbps(10_000.0), 0.0);
            let wan = WanModel {
                site_link_gbps: bad,
                ..WanModel::default()
            };
            assert_eq!(wan.drain_secs(100.0), 0.0);
            let wan = WanModel {
                aggregate_gbps: bad,
                ..WanModel::default()
            };
            assert_eq!(wan.share_fraction(10_000.0), 0.0);
        }
    }

    #[test]
    fn peak_utilization_reports_overload() {
        let wan = WanModel::default();
        // 900 s at 200 Gbps = 22 500 GB per interval at full blast.
        assert!((wan.peak_utilization(&[22_500.0], 900.0) - 1.0).abs() < 1e-9);
        assert!(wan.peak_utilization(&[45_000.0], 900.0) > 1.9);
        assert_eq!(wan.peak_utilization(&[], 900.0), 0.0);
    }
}
