#![warn(missing_docs)]

//! # vb-net — the multi-VB network substrate
//!
//! §3.1 of the paper models the fleet of VB sites as a graph: "Each node
//! represents a VB site … Two nodes are connected via an edge if their
//! latency is below a fixed threshold, 50 ms in our case", and the first
//! scheduling step finds low-latency, complementary site groups as
//! *k-cliques* of that graph (k = 2..5).
//!
//! This crate provides:
//!
//! * [`graph`] — the latency-thresholded site graph.
//! * [`clique`] — exact k-clique enumeration plus coefficient-of-
//!   variation ranking of cliques (subgraph identification, Fig 6 step 1).
//! * [`wan`] — the WAN-capacity model behind the paper's headroom
//!   arguments: "a 10 terabyte spike requires ≈200 Gbps network capacity
//!   … roughly 40 % of the share of WAN capacity per site" (§3) and
//!   "migration occurs only 2–4 % of the time assuming 200 Gbps WAN link
//!   per VB site" (§5).
//! * [`flow`] — a store-and-forward transfer simulator for migration
//!   bursts over a constrained link (backlog, completion latency).

pub mod clique;
pub mod flow;
pub mod graph;
pub mod wan;

pub use clique::{k_cliques, maximal_cliques, rank_cliques_by_cov, CliqueScore};
pub use flow::LinkSimulator;
pub use graph::SiteGraph;
pub use wan::WanModel;
