//! Scanner and token-stream edge cases: multi-line raw strings with
//! `#` guards, nested block comments, and lifetime-vs-char-literal
//! disambiguation — the places a column-preserving hand lexer is most
//! likely to lose sync.

use vb_audit::scanner::scan;
use vb_audit::tokens::{tokenize, TokKind};

#[test]
fn raw_string_with_hash_guards_spans_lines() {
    // Everything between r##" and "## is string content — including
    // the bare `"#` on the middle line, a would-be closer for a
    // single-guard raw string, and a lint-looking `.unwrap()`.
    let src = "let q = r##\"first\nmid \"# .unwrap() still inside\nlast\"##;\nlet after = 1;\n";
    let scanned = scan(src);
    assert_eq!(scanned.lines.len(), 4);
    assert!(
        !scanned.lines[1].code.contains("unwrap"),
        "raw-string content is blanked in the code view: {:?}",
        scanned.lines[1].code
    );
    assert!(
        scanned.lines[1].with_strings.contains("unwrap"),
        "…but preserved in the string view"
    );
    assert!(
        scanned.lines[3].code.contains("let after = 1;"),
        "the scanner resumes code state after the \"## closer: {:?}",
        scanned.lines[3].code
    );
    // Column preservation: the blanked view keeps every line's width.
    for (line, src_line) in scanned.lines.iter().zip(src.lines()) {
        assert_eq!(line.code.chars().count(), src_line.chars().count());
    }
}

#[test]
fn nested_block_comments_strip_to_the_outer_close() {
    let src = "let a = 1; /* outer /* inner */ still comment */ let b = 2;\nlet c = 3; /* open /* deep */\nstill open */ let d = 4;\n";
    let scanned = scan(src);
    assert!(scanned.lines[0].code.contains("let a = 1;"));
    assert!(
        scanned.lines[0].code.contains("let b = 2;"),
        "code after the outer close survives: {:?}",
        scanned.lines[0].code
    );
    assert!(
        !scanned.lines[0].code.contains("still comment"),
        "the inner */ does not end the outer comment"
    );
    assert!(
        !scanned.lines[2].code.contains("still open"),
        "a block comment left open carries across lines"
    );
    assert!(
        scanned.lines[2].code.contains("let d = 4;"),
        "code resumes after the multi-line close: {:?}",
        scanned.lines[2].code
    );
}

#[test]
fn lifetimes_and_char_literals_tokenize_apart() {
    let src = "fn f<'a>(x: &'a str) -> char {\n    let c = 'x';\n    let quote = '\"';\n    let escaped = '\\'';\n    c\n}\n";
    let scanned = scan(src);
    let toks = tokenize(&scanned);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"], "only the lifetimes, not chars");
    // Char contents are blanked like strings, so none of x / " / the
    // escaped quote leak into the token stream as identifiers.
    assert!(
        !toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "x" && t.line == 2),
        "char literal content must not tokenize"
    );
    // The double quote inside a char literal must not open a string:
    // the following line still tokenizes normally.
    assert!(
        toks.iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "escaped" && t.line == 4),
        "scanner stays in code state after '\"' char literal"
    );
}

#[test]
fn directive_inside_raw_string_is_not_an_allow() {
    // A directive-shaped substring inside a raw string is content, not
    // a suppression.
    let src = "let doc = r#\"// vb-audit: allow(no-panic, not a directive)\"#;\n";
    let scanned = scan(src);
    assert_eq!(scanned.allows.len(), 0, "{:?}", scanned.allows);
    assert_eq!(scanned.errors.len(), 0, "{:?}", scanned.errors);
}
