//! Negative fixture: fallible code, allowed panics, test-module panics,
//! and identifiers that merely contain the token (`unwrap_or`).

pub fn first(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap_or(0.0)
}

pub fn checked(xs: &[f64]) -> Option<f64> {
    // The string below must not trip the lint: "call .unwrap() freely".
    xs.first().copied()
}

pub fn pivot(xs: &[f64]) -> f64 {
    xs[0]
        .partial_cmp(&1.0) // vb-audit: allow(float-cmp, fixture exercises inline suppression)
        .map(|_| xs[0])
        // vb-audit: allow(no-panic, Some by the match arm guard)
        .unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let xs = [1.0f64];
        assert_eq!(*xs.first().unwrap(), 1.0);
    }
}
