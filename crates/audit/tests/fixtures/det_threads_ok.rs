//! thread-derived negative: a parallelism probe in a helper the entry
//! points never reach (partitioning, not result logic).

pub fn probe_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
