//! thread-derived positive: worker counts influencing results inside
//! `GroupSim::step`.

pub struct GroupSim {
    shard: usize,
}

impl GroupSim {
    pub fn step(&mut self) -> usize {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let hint = option_env!("VB_THREADS").is_some() as usize;
        self.shard = (self.shard + 1) % (workers + hint);
        self.shard
    }
}
