//! Negative fixture: declared names used under their declared kinds.

pub fn tick(n: f64) {
    let _span = vb_telemetry::span!("fixture.step");
    vb_telemetry::counter!("fixture.ticks").inc();
    vb_telemetry::float_counter!("fixture.volume_gb").add(n);
    vb_telemetry::gauge!("fixture.level").set(n);
    vb_telemetry::histogram!("fixture.latency_ms").record(n);
    vb_telemetry::event("fixture.done", &[]);
}
