//! stale-allow positive: a well-formed directive that suppresses
//! nothing is itself a finding.

pub fn tidy(xs: &[u64]) -> u64 {
    // vb-audit: allow(no-panic, the index is always in range)
    xs.iter().copied().sum()
}
