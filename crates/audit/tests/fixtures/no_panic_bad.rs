//! Positive fixture: every panic pathway `no-panic` must flag.

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn labelled(xs: &[f64]) -> f64 {
    *xs.last().expect("non-empty")
}

pub fn boom() {
    panic!("unreachable by construction");
}
