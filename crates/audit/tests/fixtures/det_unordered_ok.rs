//! unordered-iter negative: ordered containers, untainted helpers,
//! test code, and a reasoned allow all pass.

use std::collections::BTreeMap;

pub fn run_fleet(n: u64) -> u64 {
    let mut last = BTreeMap::new();
    last.insert(n, n);
    // vb-audit: allow(unordered-iter, drained into a sorted Vec before any iteration)
    let cache = std::collections::HashMap::<u64, u64>::new();
    last.len() as u64 + cache.len() as u64
}

fn unreached_scratch(n: u64) -> u64 {
    let mut m = std::collections::HashMap::new();
    m.insert(n, n);
    m.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u64, 1u64);
        assert_eq!(m.len(), 1);
    }
}
