//! Negative fixture: `total_cmp` ordering and a `PartialOrd` impl
//! (defining `fn partial_cmp` is not a call site).

pub struct Score(pub f64);

impl PartialEq for Score {
    fn eq(&self, other: &Score) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Score) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}
