//! Negative fixture: the factorized-solver counters added in the
//! revised-simplex PR, used under their declared kind.

pub fn flush(n: u64) {
    vb_telemetry::counter!("solver.ftran_nnz").add(n);
    vb_telemetry::counter!("solver.btran_nnz").add(n);
    vb_telemetry::counter!("solver.refactorizations").inc();
    vb_telemetry::counter!("solver.eta_updates").add(n);
    vb_telemetry::counter!("solver.steepest_resets").inc();
}
