//! unordered-iter positive: HashMap/HashSet in code reachable from an
//! output-affecting entry point (`run_fleet`), directly or via a call.

use std::collections::{HashMap, HashSet};

pub fn run_fleet(n: u64) -> u64 {
    let mut last = HashMap::new();
    for i in 0..n {
        last.insert(i, i);
    }
    helper(&last)
}

fn helper(m: &std::collections::HashMap<u64, u64>) -> u64 {
    let mut seen = HashSet::new();
    for (k, v) in m.iter() {
        seen.insert(k + v);
    }
    seen.len() as u64
}

fn unreached_scratch(n: u64) -> u64 {
    let mut m = std::collections::HashMap::new();
    m.insert(n, n);
    m.len() as u64
}
