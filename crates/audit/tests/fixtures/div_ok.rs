//! Negative fixture: guarded divisions, literal denominators, and a
//! reasoned allow for a denominator the guard heuristic cannot see.
//! The allowed division sits first, outside every guard window.

pub fn per_step(total: f64, steps: f64) -> f64 {
    // vb-audit: allow(div-guard, steps is validated by the caller's constructor)
    total / steps
}

pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

pub fn halve(x: f64) -> f64 {
    x / 2.0
}

pub fn share(part: f64, whole: f64) -> f64 {
    if whole <= 0.0 || !whole.is_finite() {
        return 0.0;
    }
    part / whole
}
