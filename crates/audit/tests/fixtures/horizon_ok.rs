//! Negative fixture: the canonical definitions, derived values, and
//! near-miss literals (960, 1672, 9.6) that must not be flagged.

pub const STEPS_PER_DAY: usize = 96;
pub const DAY_AHEAD_STEPS: usize = 672;

pub fn derived() -> usize {
    2 * STEPS_PER_DAY + DAY_AHEAD_STEPS
}

pub fn near_misses() -> (usize, usize, f64) {
    (960, 1672, 9.6)
}
