//! wallclock-in-logic negative: timing in a helper that no
//! output-affecting entry point reaches.

pub fn profile_once(steps: u64) -> f64 {
    let t0 = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 0..steps {
        acc = acc.wrapping_add(i);
    }
    let _ = acc;
    t0.elapsed().as_secs_f64()
}
