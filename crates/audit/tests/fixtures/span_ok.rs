//! Negative fixture: trace spans and series samples using declared
//! names under their declared kinds.

pub fn step(epoch: u64, gb: f64) {
    let _span = vb_telemetry::span!("fixture.step");
    vb_telemetry::series_sample("fixture.step_series", "policy-a", epoch, &[("gb", gb)]);
    // A span name mentioned only inside a string literal never counts
    // as a call site: "span!(\"fixture.not_a_call\")".
    let _doc = "span!(\"fixture.not_a_call\")";
}
