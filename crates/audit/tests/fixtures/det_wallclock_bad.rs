//! wallclock-in-logic positive: `Instant::now` inside `Policy::plan`.

pub struct Policy;

impl Policy {
    pub fn plan(&self, steps: u64) -> u64 {
        let t0 = std::time::Instant::now();
        let out = steps * 2;
        let _elapsed = t0.elapsed();
        out
    }
}
