//! Positive fixture: an unguarded float division by a runtime value.

pub fn mean(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    xs.iter().sum::<f64>() / n
}
