//! Positive fixture: factorized-solver counter names gone wrong — a
//! typo'd undeclared name, a declared counter used as a histogram, and
//! a camel-cased variant that fails the dot.snake rule.

pub fn flush(n: u64) {
    vb_telemetry::counter!("solver.ftran_nzz").add(n);
    vb_telemetry::histogram!("solver.eta_updates").record(n as f64);
    vb_telemetry::counter!("solver.steepestResets").inc();
}
