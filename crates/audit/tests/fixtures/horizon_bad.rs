//! Positive fixture: naked scheduling-horizon literals.

pub fn window() -> usize {
    96
}

pub fn day_ahead() -> usize {
    672
}

pub fn fractional() -> f64 {
    96.0 * 0.5
}
