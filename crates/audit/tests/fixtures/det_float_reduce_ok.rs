//! float-reduce-order negative: per-item values combined index-ordered
//! after the join.

pub fn total_energy(shards: &[Vec<f64>]) -> f64 {
    let sums = vb_par::par_map(shards, |shard| shard.iter().sum::<f64>());
    sums.iter().sum()
}
