//! float-reduce-order positive: shared-state accumulation inside a
//! parallel-map closure combines in completion order.

pub fn total_energy(shards: &[Vec<f64>]) -> f64 {
    let total = std::sync::atomic::AtomicU64::new(0);
    let _ = vb_par::par_map(shards, |shard| {
        let sum: f64 = shard.iter().sum();
        total.fetch_add(sum.to_bits(), std::sync::atomic::Ordering::Relaxed);
    });
    f64::from_bits(total.load(std::sync::atomic::Ordering::Relaxed))
}
