//! env-read positive: configuration pulled from the environment inside
//! a solve entry point.

pub fn solve_mip_epoch(budget: u64) -> u64 {
    let relax = std::env::var("FIXTURE_RELAX").is_ok();
    if relax {
        budget / 2
    } else {
        budget
    }
}
