//! env-read negative: an environment probe no output-affecting entry
//! point reaches.

pub fn debug_flag() -> bool {
    std::env::var("FIXTURE_DEBUG").is_ok()
}
