//! Positive fixture: malformed suppression directives. Each one is an
//! unsuppressable `allow-parse` finding, and none of them suppresses
//! the violation beneath it.

pub fn missing_reason(xs: &[f64]) -> f64 {
    // vb-audit: allow(no-panic)
    *xs.first().unwrap()
}

pub fn empty_reason(xs: &[f64]) -> f64 {
    // vb-audit: allow(no-panic, )
    *xs.first().unwrap()
}

pub fn unknown_lint(xs: &[f64]) -> f64 {
    // vb-audit: allow(no-such-lint, typo'd lint names must not vanish)
    *xs.first().unwrap()
}

pub fn not_a_directive(xs: &[f64]) -> f64 {
    // vb-audit: suppress everything please
    *xs.first().unwrap()
}
