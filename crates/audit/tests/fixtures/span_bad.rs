//! Positive fixture: an undeclared span name, a series name declared
//! under [spans] rather than [series] (kind mismatch), and a
//! non-dot.snake span name.

pub fn step(epoch: u64) {
    let _span = vb_telemetry::span!("fixture.undeclared_span");
    vb_telemetry::series_sample("fixture.step", "policy-a", epoch, &[("gb", 1.0)]);
    let _bad = vb_telemetry::span!("FixtureStep");
}
