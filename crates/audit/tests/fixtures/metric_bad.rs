//! Positive fixture: an undeclared counter, a kind mismatch (declared
//! as a gauge, used as a histogram), and a non-dot.snake name.

pub fn tick() {
    vb_telemetry::counter!("fixture.undeclared").inc();
    vb_telemetry::histogram!("fixture.level").record(1.0);
    vb_telemetry::gauge!("BadName").set(0.0);
}
