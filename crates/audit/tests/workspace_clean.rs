//! The audit's own acceptance gate: the workspace this crate ships in
//! must be clean under every rule — including the audit crate itself
//! (the self-scan), the manifest's dead-metric direction, and
//! stale-allow over every existing directive.

use std::path::PathBuf;

#[test]
fn workspace_self_audit_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = vb_audit::audit_workspace(&root).expect("workspace audit runs");
    assert!(
        findings.is_empty(),
        "workspace audit found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
