//! Fixture suite: one positive and one negative case per lint, plus
//! allow-directive parsing. Fixtures live under `tests/fixtures/` and
//! are audited as text — they are never compiled.

use vb_audit::{Engine, FileSpec, Finding, Manifest};

const FIXTURE_MANIFEST: &str = r#"
[counters]
"fixture.ticks" = "ticks"
"fixture.undeclared_elsewhere" = "red herring"
"solver.ftran_nnz" = "FTRAN result nonzeros"
"solver.btran_nnz" = "BTRAN result nonzeros"
"solver.refactorizations" = "basis refactorizations"
"solver.eta_updates" = "eta updates"
"solver.steepest_resets" = "steepest-edge weight resets"

[float_counters]
"fixture.volume_gb" = "volume"

[gauges]
"fixture.level" = "level"

[histograms]
"fixture.latency_ms" = "latency"

[spans]
"fixture.step" = "step"

[events]
"fixture.done" = "done"

[series]
"fixture.step_series" = "per-step series"
"#;

fn audit(name: &str, spec: FileSpec) -> Vec<Finding> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let src = std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    let manifest = Manifest::parse(FIXTURE_MANIFEST).expect("fixture manifest parses");
    Engine::new(manifest).audit_source(name, &src, spec)
}

fn lints(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint).collect()
}

fn no_panic() -> FileSpec {
    FileSpec {
        no_panic: true,
        ..FileSpec::default()
    }
}

fn div_guard() -> FileSpec {
    FileSpec {
        div_guard: true,
        ..FileSpec::default()
    }
}

#[test]
fn no_panic_positive() {
    let findings = audit("no_panic_bad.rs", no_panic());
    assert_eq!(lints(&findings), ["no-panic", "no-panic", "no-panic"]);
    assert_eq!(findings[0].line, 4, "unwrap");
    assert_eq!(findings[1].line, 8, "expect");
    assert_eq!(findings[2].line, 12, "panic!");
}

#[test]
fn no_panic_negative() {
    // unwrap_or, strings, allowed lines and #[cfg(test)] bodies all pass.
    let findings = audit("no_panic_ok.rs", no_panic());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn float_cmp_positive() {
    let findings = audit("float_cmp_bad.rs", FileSpec::default());
    assert_eq!(lints(&findings), ["float-cmp"]);
    assert_eq!(findings[0].line, 4);
}

#[test]
fn float_cmp_negative() {
    // total_cmp call sites and a `fn partial_cmp` definition are clean.
    let findings = audit("float_cmp_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn horizon_literal_positive() {
    let findings = audit("horizon_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["horizon-literal", "horizon-literal", "horizon-literal"]
    );
    assert_eq!(findings[0].line, 4, "96");
    assert_eq!(findings[1].line, 8, "672");
    assert_eq!(findings[2].line, 12, "96.0");
}

#[test]
fn horizon_literal_negative() {
    // The const definitions themselves and 960/1672/9.6 are clean.
    let findings = audit("horizon_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn metric_name_positive() {
    let findings = audit("metric_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["metric-name", "metric-name", "metric-name"]
    );
    assert!(
        findings[0].message.contains("fixture.undeclared"),
        "undeclared counter: {}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("fixture.level"),
        "gauge used as histogram: {}",
        findings[1]
    );
    assert!(
        findings[2].message.contains("BadName"),
        "non-dot.snake name: {}",
        findings[2]
    );
}

#[test]
fn metric_name_negative() {
    let findings = audit("metric_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn solver_counter_names_positive() {
    let findings = audit("solver_metric_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["metric-name", "metric-name", "metric-name"]
    );
    assert!(
        findings[0].message.contains("solver.ftran_nzz"),
        "typo'd counter is undeclared: {}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("solver.eta_updates"),
        "counter used as histogram: {}",
        findings[1]
    );
    assert!(
        findings[2].message.contains("solver.steepestResets"),
        "non-dot.snake name: {}",
        findings[2]
    );
}

#[test]
fn solver_counter_names_negative() {
    let findings = audit("solver_metric_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn span_name_positive() {
    let findings = audit("span_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["metric-name", "metric-name", "metric-name"]
    );
    assert_eq!(findings[0].line, 6, "undeclared span");
    assert!(
        findings[0].message.contains("fixture.undeclared_span"),
        "undeclared span: {}",
        findings[0]
    );
    assert_eq!(findings[1].line, 7, "span name used as a series");
    assert!(
        findings[1].message.contains("[series]"),
        "kind mismatch names the expected kind: {}",
        findings[1]
    );
    assert_eq!(findings[2].line, 8, "non-dot.snake span");
    assert!(
        findings[2].message.contains("FixtureStep"),
        "non-dot.snake span name: {}",
        findings[2]
    );
}

#[test]
fn span_name_negative() {
    // Declared span and series names, plus a span call inside a string
    // literal that must not register as a call site.
    let findings = audit("span_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn div_guard_positive() {
    let findings = audit("div_bad.rs", div_guard());
    assert_eq!(lints(&findings), ["div-guard"]);
    assert_eq!(findings[0].line, 5);
}

#[test]
fn div_guard_negative() {
    // Guarded divisions, literal denominators and a reasoned allow.
    let findings = audit("div_ok.rs", div_guard());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn malformed_allow_directives_are_findings_and_do_not_suppress() {
    let findings = audit("allow_bad.rs", no_panic());
    // Each malformed directive: one allow-parse finding, and the
    // violation beneath it still fires. The final comment is not a
    // recognised directive shape at all, so it too is an allow-parse
    // error rather than silently ignored prose.
    let parse_errors: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == "allow-parse")
        .collect();
    let violations: Vec<&Finding> = findings.iter().filter(|f| f.lint == "no-panic").collect();
    assert_eq!(parse_errors.len(), 4, "{findings:#?}");
    assert_eq!(violations.len(), 4, "{findings:#?}");
    assert!(
        parse_errors[0].message.contains("reason"),
        "missing reason names the problem: {}",
        parse_errors[0]
    );
}

#[test]
fn div_guard_lint_is_path_scoped() {
    // The same unguarded division passes when the file is outside the
    // div-guard scope.
    let findings = audit("div_bad.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn no_panic_lint_is_path_scoped() {
    let findings = audit("no_panic_bad.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

// ---- determinism family ------------------------------------------------

#[test]
fn unordered_iter_positive() {
    // `run_fleet` is a taint root; `helper` is reachable through the
    // call edge. `unreached_scratch` and the module-level `use` line
    // are outside every tainted extent, so they stay clean.
    let findings = audit("det_unordered_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["unordered-iter", "unordered-iter", "unordered-iter"]
    );
    assert_eq!(findings[0].line, 7, "HashMap::new in run_fleet");
    assert_eq!(findings[1].line, 14, "HashMap in helper's signature");
    assert_eq!(findings[2].line, 15, "HashSet in helper's body");
    assert!(
        findings[0].message.contains("run_fleet"),
        "message names the tainted function: {}",
        findings[0]
    );
}

#[test]
fn unordered_iter_negative() {
    // BTreeMap in the entry point, HashMap behind a reasoned allow,
    // HashMap in an unreached helper and in #[cfg(test)] all pass —
    // and the allow is used, so no stale-allow either.
    let findings = audit("det_unordered_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn unordered_iter_det_core_flags_module_level() {
    // In a deterministic-core crate the rule covers the whole file:
    // the `use` line and the unreached helper are findings too.
    let spec = FileSpec {
        det_core: true,
        ..FileSpec::default()
    };
    let findings = audit("det_unordered_bad.rs", spec);
    let module_level: Vec<&Finding> = findings.iter().filter(|f| f.line == 4).collect();
    assert_eq!(module_level.len(), 2, "use line flags both containers");
    assert!(
        module_level[0].message.contains("module level"),
        "{}",
        module_level[0]
    );
    assert!(
        findings.iter().any(|f| f.line == 23),
        "unreached helper is in scope under det_core: {findings:#?}"
    );
}

#[test]
fn wallclock_positive() {
    let findings = audit("det_wallclock_bad.rs", FileSpec::default());
    assert_eq!(lints(&findings), ["wallclock-in-logic"]);
    assert_eq!(findings[0].line, 7, "Instant::now inside Policy::plan");
}

#[test]
fn wallclock_negative_unreached_helper() {
    let findings = audit("det_wallclock_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn wallclock_sanctioned_layer_is_exempt() {
    // The same Instant::now passes in the telemetry layer.
    let spec = FileSpec {
        wallclock_ok: true,
        ..FileSpec::default()
    };
    let findings = audit("det_wallclock_bad.rs", spec);
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn env_read_positive() {
    let findings = audit("det_env_bad.rs", FileSpec::default());
    assert_eq!(lints(&findings), ["env-read"]);
    assert_eq!(findings[0].line, 5, "env::var inside solve_mip_epoch");
}

#[test]
fn env_read_negative_and_sanctioned() {
    let findings = audit("det_env_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
    let spec = FileSpec {
        env_ok: true,
        ..FileSpec::default()
    };
    let findings = audit("det_env_bad.rs", spec);
    assert_eq!(findings, [], "env_ok exempts the layer: {findings:#?}");
}

#[test]
fn thread_derived_positive() {
    // Both worker-count sources fire inside GroupSim::step: the
    // available_parallelism call and the env-var name (seen through
    // the string-preserving view).
    let findings = audit("det_threads_bad.rs", FileSpec::default());
    assert_eq!(lints(&findings), ["thread-derived", "thread-derived"]);
    assert_eq!(findings[0].line, 10, "available_parallelism");
    assert_eq!(findings[1].line, 11, "worker-count env var");
}

#[test]
fn thread_derived_negative_and_sanctioned() {
    let findings = audit("det_threads_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
    let spec = FileSpec {
        threads_ok: true,
        ..FileSpec::default()
    };
    let findings = audit("det_threads_bad.rs", spec);
    assert_eq!(findings, [], "threads_ok exempts the layer: {findings:#?}");
}

#[test]
fn float_reduce_order_positive() {
    // Taint-independent: accumulating into shared state inside any
    // par_map closure is non-associative regardless of reachability.
    let findings = audit("det_float_reduce_bad.rs", FileSpec::default());
    assert_eq!(lints(&findings), ["float-reduce-order"]);
    assert_eq!(findings[0].line, 8, "fetch_add inside the closure");
    assert!(
        findings[0].message.contains("par_map"),
        "message names the combinator: {}",
        findings[0]
    );
}

#[test]
fn float_reduce_order_negative() {
    let findings = audit("det_float_reduce_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn cross_crate_taint_flags_unordered_iter() {
    // run_fleet in crate `a` calls vb_b::helper; the HashMap inside
    // crate `b` is flagged only when both files are indexed together.
    let a = "pub fn run_fleet(n: u64) -> u64 {\n    vb_b::helper(n)\n}\n";
    let b = "pub fn helper(n: u64) -> u64 {\n    let mut m = std::collections::HashMap::new();\n    m.insert(n, n);\n    m.len() as u64\n}\n";
    let manifest = Manifest::parse(FIXTURE_MANIFEST).expect("fixture manifest parses");
    let engine = Engine::new(manifest);

    let alone = engine.audit_source("crates/b/src/lib.rs", b, FileSpec::default());
    assert_eq!(alone, [], "helper alone is unreached: {alone:#?}");

    let together = engine.audit_sources(&[
        (
            "crates/a/src/lib.rs".to_string(),
            a.to_string(),
            FileSpec::default(),
        ),
        (
            "crates/b/src/lib.rs".to_string(),
            b.to_string(),
            FileSpec::default(),
        ),
    ]);
    assert_eq!(lints(&together), ["unordered-iter"], "{together:#?}");
    assert_eq!(together[0].file, "crates/b/src/lib.rs");
    assert_eq!(together[0].line, 2);
}

// ---- suppression meta-rules --------------------------------------------

#[test]
fn stale_allow_positive() {
    // A well-formed allow whose lint never fires is itself a finding,
    // reported at the line the directive targets.
    let findings = audit("stale_allow_bad.rs", no_panic());
    assert_eq!(lints(&findings), ["stale-allow"]);
    assert_eq!(findings[0].line, 6);
    assert!(
        findings[0].message.contains("no-panic"),
        "message names the stale lint: {}",
        findings[0]
    );
}

#[test]
fn stale_allow_skips_test_code_and_index_only_files() {
    // The same directive inside #[cfg(test)] or an index-only bench
    // binary is not reported: most rules never run there, so "the lint
    // no longer fires" carries no signal.
    let src =
        "#[cfg(test)]\nmod tests {\n    // vb-audit: allow(no-panic, fixture)\n    fn f() {}\n}\n";
    let manifest = Manifest::parse(FIXTURE_MANIFEST).expect("fixture manifest parses");
    let findings = Engine::new(manifest.clone()).audit_source("lib.rs", src, no_panic());
    assert_eq!(findings, [], "test-code allows are exempt: {findings:#?}");

    let spec = FileSpec {
        index_only: true,
        ..FileSpec::default()
    };
    let src = "// vb-audit: allow(no-panic, fixture)\nfn f() { None::<u64>.unwrap(); }\n";
    let findings = Engine::new(manifest).audit_source("benches/fig.rs", src, spec);
    assert_eq!(findings, [], "index-only allows are exempt: {findings:#?}");
}

// ---- dead-metric -------------------------------------------------------

const DEAD_METRIC_MANIFEST: &str = r#"
[counters]
"fixture.ticks" = "ticks"
"fixture.orphan" = "never emitted"
# vb-audit: allow(dead-metric, retained for the dashboard until the next schema rev)
"fixture.parked" = "declared dead on purpose"
"#;

#[test]
fn dead_metric_positive_with_manifest_allow() {
    // `fixture.orphan` has no emission site; `fixture.parked` is dead
    // too but carries a manifest allow; `fixture.ticks` is emitted.
    let manifest = Manifest::parse(DEAD_METRIC_MANIFEST).expect("manifest parses");
    let src = "pub fn run_fleet() {\n    vb_telemetry::counter!(\"fixture.ticks\", 1);\n}\n";
    let findings = Engine::new(manifest).with_dead_metrics(true).audit_source(
        "lib.rs",
        src,
        FileSpec::default(),
    );
    assert_eq!(lints(&findings), ["dead-metric"], "{findings:#?}");
    assert_eq!(findings[0].file, "metrics-manifest.toml");
    assert_eq!(findings[0].line, 4, "points at the declaration line");
    assert!(
        findings[0].message.contains("fixture.orphan"),
        "{}",
        findings[0]
    );
}

#[test]
fn dead_metric_sees_multiline_and_test_emissions_correctly() {
    // A call whose name sits on the line after the opening paren still
    // counts as an emission; one inside #[cfg(test)] does not.
    let manifest = Manifest::parse(DEAD_METRIC_MANIFEST).expect("manifest parses");
    let src = "pub fn run_fleet() {\n    vb_telemetry::counter!(\n        \"fixture.ticks\",\n        1,\n    );\n    vb_telemetry::counter!(\"fixture.orphan\", 1);\n}\n";
    let findings = Engine::new(manifest.clone())
        .with_dead_metrics(true)
        .audit_source("lib.rs", src, FileSpec::default());
    assert_eq!(findings, [], "both metrics emitted: {findings:#?}");

    let src = "#[cfg(test)]\nmod tests {\n    fn f() {\n        vb_telemetry::counter!(\"fixture.orphan\", 1);\n    }\n}\npub fn run_fleet() {\n    vb_telemetry::counter!(\"fixture.ticks\", 1);\n}\n";
    let findings = Engine::new(manifest).with_dead_metrics(true).audit_source(
        "lib.rs",
        src,
        FileSpec::default(),
    );
    assert_eq!(
        lints(&findings),
        ["dead-metric"],
        "a test-only emission does not keep a metric alive: {findings:#?}"
    );
}

#[test]
fn dead_metric_manifest_allow_goes_stale() {
    // When the parked metric gains an emission site, its manifest
    // allow suppresses nothing and is reported as stale.
    let manifest = Manifest::parse(DEAD_METRIC_MANIFEST).expect("manifest parses");
    let src = "pub fn run_fleet() {\n    vb_telemetry::counter!(\"fixture.ticks\", 1);\n    vb_telemetry::counter!(\"fixture.orphan\", 1);\n    vb_telemetry::counter!(\"fixture.parked\", 1);\n}\n";
    let findings = Engine::new(manifest).with_dead_metrics(true).audit_source(
        "lib.rs",
        src,
        FileSpec::default(),
    );
    assert_eq!(lints(&findings), ["stale-allow"], "{findings:#?}");
    assert_eq!(findings[0].file, "metrics-manifest.toml");
    assert_eq!(findings[0].line, 6, "points at the allowed entry");
}

#[test]
fn dead_metric_off_by_default() {
    // Single-fixture runs would see almost every manifest entry as
    // dead; the rule only arms via with_dead_metrics(true).
    let manifest = Manifest::parse(DEAD_METRIC_MANIFEST).expect("manifest parses");
    let findings =
        Engine::new(manifest).audit_source("lib.rs", "pub fn f() {}\n", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}
