//! Fixture suite: one positive and one negative case per lint, plus
//! allow-directive parsing. Fixtures live under `tests/fixtures/` and
//! are audited as text — they are never compiled.

use vb_audit::{Engine, FileSpec, Finding, Manifest};

const FIXTURE_MANIFEST: &str = r#"
[counters]
"fixture.ticks" = "ticks"
"fixture.undeclared_elsewhere" = "red herring"
"solver.ftran_nnz" = "FTRAN result nonzeros"
"solver.btran_nnz" = "BTRAN result nonzeros"
"solver.refactorizations" = "basis refactorizations"
"solver.eta_updates" = "eta updates"
"solver.steepest_resets" = "steepest-edge weight resets"

[float_counters]
"fixture.volume_gb" = "volume"

[gauges]
"fixture.level" = "level"

[histograms]
"fixture.latency_ms" = "latency"

[spans]
"fixture.step" = "step"

[events]
"fixture.done" = "done"

[series]
"fixture.step_series" = "per-step series"
"#;

fn audit(name: &str, spec: FileSpec) -> Vec<Finding> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let src = std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    let manifest = Manifest::parse(FIXTURE_MANIFEST).expect("fixture manifest parses");
    Engine::new(manifest).audit_source(name, &src, spec)
}

fn lints(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint).collect()
}

const NO_PANIC: FileSpec = FileSpec {
    no_panic: true,
    div_guard: false,
};
const DIV_GUARD: FileSpec = FileSpec {
    no_panic: false,
    div_guard: true,
};

#[test]
fn no_panic_positive() {
    let findings = audit("no_panic_bad.rs", NO_PANIC);
    assert_eq!(lints(&findings), ["no-panic", "no-panic", "no-panic"]);
    assert_eq!(findings[0].line, 4, "unwrap");
    assert_eq!(findings[1].line, 8, "expect");
    assert_eq!(findings[2].line, 12, "panic!");
}

#[test]
fn no_panic_negative() {
    // unwrap_or, strings, allowed lines and #[cfg(test)] bodies all pass.
    let findings = audit("no_panic_ok.rs", NO_PANIC);
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn float_cmp_positive() {
    let findings = audit("float_cmp_bad.rs", FileSpec::default());
    assert_eq!(lints(&findings), ["float-cmp"]);
    assert_eq!(findings[0].line, 4);
}

#[test]
fn float_cmp_negative() {
    // total_cmp call sites and a `fn partial_cmp` definition are clean.
    let findings = audit("float_cmp_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn horizon_literal_positive() {
    let findings = audit("horizon_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["horizon-literal", "horizon-literal", "horizon-literal"]
    );
    assert_eq!(findings[0].line, 4, "96");
    assert_eq!(findings[1].line, 8, "672");
    assert_eq!(findings[2].line, 12, "96.0");
}

#[test]
fn horizon_literal_negative() {
    // The const definitions themselves and 960/1672/9.6 are clean.
    let findings = audit("horizon_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn metric_name_positive() {
    let findings = audit("metric_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["metric-name", "metric-name", "metric-name"]
    );
    assert!(
        findings[0].message.contains("fixture.undeclared"),
        "undeclared counter: {}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("fixture.level"),
        "gauge used as histogram: {}",
        findings[1]
    );
    assert!(
        findings[2].message.contains("BadName"),
        "non-dot.snake name: {}",
        findings[2]
    );
}

#[test]
fn metric_name_negative() {
    let findings = audit("metric_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn solver_counter_names_positive() {
    let findings = audit("solver_metric_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["metric-name", "metric-name", "metric-name"]
    );
    assert!(
        findings[0].message.contains("solver.ftran_nzz"),
        "typo'd counter is undeclared: {}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("solver.eta_updates"),
        "counter used as histogram: {}",
        findings[1]
    );
    assert!(
        findings[2].message.contains("solver.steepestResets"),
        "non-dot.snake name: {}",
        findings[2]
    );
}

#[test]
fn solver_counter_names_negative() {
    let findings = audit("solver_metric_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn span_name_positive() {
    let findings = audit("span_bad.rs", FileSpec::default());
    assert_eq!(
        lints(&findings),
        ["metric-name", "metric-name", "metric-name"]
    );
    assert_eq!(findings[0].line, 6, "undeclared span");
    assert!(
        findings[0].message.contains("fixture.undeclared_span"),
        "undeclared span: {}",
        findings[0]
    );
    assert_eq!(findings[1].line, 7, "span name used as a series");
    assert!(
        findings[1].message.contains("[series]"),
        "kind mismatch names the expected kind: {}",
        findings[1]
    );
    assert_eq!(findings[2].line, 8, "non-dot.snake span");
    assert!(
        findings[2].message.contains("FixtureStep"),
        "non-dot.snake span name: {}",
        findings[2]
    );
}

#[test]
fn span_name_negative() {
    // Declared span and series names, plus a span call inside a string
    // literal that must not register as a call site.
    let findings = audit("span_ok.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn div_guard_positive() {
    let findings = audit("div_bad.rs", DIV_GUARD);
    assert_eq!(lints(&findings), ["div-guard"]);
    assert_eq!(findings[0].line, 5);
}

#[test]
fn div_guard_negative() {
    // Guarded divisions, literal denominators and a reasoned allow.
    let findings = audit("div_ok.rs", DIV_GUARD);
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn malformed_allow_directives_are_findings_and_do_not_suppress() {
    let findings = audit("allow_bad.rs", NO_PANIC);
    // Each malformed directive: one allow-parse finding, and the
    // violation beneath it still fires. The final comment is not a
    // recognised directive shape at all, so it too is an allow-parse
    // error rather than silently ignored prose.
    let parse_errors: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.lint == "allow-parse")
        .collect();
    let violations: Vec<&Finding> = findings.iter().filter(|f| f.lint == "no-panic").collect();
    assert_eq!(parse_errors.len(), 4, "{findings:#?}");
    assert_eq!(violations.len(), 4, "{findings:#?}");
    assert!(
        parse_errors[0].message.contains("reason"),
        "missing reason names the problem: {}",
        parse_errors[0]
    );
}

#[test]
fn div_guard_lint_is_path_scoped() {
    // The same unguarded division passes when the file is outside the
    // div-guard scope.
    let findings = audit("div_bad.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}

#[test]
fn no_panic_lint_is_path_scoped() {
    let findings = audit("no_panic_bad.rs", FileSpec::default());
    assert_eq!(findings, [], "expected clean, got: {findings:#?}");
}
