//! CLI entry point: `cargo run -p vb-audit -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;
use vb_audit::Finding;

const USAGE: &str = "usage: vb-audit --workspace [--root <path>] [--format=<fmt>]

Lints every non-shim, non-test Rust source in the workspace. Exits 0
when no finding survives suppression, 1 otherwise (\"-D\" semantics).

Formats:
  text    human-readable `file:line: [lint] message` lines (default)
  json    a JSON array of {file, line, lint, message} objects
  github  GitHub Actions workflow commands (`::error ...`), so CI
          annotates findings inline on the PR diff";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                let fmt = other
                    .strip_prefix("--format=")
                    .map(str::to_string)
                    .or_else(|| (other == "--format").then(|| args.next().unwrap_or_default()));
                match fmt.as_deref() {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    Some("github") => format = Format::Github,
                    Some(bad) => {
                        eprintln!("unknown format `{bad}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("unknown argument `{other}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    if !workspace {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = root.unwrap_or_else(find_workspace_root);
    match vb_audit::audit_workspace(&root) {
        Ok(findings) => {
            emit(&findings, format);
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("vb-audit: {err}");
            ExitCode::from(2)
        }
    }
}

fn emit(findings: &[Finding], format: Format) {
    match format {
        Format::Text => {
            for finding in findings {
                println!("{finding}");
            }
            if findings.is_empty() {
                println!("vb-audit: workspace clean");
            } else {
                println!("vb-audit: {} finding(s)", findings.len());
            }
        }
        Format::Json => {
            let mut out = String::from("[");
            for (i, f) in findings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n  {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
                    json_escape(&f.file),
                    f.line,
                    f.lint,
                    json_escape(&f.message)
                ));
            }
            out.push_str(if findings.is_empty() { "]" } else { "\n]" });
            println!("{out}");
        }
        Format::Github => {
            // Workflow commands: one `::error` annotation per finding,
            // anchored to the file/line so it renders on the PR diff.
            for f in findings {
                println!(
                    "::error file={},line={},title=vb-audit {}::{}",
                    f.file,
                    f.line,
                    f.lint,
                    gha_escape(&f.message)
                );
            }
            if findings.is_empty() {
                println!("vb-audit: workspace clean");
            } else {
                println!("vb-audit: {} finding(s)", findings.len());
            }
        }
    }
}

/// Minimal JSON string escaping (the finding text is ASCII-ish prose;
/// control characters other than the escaped set do not occur).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// GitHub workflow-command data escaping (`%`, CR, LF).
fn gha_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`; fall back to the compile-time crate path.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let candidate = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
