//! CLI entry point: `cargo run -p vb-audit -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: vb-audit --workspace [--root <path>]

Lints every non-shim, non-test Rust source in the workspace. Exits 0
when no finding survives suppression, 1 otherwise (\"-D\" semantics).";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = root.unwrap_or_else(find_workspace_root);
    match vb_audit::audit_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("vb-audit: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("vb-audit: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("vb-audit: {err}");
            ExitCode::from(2)
        }
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`; fall back to the compile-time crate path.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let candidate = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&candidate) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
