//! Hand-rolled lexical scanner for Rust sources.
//!
//! The audit engine runs in an offline workspace (no registry access, so
//! no `syn`); instead of a full parse it performs a line-preserving
//! lexical pass that is exact about the three things the lints need:
//!
//! * comments (line, nested block) are stripped,
//! * string/char literal *contents* are blanked out of the code view so
//!   text inside strings can never trip a code lint, while a parallel
//!   view keeps literals verbatim for the metric-name lint,
//! * `#[cfg(test)]` items are tracked by brace depth and marked so
//!   library-only lints skip them.
//!
//! Both views are column-preserving: every stripped character becomes a
//! space, so byte offsets in a view line up with the original source.

/// One scanned source line, in both views.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// Comments stripped, string/char contents blanked (delimiters kept).
    pub code: String,
    /// Comments stripped, string literals kept verbatim.
    pub with_strings: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A parsed `// vb-audit: allow(lint, reason)` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the suppression applies to.
    pub line: usize,
    pub lint: String,
    #[allow(dead_code)]
    pub reason: String,
}

/// A malformed directive; reported as a finding by the engine.
#[derive(Debug, Clone)]
pub struct ScanError {
    /// 1-based line of the malformed directive.
    pub line: usize,
    pub message: String,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct Scanned {
    pub lines: Vec<SourceLine>,
    pub allows: Vec<Allow>,
    pub errors: Vec<ScanError>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    /// Nested block comment at the given depth.
    Block(u32),
    /// Inside a normal string literal.
    Str,
    /// Inside a raw string closed by `"` + this many `#`.
    RawStr(u32),
}

/// Scan a whole source file.
pub fn scan(src: &str) -> Scanned {
    let mut out = Scanned::default();
    let mut state = State::Code;
    // Test-item tracking: brace depth in the code view, plus an optional
    // (base_depth, body_opened) pair while skipping a `#[cfg(test)]` item.
    let mut depth: i64 = 0;
    let mut test_skip: Option<(i64, bool)> = None;

    for (lineno0, raw) in src.lines().enumerate() {
        let lineno = lineno0 + 1;
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut with_strings = String::with_capacity(raw.len());
        let mut comment_text = String::new();
        let mut started_in_test = test_skip.is_some();
        let mut i = 0usize;

        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: capture text (directives live in
                        // plain `//` comments only — doc comments are
                        // prose, not suppressions), blank the rest.
                        let is_doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
                        if !is_doc {
                            comment_text.push_str(&chars[i + 2..].iter().collect::<String>());
                        }
                        for _ in i..chars.len() {
                            code.push(' ');
                            with_strings.push(' ');
                        }
                        i = chars.len();
                        continue;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        code.push(' ');
                        code.push(' ');
                        with_strings.push(' ');
                        with_strings.push(' ');
                        i += 2;
                        continue;
                    }
                    // Raw (and raw byte) string openers: r"…", r#"…"#, br"…".
                    if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
                        let r_at = if c == 'b' { i + 1 } else { i };
                        let mut j = r_at + 1;
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        // Only a raw string if `r`/`br` starts an identifier
                        // here (previous char is not part of one).
                        let prev_ok = i == 0 || !is_ident(chars[i - 1]);
                        if prev_ok && chars.get(j) == Some(&'"') {
                            for &ch in &chars[i..=j] {
                                code.push(ch);
                                with_strings.push(ch);
                            }
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '"' {
                        code.push('"');
                        with_strings.push('"');
                        state = State::Str;
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Char literal vs lifetime. A char literal is
                        // '\…' or 'X' with a closing quote right after.
                        let is_char = match chars.get(i + 1) {
                            Some('\\') => true,
                            Some(_) => chars.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char {
                            code.push('\'');
                            with_strings.push('\'');
                            i += 1;
                            // Consume until the closing quote.
                            while i < chars.len() {
                                let cc = chars[i];
                                if cc == '\\' {
                                    code.push(' ');
                                    with_strings.push(cc);
                                    if i + 1 < chars.len() {
                                        code.push(' ');
                                        with_strings.push(chars[i + 1]);
                                    }
                                    i += 2;
                                    continue;
                                }
                                if cc == '\'' {
                                    code.push('\'');
                                    with_strings.push('\'');
                                    i += 1;
                                    break;
                                }
                                code.push(' ');
                                with_strings.push(cc);
                                i += 1;
                            }
                            continue;
                        }
                        // Lifetime: keep the tick, fall through.
                    }
                    if c == '{' {
                        depth += 1;
                        if let Some((_, opened)) = test_skip.as_mut() {
                            *opened = true;
                        }
                    } else if c == '}' {
                        depth -= 1;
                        if let Some((base, opened)) = test_skip {
                            if opened && depth <= base {
                                test_skip = None;
                            }
                        }
                    } else if c == ';' {
                        if let Some((base, opened)) = test_skip {
                            if !opened && depth == base {
                                // `#[cfg(test)] use …;` style item.
                                test_skip = None;
                            }
                        }
                    }
                    code.push(c);
                    with_strings.push(c);
                    i += 1;
                }
                State::Block(d) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        let nd = d - 1;
                        state = if nd == 0 {
                            State::Code
                        } else {
                            State::Block(nd)
                        };
                        code.push(' ');
                        code.push(' ');
                        with_strings.push(' ');
                        with_strings.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(d + 1);
                        code.push(' ');
                        code.push(' ');
                        with_strings.push(' ');
                        with_strings.push(' ');
                        i += 2;
                        continue;
                    }
                    comment_text.push(c);
                    code.push(' ');
                    with_strings.push(' ');
                    i += 1;
                }
                State::Str => {
                    if c == '\\' {
                        code.push(' ');
                        with_strings.push(c);
                        if i + 1 < chars.len() {
                            code.push(' ');
                            with_strings.push(chars[i + 1]);
                        }
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        code.push('"');
                        with_strings.push('"');
                        state = State::Code;
                        i += 1;
                        continue;
                    }
                    code.push(' ');
                    with_strings.push(c);
                    i += 1;
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            with_strings.push('"');
                            for k in 0..hashes as usize {
                                code.push('#');
                                with_strings.push(chars[i + 1 + k]);
                            }
                            state = State::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    code.push(' ');
                    with_strings.push(c);
                    i += 1;
                }
            }
        }

        // A `#[cfg(test)]` attribute seen on this line (in the code view)
        // starts a skip region unless we're already inside one.
        if test_skip.is_none() && (code.contains("#[cfg(test)") || code.contains("#[cfg(all(test"))
        {
            // The attribute's braces (if the item opens on the same line)
            // were already counted above; recompute the base depth as the
            // depth *before* any brace that followed the attribute. Using
            // the current depth minus unclosed braces opened after the
            // attribute would need column tracking; instead take the
            // minimum of current depth and depth at line start.
            let opens = code.matches('{').count() as i64;
            let closes = code.matches('}').count() as i64;
            let line_start_depth = depth - opens + closes;
            test_skip = Some((line_start_depth.min(depth), opens > 0));
            started_in_test = true;
            if opens > 0 && opens == closes {
                // Single-line `#[cfg(test)] fn x() {}` item.
                test_skip = None;
            }
        }

        // Directive extraction from this line's comment text.
        if let Some(pos) = comment_text.find("vb-audit:") {
            let rest = comment_text[pos + "vb-audit:".len()..].trim();
            match parse_allow(rest) {
                Ok((lint, reason)) => {
                    // A directive on a comment-only line applies to the
                    // next source line; inline directives to their own.
                    let target = if code.trim().is_empty() {
                        lineno + 1
                    } else {
                        lineno
                    };
                    out.allows.push(Allow {
                        line: target,
                        lint,
                        reason,
                    });
                }
                Err(message) => out.errors.push(ScanError {
                    line: lineno,
                    message,
                }),
            }
        }

        out.lines.push(SourceLine {
            code,
            with_strings,
            in_test: started_in_test || test_skip.is_some(),
        });
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Parse the tail of a directive: `allow(lint-name, reason text)`.
/// Also used by the manifest parser for `#`-comment directives.
pub(crate) fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let body = rest
        .strip_prefix("allow(")
        .ok_or_else(|| format!("expected `allow(lint, reason)` after `vb-audit:`, got `{rest}`"))?;
    let body = body
        .rfind(')')
        .map(|end| &body[..end])
        .ok_or_else(|| "unterminated allow directive: missing `)`".to_string())?;
    let (lint, reason) = body
        .split_once(',')
        .ok_or_else(|| "allow directive requires a reason: `allow(lint, reason)`".to_string())?;
    let lint = lint.trim();
    let reason = reason.trim().trim_matches('"').trim();
    if lint.is_empty()
        || !lint
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Err(format!("invalid lint name `{lint}` in allow directive"));
    }
    if reason.is_empty() {
        return Err(format!("allow({lint}, …) is missing a reason"));
    }
    Ok((lint.to_string(), reason.to_string()))
}
