//! Rule orchestration: prepared files in, surviving findings out.
//!
//! Individual rule families emit *raw* findings ([`lexical`] for the
//! per-line lints, [`determinism`] for the taint-scoped family); this
//! module owns everything cross-cutting:
//!
//! * **suppression** — `// vb-audit: allow(lint, reason)` directives
//!   filter matching findings on their target line, and each use is
//!   recorded;
//! * **`stale-allow`** — a well-formed directive that suppressed
//!   nothing is itself a finding, so suppressions cannot outlive their
//!   reason;
//! * **`allow-parse`** — malformed directives and directives naming an
//!   unknown lint are unsuppressable findings;
//! * **`dead-metric`** — the reverse direction of `metric-name`: every
//!   manifest entry must have at least one emission site somewhere in
//!   the scanned workspace (library sources and bench binaries), so
//!   the manifest cannot rot. Suppressable with a
//!   `# vb-audit: allow(dead-metric, reason)` directive in the
//!   manifest itself.

pub mod determinism;
pub mod lexical;

use crate::index::{crate_key, FileEntry, SymbolIndex};
use crate::manifest::Manifest;
use crate::scanner::{self, Scanned};
use crate::tokens::{self, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Lint names a directive may suppress.
pub const KNOWN_LINTS: &[&str] = &[
    "no-panic",
    "float-cmp",
    "horizon-literal",
    "metric-name",
    "div-guard",
    "unordered-iter",
    "wallclock-in-logic",
    "thread-derived",
    "env-read",
    "float-reduce-order",
    "dead-metric",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    /// 1-based.
    pub line: usize,
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Which rules apply to a file, and which sanctioned layers it belongs
/// to. See [`crate::spec_for`] for the path mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileSpec {
    /// `no-panic` (library code of the instrumented crates).
    pub no_panic: bool,
    /// `div-guard` (`vb-net::wan` and `vb-stats`).
    pub div_guard: bool,
    /// Deterministic-core crate: the determinism family applies to the
    /// whole file, not just tainted function extents (struct fields
    /// feed schedules without sitting in a function body).
    pub det_core: bool,
    /// Sanctioned wall-clock layer (`vb-telemetry`).
    pub wallclock_ok: bool,
    /// Sanctioned env configuration (`vb-par`, `vb-telemetry`, the
    /// bench harness).
    pub env_ok: bool,
    /// Sanctioned thread-count layer (`vb-par`): worker counts may
    /// partition work here.
    pub threads_ok: bool,
    /// Every function is a taint root (bench harness and figure loops).
    pub bench_root: bool,
    /// Contributes symbols and metric emissions to the workspace index
    /// but is not a lint subject beyond `metric-name` (bench binaries).
    pub index_only: bool,
}

/// One scanned + tokenized source, ready for the rule passes.
pub struct PreparedFile {
    pub rel: String,
    pub spec: FileSpec,
    pub scanned: Scanned,
    pub toks: Vec<Tok>,
}

impl PreparedFile {
    pub fn new(rel: &str, src: &str, spec: FileSpec) -> PreparedFile {
        let scanned = scanner::scan(src);
        let toks = tokens::tokenize(&scanned);
        PreparedFile {
            rel: rel.to_string(),
            spec,
            scanned,
            toks,
        }
    }
}

/// Run every rule over the prepared files and return the surviving,
/// sorted findings. `check_dead_metrics` enables the cross-file
/// manifest-coverage rule (on for workspace audits, off for
/// single-fixture runs, which would see almost every metric as dead).
pub fn run_all(
    files: &[PreparedFile],
    manifest: &Manifest,
    check_dead_metrics: bool,
) -> Vec<Finding> {
    let entries: Vec<FileEntry> = files
        .iter()
        .map(|f| FileEntry {
            rel: f.rel.clone(),
            crate_key: crate_key(&f.rel),
            bench_root: f.spec.bench_root,
        })
        .collect();
    let streams: Vec<Vec<Tok>> = files.iter().map(|f| f.toks.clone()).collect();
    let index = SymbolIndex::build(entries, &streams);
    let taint = index.tainted();

    let mut findings = Vec::new();
    for (file_id, file) in files.iter().enumerate() {
        let mut raw = lexical::run(file, manifest);
        if !file.spec.index_only {
            raw.extend(determinism::run(file, file_id, &index, &taint));
        }
        findings.extend(apply_allows(file, raw));
    }

    if check_dead_metrics {
        findings.extend(dead_metrics(files, manifest));
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    findings
}

/// Filter raw findings through the file's allow directives, reporting
/// malformed/unknown directives and stale allows.
fn apply_allows(file: &PreparedFile, raw: Vec<Finding>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Malformed allow directives are hard errors.
    for err in &file.scanned.errors {
        findings.push(Finding {
            file: file.rel.clone(),
            line: err.line,
            lint: "allow-parse",
            message: err.message.clone(),
        });
    }

    // Directives naming an unknown lint are errors too (typos would
    // otherwise silently fail to suppress).
    let mut allowed: BTreeMap<usize, BTreeSet<&'static str>> = BTreeMap::new();
    for allow in &file.scanned.allows {
        match KNOWN_LINTS.iter().find(|l| **l == allow.lint) {
            Some(lint) => {
                allowed.entry(allow.line).or_default().insert(lint);
            }
            None => findings.push(Finding {
                file: file.rel.clone(),
                line: allow.line,
                lint: "allow-parse",
                message: format!("allow directive names unknown lint `{}`", allow.lint),
            }),
        }
    }

    let mut used: BTreeSet<(usize, &'static str)> = BTreeSet::new();
    for finding in raw {
        if allowed
            .get(&finding.line)
            .is_some_and(|set| set.contains(finding.lint))
        {
            used.insert((finding.line, finding.lint));
        } else {
            findings.push(finding);
        }
    }

    // Stale allows: a directive that suppressed nothing. Directives
    // targeting `#[cfg(test)]` lines are exempt (rules skip test code
    // wholesale), as are index-only files (most rules do not run).
    if !file.spec.index_only {
        for (line, lints) in &allowed {
            let in_test = file
                .scanned
                .lines
                .get(line.saturating_sub(1))
                .is_some_and(|l| l.in_test);
            if in_test {
                continue;
            }
            for lint in lints {
                if !used.contains(&(*line, lint)) {
                    findings.push(Finding {
                        file: file.rel.clone(),
                        line: *line,
                        lint: "stale-allow",
                        message: format!(
                            "allow({lint}, …) suppresses nothing on this line; the lint no longer fires — remove the directive or fix the reason"
                        ),
                    });
                }
            }
        }
    }

    findings
}

/// The reverse manifest check: every declared metric needs at least one
/// emission site in the scanned workspace.
fn dead_metrics(files: &[PreparedFile], manifest: &Manifest) -> Vec<Finding> {
    let mut emitted: BTreeMap<&'static str, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        for site in lexical::metric_call_sites(&file.scanned) {
            if !site.in_test {
                emitted.entry(site.kind).or_default().insert(site.name);
            }
        }
    }

    let mut findings = Vec::new();
    let mut used_allows: BTreeSet<usize> = BTreeSet::new();
    for (kind, names) in &manifest.kinds {
        for name in names {
            if emitted
                .get(kind.as_str())
                .is_some_and(|set| set.contains(name))
            {
                continue;
            }
            let line = manifest.line_of(kind, name).unwrap_or(0);
            if manifest.allows_dead_metric(line) {
                used_allows.insert(line);
                continue;
            }
            findings.push(Finding {
                file: "metrics-manifest.toml".to_string(),
                line,
                lint: "dead-metric",
                message: format!(
                    "metric `{name}` ([{kind}]) has no emission site in the scanned workspace; remove the entry or add `# vb-audit: allow(dead-metric, reason)`"
                ),
            });
        }
    }

    // Stale manifest allows, same contract as in source files.
    for allow in &manifest.allows {
        if allow.lint == "dead-metric" && !used_allows.contains(&allow.line) {
            findings.push(Finding {
                file: "metrics-manifest.toml".to_string(),
                line: allow.line,
                lint: "stale-allow",
                message: "allow(dead-metric, …) suppresses nothing: the metric on this line has an emission site".to_string(),
            });
        }
    }
    findings
}
