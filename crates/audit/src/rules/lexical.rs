//! The per-line lexical rules (the original PR 5/6 lint set).
//!
//! | lint              | rule                                                        |
//! |-------------------|-------------------------------------------------------------|
//! | `no-panic`        | no `.unwrap()` / `.expect(` / `panic!` in library code of   |
//! |                   | the instrumented crates (sched, cluster, net, core)         |
//! | `float-cmp`       | no `.partial_cmp(` — float ordering must use `total_cmp`    |
//! | `horizon-literal` | no naked `96` / `672` outside the `STEPS_PER_DAY` /         |
//! |                   | `DAY_AHEAD_STEPS` definitions                               |
//! | `metric-name`     | telemetry metric names are `dot.snake` and declared in      |
//! |                   | `metrics-manifest.toml` under the matching kind             |
//! | `div-guard`       | float divisions in `vb-net::wan` and `vb-stats` carry a     |
//! |                   | visible degenerate-denominator guard                        |
//!
//! These rules emit *raw* findings; suppression (`allow` directives)
//! and stale-allow tracking happen in [`crate::rules`].

use crate::manifest::{is_dot_snake, Manifest};
use crate::rules::{Finding, PreparedFile};

/// How many preceding lines a `div-guard` guard expression may sit above
/// its division.
const DIV_GUARD_WINDOW: usize = 12;

/// Run the lexical rules over one file. Index-only files (bench
/// binaries) check metric names only: they are taint roots and metric
/// emitters, not general lint subjects.
pub fn run(file: &PreparedFile, manifest: &Manifest) -> Vec<Finding> {
    let mut findings = Vec::new();
    let spec = file.spec;

    // Metric names are checked file-level so multi-line call sites
    // (name on the line after the opening paren) are still seen.
    for site in metric_call_sites(&file.scanned) {
        if site.in_test {
            continue;
        }
        let (kind, name) = (site.kind, &site.name);
        let message = if !is_dot_snake(name) {
            format!("metric name `{name}` is not dot.snake (`crate_area.metric_name`)")
        } else if !manifest.declares(kind, name) {
            format!("metric `{name}` is not declared under [{kind}] in metrics-manifest.toml")
        } else {
            continue;
        };
        findings.push(Finding {
            file: file.rel.clone(),
            line: site.line,
            lint: "metric-name",
            message,
        });
    }

    for (idx, line) in file.scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        let mut push = |lint: &'static str, message: String| {
            findings.push(Finding {
                file: file.rel.clone(),
                line: lineno,
                lint,
                message,
            });
        };

        if spec.index_only {
            continue;
        }

        if spec.no_panic {
            for (pat, what) in [
                (".unwrap()", "unwrap()"),
                (".expect(", "expect()"),
                ("panic!", "panic!"),
            ] {
                if find_token(&line.code, pat).is_some() {
                    push(
                        "no-panic",
                        format!("`{what}` in library code; return a Result, fall back with telemetry, or add `vb-audit: allow(no-panic, reason)`"),
                    );
                }
            }
        }

        if line.code.contains(".partial_cmp(") && !line.code.contains("fn partial_cmp") {
            push(
                "float-cmp",
                "`partial_cmp` float ordering; use `total_cmp` for a total order over NaN"
                    .to_string(),
            );
        }

        if !line.code.contains("const STEPS_PER_DAY")
            && !line.code.contains("const DAY_AHEAD_STEPS")
        {
            for tok in number_tokens(&line.code) {
                if matches!(tok.as_str(), "96" | "96.0" | "672" | "672.0") {
                    push(
                        "horizon-literal",
                        format!("naked horizon literal `{tok}`; use vb_trace::STEPS_PER_DAY / DAY_AHEAD_STEPS"),
                    );
                }
            }
        }

        if spec.div_guard {
            for col in division_sites(&line.code) {
                let chars: Vec<char> = line.code.chars().collect();
                if literal_denominator(&chars, col) {
                    continue;
                }
                let start = idx.saturating_sub(DIV_GUARD_WINDOW);
                let guarded = file.scanned.lines[start..=idx]
                    .iter()
                    .any(|l| has_guard_token(&l.code));
                if !guarded {
                    push(
                        "div-guard",
                        "division without a visible degenerate-denominator guard within the preceding 12 lines".to_string(),
                    );
                }
            }
        }
    }
    findings
}

/// Find `pat` in `code` at a position not preceded by an identifier
/// character (so `counter!(` never matches inside `float_counter!(`,
/// and `panic!` never matches `some_panic!`).
fn find_token(code: &str, pat: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    let pat_chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    while i + pat_chars.len() <= chars.len() {
        if chars[i..i + pat_chars.len()] == pat_chars[..] {
            let prev_ok = i == 0 || {
                let p = chars[i - 1];
                !(p.is_ascii_alphanumeric() || p == '_')
            };
            if prev_ok {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Extract standalone numeric tokens: maximal digit/underscore runs not
/// preceded by an identifier char, with an optional `.digits` fraction.
fn number_tokens(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let starts = c.is_ascii_digit()
            && (i == 0 || !(chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_'));
        if !starts {
            i += 1;
            continue;
        }
        let mut tok = String::new();
        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
            tok.push(chars[i]);
            i += 1;
        }
        // Decimal fraction, but not a `..` range.
        if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
            tok.push('.');
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                tok.push(chars[i]);
                i += 1;
            }
        }
        // Skip suffixed literals' suffix so the next token starts clean.
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        out.push(tok);
    }
    out
}

/// One telemetry emission site.
pub(crate) struct MetricSite {
    /// Manifest kind the call must be declared under.
    pub kind: &'static str,
    pub name: String,
    /// 1-based line of the metric name.
    pub line: usize,
    pub in_test: bool,
}

/// Telemetry call sites across a whole file.
///
/// The macro name and delimiters are matched against the string-blanked
/// code view (so a lint pattern inside a string literal can never
/// register), while the metric name itself is read from the
/// string-preserving view at the same character offsets. The views are
/// joined across lines first, so a call whose name sits on the line
/// after the opening paren is still seen — both by `metric-name` and
/// by the `dead-metric` emission-site collection.
pub(crate) fn metric_call_sites(scanned: &crate::scanner::Scanned) -> Vec<MetricSite> {
    const PATTERNS: &[(&str, &str)] = &[
        ("float_counter!(", "float_counters"),
        ("counter!(", "counters"),
        ("gauge!(", "gauges"),
        ("histogram!(", "histograms"),
        ("span!(", "spans"),
        ("vb_telemetry::event(", "events"),
        ("series_sample(", "series"),
        ("series_extend(", "series"),
    ];
    let mut code_chars: Vec<char> = Vec::new();
    let mut ws_chars: Vec<char> = Vec::new();
    // Line number (1-based) and test flag per joined-character offset.
    let mut line_at: Vec<(usize, bool)> = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        for c in line.code.chars() {
            code_chars.push(c);
            line_at.push((idx + 1, line.in_test));
        }
        code_chars.push('\n');
        line_at.push((idx + 1, line.in_test));
        ws_chars.extend(line.with_strings.chars());
        ws_chars.push('\n');
    }

    let code_joined: String = code_chars.iter().collect();
    let mut out = Vec::new();
    for &(pat, kind) in PATTERNS {
        let mut search_from = 0;
        while let Some(rel) =
            find_token(&code_joined[char_to_byte(&code_joined, search_from)..], pat)
        {
            // `find_token` walks chars, so `rel` is a char offset into
            // the suffix.
            let at = search_from + rel;
            let mut j = at + pat.chars().count();
            while j < code_chars.len() && code_chars[j].is_whitespace() {
                j += 1;
            }
            search_from = at + 1;
            // Only statically-known names are checkable: expect an
            // opening quote right after the paren (macro-internal `$…`
            // expansions and passthrough idents are skipped).
            if code_chars.get(j) != Some(&'"') {
                continue;
            }
            let open = j;
            let mut close = open + 1;
            while close < code_chars.len() && code_chars[close] != '"' {
                close += 1;
            }
            if close >= ws_chars.len() {
                continue;
            }
            let name: String = ws_chars[open + 1..close].iter().collect();
            let (line, in_test) = line_at[open];
            out.push(MetricSite {
                kind,
                name,
                line,
                in_test,
            });
        }
    }
    out
}

/// Byte offset of the `n`-th char (the views are overwhelmingly ASCII;
/// this keeps slicing correct when they are not).
fn char_to_byte(s: &str, n: usize) -> usize {
    s.char_indices().nth(n).map_or(s.len(), |(b, _)| b)
}

/// Character columns of division operators on a line (`/` that is not
/// part of a comment delimiter — those are already stripped).
fn division_sites(code: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '/' {
            continue;
        }
        // `/=` compound assignment counts as a division too.
        let prev = if i > 0 { chars[i - 1] } else { ' ' };
        if prev == '/' || chars.get(i + 1) == Some(&'/') {
            continue;
        }
        out.push(i);
    }
    out
}

/// True when the denominator that follows column `col` is a numeric
/// literal (possibly parenthesised), which can never be degenerate.
fn literal_denominator(chars: &[char], col: usize) -> bool {
    let mut j = col + 1;
    if chars.get(j) == Some(&'=') {
        j += 1;
    }
    while j < chars.len() && (chars[j].is_whitespace() || chars[j] == '(') {
        j += 1;
    }
    chars.get(j).is_some_and(|c| c.is_ascii_digit())
}

/// Guard expressions that make a nearby division visibly safe.
fn has_guard_token(code: &str) -> bool {
    const GUARDS: &[&str] = &[
        "is_empty",
        "is_nan",
        "is_finite",
        ".max(",
        ".min(",
        ".clamp(",
        "== 0",
        "!= 0",
        "<= 0",
        "< 0",
        "> 0",
        ">= 1",
        "< 2",
        "debug_assert",
        "assert!",
        "< 1e-",
        "> 1e-",
        ">= 1e-",
        "EPSILON",
    ];
    GUARDS.iter().any(|g| code.contains(g))
}
