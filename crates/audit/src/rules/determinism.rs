//! The determinism rule family.
//!
//! Every schedule, trace and bench artifact in this workspace must be
//! bit-identical at any `VB_THREADS`. These rules taint the lexical
//! *sources* of nondeterminism and flag them where they can reach an
//! output-affecting entry point (see [`crate::index`] for the
//! reachability model):
//!
//! | lint                 | source                                                  |
//! |----------------------|---------------------------------------------------------|
//! | `unordered-iter`     | `HashMap` / `HashSet` in code that feeds schedules or   |
//! |                      | artifacts: iteration order varies per process           |
//! | `wallclock-in-logic` | `Instant::now` / `SystemTime` outside `vb-telemetry`    |
//! | `thread-derived`     | worker counts (`VB_THREADS`, `available_parallelism`)   |
//! |                      | influencing results rather than just partitioning       |
//! | `env-read`           | `std::env::var` outside the sanctioned config / bench   |
//! |                      | entry points                                            |
//! | `float-reduce-order` | shared-state accumulation inside a `par_map` closure —  |
//! |                      | float combining in completion order is non-associative  |
//!
//! Scope: a line is checked when it sits inside the extent of a
//! *tainted* function (reachable from `Policy::plan`, `GroupSim::step`,
//! `run_fleet`, `solve_mip_epoch`, or a bench figure loop), or — for
//! every rule here — anywhere in a deterministic-core crate
//! (`spec.det_core`), where struct fields and module-level items feed
//! the same outputs without sitting inside a function body. Sanctioned
//! layers opt out per rule: `vb-telemetry` owns wall-clock timing,
//! `vb-par` owns thread-count partitioning, the bench harness owns its
//! env configuration.

use crate::index::SymbolIndex;
use crate::rules::{Finding, PreparedFile};
use crate::tokens::TokKind;

/// The env-var name the executor reads; assembled from parts so the
/// audit's own pattern table never matches itself when self-scanning.
const THREADS_VAR: &str = concat!("VB_T", "HREADS");

pub fn run(
    file: &PreparedFile,
    file_id: usize,
    index: &SymbolIndex,
    taint: &[bool],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let spec = file.spec;
    let extents = index.tainted_extents(file_id, taint);
    let line_tainted = |lineno: usize| {
        spec.det_core || extents.iter().any(|&(s, e, _)| s <= lineno && lineno <= e)
    };
    let enclosing = |lineno: usize| {
        extents
            .iter()
            .filter(|&&(s, e, _)| s <= lineno && lineno <= e)
            .min_by_key(|&&(s, e, _)| e - s)
            .map(|&(_, _, f)| f.qual.clone())
    };
    let push = |lint: &'static str, lineno: usize, message: String, out: &mut Vec<Finding>| {
        out.push(Finding {
            file: file.rel.clone(),
            line: lineno,
            lint,
            message,
        });
    };

    // unordered-iter: token-level, so string literals never trip it.
    for tok in &file.toks {
        if tok.in_test || tok.kind != TokKind::Ident {
            continue;
        }
        if (tok.text == "HashMap" || tok.text == "HashSet") && line_tainted(tok.line) {
            let whence = match enclosing(tok.line) {
                Some(qual) => {
                    format!("in `{qual}`, which is reachable from an output-affecting entry point")
                }
                None => "at module level of a deterministic-core crate".to_string(),
            };
            push(
                "unordered-iter",
                tok.line,
                format!(
                    "`{}` {whence}; iteration order varies per process — use BTreeMap/BTreeSet, sort keys before iterating, or add a reasoned allow",
                    tok.text
                ),
                &mut findings,
            );
        }
    }

    // Line-pattern rules against the string-blanked code view.
    for (idx, line) in file.scanned.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test || !line_tainted(lineno) {
            continue;
        }
        if !spec.wallclock_ok {
            for pat in ["Instant::now", "SystemTime"] {
                if line.code.contains(pat) {
                    push(
                        "wallclock-in-logic",
                        lineno,
                        format!("`{pat}` in result-affecting code; wall-clock belongs to vb-telemetry (timings are excluded from determinism diffs there)"),
                        &mut findings,
                    );
                }
            }
        }
        if !spec.env_ok && line.code.contains("env::var") {
            push(
                "env-read",
                lineno,
                "`std::env::var` outside the sanctioned config/bench entry points; thread configuration through typed config structs instead".to_string(),
                &mut findings,
            );
        }
        if !spec.threads_ok {
            let derived = line.code.contains("available_parallelism")
                || line.with_strings.contains(THREADS_VAR);
            if derived {
                push(
                    "thread-derived",
                    lineno,
                    format!("worker-count source (`{THREADS_VAR}` / `available_parallelism`) in result-affecting code; thread counts may partition work but must never influence results"),
                    &mut findings,
                );
            }
        }
    }

    // float-reduce-order: shared-state accumulation inside the token
    // extent of a `par_map*` call. vb-par itself is exempt — its
    // work-sharing cursor is the partitioning mechanism, and results
    // are assembled in index order downstream of it.
    if !spec.threads_ok {
        findings.extend(par_closure_accumulation(file));
    }

    findings
}

const PAR_COMBINATORS: &[&str] = &["par_map", "par_map_chunked", "par_map_with"];
const SHARED_ACCUMULATORS: &[&str] = &["fetch_add", "fetch_sub", "fetch_update", "lock"];

/// Scan `par_map*(...)` call extents for shared-state accumulation.
fn par_closure_accumulation(file: &PreparedFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut findings = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let opens_call = t.kind == TokKind::Ident
            && PAR_COMBINATORS.contains(&t.text.as_str())
            && !t.in_test
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
        if !opens_call {
            i += 1;
            continue;
        }
        let open = &toks[i + 1];
        // Matching `)`: first closer at the same paren depth.
        let mut j = i + 2;
        let mut end = toks.len();
        while j < toks.len() {
            let n = &toks[j];
            if n.kind == TokKind::Punct && n.text == ")" && n.paren_depth == open.paren_depth {
                end = j;
                break;
            }
            j += 1;
        }
        for k in (i + 2)..end {
            let n = &toks[k];
            if n.kind == TokKind::Ident
                && SHARED_ACCUMULATORS.contains(&n.text.as_str())
                && toks
                    .get(k + 1)
                    .is_some_and(|p| p.kind == TokKind::Punct && p.text == "(")
            {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: n.line,
                    lint: "float-reduce-order",
                    message: format!(
                        "`{}` inside a `{}` closure accumulates in completion order; return per-item values and combine them index-ordered after the join",
                        n.text, t.text
                    ),
                });
            }
        }
        i = end.max(i + 2);
    }
    findings
}
