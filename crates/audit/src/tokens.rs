//! Token-stream layer over the lexical scanner.
//!
//! The scanner ([`crate::scanner`]) strips comments and blanks string
//! contents while preserving columns; this module turns that code view
//! into a flat token stream — identifiers, numbers, lifetimes and
//! punctuation — each token carrying its 1-based line, its character
//! column, the brace/paren nesting depth it sits at, and whether it is
//! inside a `#[cfg(test)]` item. The symbol index ([`crate::index`])
//! and the cross-file rules are built on this stream instead of raw
//! line text, so they can reason about adjacency ("identifier followed
//! by `(`"), delimiter matching and item extents without re-deriving
//! lexical structure.
//!
//! Depth convention: an opening delimiter is recorded at the depth it
//! opens *from*, and its matching closer at the same depth, so a pair
//! can be matched by scanning forward for the first closer with an
//! equal depth value.

use crate::scanner::Scanned;

/// Kind of a lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the stream does not distinguish them;
    /// consumers filter with [`is_keyword`]).
    Ident,
    /// Numeric literal (digit-led run, underscores and suffix absorbed).
    Number,
    /// `'ident` lifetime marker (char literals were blanked upstream).
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One token of the code view.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text; for `Punct` a single character.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 0-based character column of the first character.
    pub col: usize,
    /// `{}` nesting depth (see module docs for the convention).
    pub brace_depth: u32,
    /// `()` nesting depth.
    pub paren_depth: u32,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Tokenize a scanned file's code view.
pub fn tokenize(scanned: &Scanned) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut brace: u32 = 0;
    let mut paren: u32 = 0;
    for (lineno0, line) in scanned.lines.iter().enumerate() {
        let lineno = lineno0 + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && ident_char(chars[i]) {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    col: start,
                    brace_depth: brace,
                    paren_depth: paren,
                    in_test: line.in_test,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                // Digits, underscores, then any alphanumeric suffix
                // (`1e9`, `0xff`, `16usize`) and a decimal fraction.
                while i < chars.len() && ident_char(chars[i]) {
                    i += 1;
                }
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && ident_char(chars[i]) {
                        i += 1;
                    }
                }
                out.push(Tok {
                    kind: TokKind::Number,
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    col: start,
                    brace_depth: brace,
                    paren_depth: paren,
                    in_test: line.in_test,
                });
                continue;
            }
            if c == '\''
                && i + 1 < chars.len()
                && (chars[i + 1].is_ascii_alphabetic() || chars[i + 1] == '_')
            {
                // Lifetime: the scanner blanked char-literal interiors,
                // so `'a` followed by an identifier char here can only
                // be a lifetime (or a label, which reads the same).
                let start = i;
                i += 1;
                while i < chars.len() && ident_char(chars[i]) {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    col: start,
                    brace_depth: brace,
                    paren_depth: paren,
                    in_test: line.in_test,
                });
                continue;
            }
            // Punctuation: record delimiters at the depth they open
            // from / close back to, so pairs share a depth value.
            let (bd, pd) = match c {
                '{' => {
                    let d = (brace, paren);
                    brace += 1;
                    d
                }
                '}' => {
                    brace = brace.saturating_sub(1);
                    (brace, paren)
                }
                '(' => {
                    let d = (brace, paren);
                    paren += 1;
                    d
                }
                ')' => {
                    paren = paren.saturating_sub(1);
                    (brace, paren)
                }
                _ => (brace, paren),
            };
            out.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line: lineno,
                col: i,
                brace_depth: bd,
                paren_depth: pd,
                in_test: line.in_test,
            });
            i += 1;
        }
    }
    out
}

fn ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Rust keywords that can precede `(` without being calls.
pub fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "as" | "async"
            | "await"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        tokenize(&scan(src))
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_and_punct() {
        let toks = texts("let x = foo(42);");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "foo"]);
        assert!(toks.contains(&(TokKind::Number, "42".to_string())));
    }

    #[test]
    fn lifetimes_survive_but_char_literals_do_not() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            lifetimes,
            ["'a", "'a"],
            "char literal must not lex as a lifetime"
        );
    }

    #[test]
    fn depths_match_between_pairs() {
        let src = "fn f() {\n    g(h(1), 2);\n}\n";
        let toks = tokenize(&scan(src));
        let opens: Vec<&Tok> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text == "{")
            .collect();
        let closes: Vec<&Tok> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text == "}")
            .collect();
        assert_eq!(opens.len(), 1);
        assert_eq!(opens[0].brace_depth, closes[0].brace_depth);
        // Inner call parens nest one deeper than the outer call's.
        let parens: Vec<u32> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text == "(")
            .map(|t| t.paren_depth)
            .collect();
        assert_eq!(parens, [0, 0, 1]);
    }

    #[test]
    fn string_contents_produce_no_tokens() {
        let toks = texts(r#"let s = "fn bogus() { HashMap }";"#);
        assert!(
            !toks.iter().any(|(_, t)| t == "bogus" || t == "HashMap"),
            "blanked string interiors must not tokenize: {toks:?}"
        );
    }

    #[test]
    fn numbers_with_suffix_and_fraction() {
        let toks = texts("a(1_000u64, 2.5, 0xff)");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["1_000u64", "2.5", "0xff"]);
    }
}
