//! vb-audit: the workspace lint engine.
//!
//! A two-layer analysis pipeline over every non-shim, non-test Rust
//! source in the workspace:
//!
//! 1. **Lexing front end** — the column-preserving scanner
//!    ([`scanner`]) strips comments, blanks string contents, and tracks
//!    `#[cfg(test)]` extents; the token layer ([`tokens`]) lifts the
//!    code view into identifiers/numbers/lifetimes/punctuation with
//!    nesting depths.
//! 2. **Workspace symbol index** ([`index`]) — `fn`/`struct`/`impl`
//!    definitions, `use` imports and a lightweight call graph, built in
//!    one pass over all crates, with taint reachability from the
//!    output-affecting entry points (`Policy::plan`, `GroupSim::step`,
//!    `run_fleet`, `solve_mip_epoch`, the bench figure loops).
//!
//! The rules ([`rules`]) run on top: the per-line lexical lints, the
//! determinism family (`unordered-iter`, `wallclock-in-logic`,
//! `thread-derived`, `env-read`, `float-reduce-order`), the
//! bidirectional manifest checks (`metric-name` / `dead-metric`), and
//! the suppression meta-rules (`allow-parse`, `stale-allow`). Run it
//! with:
//!
//! ```text
//! cargo run -p vb-audit -- --workspace [--format=text|json|github]
//! ```
//!
//! Exit status is non-zero when any finding survives suppression, so
//! the CI `audit` job is blocking (`-D` semantics).

pub mod index;
pub mod manifest;
pub mod rules;
pub mod scanner;
pub mod tokens;

pub use manifest::Manifest;
pub use rules::{FileSpec, Finding, PreparedFile};

use std::path::{Path, PathBuf};

/// The lint engine: a parsed metrics manifest plus the rule set.
pub struct Engine {
    manifest: Manifest,
    check_dead_metrics: bool,
}

impl Engine {
    pub fn new(manifest: Manifest) -> Engine {
        Engine {
            manifest,
            check_dead_metrics: false,
        }
    }

    /// Enable the cross-file `dead-metric` rule (on for workspace
    /// audits; off by default so single-fixture runs do not see every
    /// unemitted manifest entry as dead).
    pub fn with_dead_metrics(mut self, on: bool) -> Engine {
        self.check_dead_metrics = on;
        self
    }

    /// Audit a single source text under the given label and spec. The
    /// symbol index is built from this file alone, so taint roots must
    /// be local (an entry-point method or a bench-root spec).
    pub fn audit_source(&self, label: &str, src: &str, spec: FileSpec) -> Vec<Finding> {
        self.audit_sources(&[(label.to_string(), src.to_string(), spec)])
    }

    /// Audit a set of sources as one workspace: the symbol index and
    /// taint reachability span all of them, so cross-file rules see
    /// edges between files.
    pub fn audit_sources(&self, sources: &[(String, String, FileSpec)]) -> Vec<Finding> {
        let files: Vec<PreparedFile> = sources
            .iter()
            .map(|(rel, src, spec)| PreparedFile::new(rel, src, *spec))
            .collect();
        rules::run_all(&files, &self.manifest, self.check_dead_metrics)
    }
}

/// Which path-scoped rules and sanctioned layers apply to a
/// workspace-relative path (forward-slash separated).
pub fn spec_for(rel: &str) -> FileSpec {
    let starts = |prefixes: &[&str]| prefixes.iter().any(|p| rel.starts_with(p));
    let no_panic = starts(&[
        "crates/sched/src/",
        "crates/cluster/src/",
        "crates/net/src/",
        "crates/core/src/",
    ]);
    let div_guard = rel == "crates/net/src/wan.rs" || rel.starts_with("crates/stats/src/");
    // The deterministic core: crates whose data structures feed
    // schedules, traces and bench artifacts directly. The determinism
    // family applies to whole files here, not just tainted extents.
    let det_core = starts(&[
        "crates/sched/src/",
        "crates/cluster/src/",
        "crates/net/src/",
        "crates/core/src/",
        "crates/solver/src/",
        "crates/trace/src/",
        "crates/stats/src/",
        "src/",
    ]);
    // Sanctioned layers: vb-telemetry owns wall-clock, vb-par owns
    // thread partitioning, and harness crates own env configuration.
    let telemetry = starts(&["crates/telemetry/src/"]);
    let par = starts(&["crates/par/src/"]);
    let bench_src = starts(&["crates/bench/src/"]);
    let bench_bin = rel.contains("/benches/");
    FileSpec {
        no_panic,
        div_guard,
        det_core,
        wallclock_ok: telemetry,
        env_ok: telemetry || par || bench_src || bench_bin,
        threads_ok: par,
        bench_root: bench_src || bench_bin,
        index_only: bench_bin,
    }
}

/// Collect the workspace-relative paths of every scannable source file:
/// `src/**/*.rs` at the root, `crates/*/src/**/*.rs`, and
/// `crates/*/benches/*.rs` (bench binaries join the symbol index as
/// taint roots and metric emitters). Shims, tests and examples live
/// outside those trees and are never visited.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
            let benches = member.join("benches");
            if benches.is_dir() {
                collect_rs(&benches, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audit the whole workspace rooted at `root`. Returns the surviving
/// findings (manifest problems included) or an I/O error message.
pub fn audit_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let manifest_path = root.join("metrics-manifest.toml");
    let mut findings = Vec::new();
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => match Manifest::parse(&text) {
            Ok(m) => m,
            Err(errors) => {
                for (line, message) in errors {
                    findings.push(Finding {
                        file: "metrics-manifest.toml".to_string(),
                        line,
                        lint: "metric-name",
                        message,
                    });
                }
                Manifest::default()
            }
        },
        Err(err) => return Err(format!("{}: {err}", manifest_path.display())),
    };

    let engine = Engine::new(manifest).with_dead_metrics(true);
    let mut sources = Vec::new();
    for path in workspace_sources(root).map_err(|e| e.to_string())? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let spec = spec_for(&rel);
        sources.push((rel, src, spec));
    }
    findings.extend(engine.audit_sources(&sources));
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}
