//! vb-audit: the workspace lint engine.
//!
//! Parses every non-shim, non-test Rust source in the workspace with a
//! hand-rolled comment/string-stripping scanner (see [`scanner`]) and
//! enforces the project-specific lints described in [`lints`]. Run it
//! with:
//!
//! ```text
//! cargo run -p vb-audit -- --workspace
//! ```
//!
//! Exit status is non-zero when any finding survives suppression, so
//! the CI `audit` job is blocking (`-D` semantics).

pub mod lints;
pub mod manifest;
pub mod scanner;

pub use lints::{FileSpec, Finding};
pub use manifest::Manifest;

use std::path::{Path, PathBuf};

/// The lint engine: a parsed metrics manifest plus the rule set.
pub struct Engine {
    manifest: Manifest,
}

impl Engine {
    pub fn new(manifest: Manifest) -> Engine {
        Engine { manifest }
    }

    /// Audit a single source text under the given label and spec.
    pub fn audit_source(&self, label: &str, src: &str, spec: FileSpec) -> Vec<Finding> {
        let scanned = scanner::scan(src);
        lints::run_lints(label, &scanned, spec, &self.manifest)
    }
}

/// Which path-scoped lints apply to a workspace-relative path
/// (forward-slash separated).
pub fn spec_for(rel: &str) -> FileSpec {
    let no_panic = [
        "crates/sched/src/",
        "crates/cluster/src/",
        "crates/net/src/",
        "crates/core/src/",
    ]
    .iter()
    .any(|p| rel.starts_with(p));
    let div_guard = rel == "crates/net/src/wan.rs" || rel.starts_with("crates/stats/src/");
    FileSpec {
        no_panic,
        div_guard,
    }
}

/// Collect the workspace-relative paths of every scannable source file:
/// `src/**/*.rs` at the root plus `crates/*/src/**/*.rs`. Shims, tests,
/// benches and examples live outside those trees and are never visited.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audit the whole workspace rooted at `root`. Returns the surviving
/// findings (manifest problems included) or an I/O error message.
pub fn audit_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let manifest_path = root.join("metrics-manifest.toml");
    let mut findings = Vec::new();
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => match Manifest::parse(&text) {
            Ok(m) => m,
            Err(errors) => {
                for (line, message) in errors {
                    findings.push(Finding {
                        file: "metrics-manifest.toml".to_string(),
                        line,
                        lint: "metric-name",
                        message,
                    });
                }
                Manifest::default()
            }
        },
        Err(err) => return Err(format!("{}: {err}", manifest_path.display())),
    };

    let engine = Engine::new(manifest);
    for path in workspace_sources(root).map_err(|e| e.to_string())? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        findings.extend(engine.audit_source(&rel, &src, spec_for(&rel)));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}
