//! Parser for `metrics-manifest.toml`.
//!
//! The manifest is valid TOML but the audit tool only understands (and
//! only needs) a flat subset, parsed by hand since the workspace has no
//! registry access:
//!
//! ```toml
//! [counters]
//! "solver.pivots" = "total simplex pivots across all solves"
//!
//! [gauges]
//! "net.wan_busy_fraction" = "fraction of wall-clock the WAN link is busy"
//! ```
//!
//! Section names are the metric kinds (`counters`, `float_counters`,
//! `gauges`, `histograms`, `spans`, `events`, `series`); keys are the declared
//! metric names. Every telemetry call site in the workspace must name a
//! metric declared under the matching kind.

use std::collections::{BTreeMap, BTreeSet};

/// A parsed `# vb-audit: allow(lint, reason)` directive inside the
/// manifest (the only lint that fires on manifest lines is
/// `dead-metric`).
#[derive(Debug, Clone)]
pub struct ManifestAllow {
    /// 1-based line the suppression applies to.
    pub line: usize,
    pub lint: String,
    #[allow(dead_code)]
    pub reason: String,
}

/// The metric kinds the telemetry layer exposes.
pub const KINDS: &[&str] = &[
    "counters",
    "float_counters",
    "gauges",
    "histograms",
    "spans",
    "events",
    "series",
];

/// Parsed manifest: kind → set of declared metric names, plus the
/// declaration line of every entry (for `dead-metric` findings) and
/// any `#`-comment allow directives.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    pub kinds: BTreeMap<String, BTreeSet<String>>,
    /// `(kind, name)` → 1-based declaration line.
    pub lines: BTreeMap<(String, String), usize>,
    pub allows: Vec<ManifestAllow>,
}

impl Manifest {
    /// True when `name` is declared under `kind`.
    pub fn declares(&self, kind: &str, name: &str) -> bool {
        self.kinds.get(kind).is_some_and(|set| set.contains(name))
    }

    /// Declaration line of a manifest entry.
    pub fn line_of(&self, kind: &str, name: &str) -> Option<usize> {
        self.lines
            .get(&(kind.to_string(), name.to_string()))
            .copied()
    }

    /// True when a `dead-metric` allow directive targets this line.
    pub fn allows_dead_metric(&self, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.line == line && a.lint == "dead-metric")
    }

    /// Parse the manifest text. Returns the manifest or a list of
    /// line-numbered parse errors.
    pub fn parse(text: &str) -> Result<Manifest, Vec<(usize, String)>> {
        let mut manifest = Manifest::default();
        let mut errors = Vec::new();
        let mut section: Option<String> = None;

        for (lineno0, raw) in text.lines().enumerate() {
            let lineno = lineno0 + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            // Allow directives live in `#` comments; a directive on a
            // comment-only line applies to the next line, an inline one
            // to its own. Malformed directives are parse errors.
            let comment = raw.split_once('#').map_or("", |x| x.1);
            if let Some(pos) = comment.find("vb-audit:") {
                let rest = comment[pos + "vb-audit:".len()..].trim();
                match crate::scanner::parse_allow(rest) {
                    Ok((lint, reason)) => {
                        if lint != "dead-metric" {
                            errors.push((
                                lineno,
                                format!(
                                    "only dead-metric can be allowed in the manifest, not `{lint}`"
                                ),
                            ));
                        } else {
                            manifest.allows.push(ManifestAllow {
                                line: if line.is_empty() { lineno + 1 } else { lineno },
                                lint,
                                reason,
                            });
                        }
                    }
                    Err(message) => errors.push((lineno, message)),
                }
            }
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim();
                if !KINDS.contains(&name) {
                    errors.push((lineno, format!("unknown metric kind `[{name}]`")));
                    section = None;
                    continue;
                }
                section = Some(name.to_string());
                manifest.kinds.entry(name.to_string()).or_default();
                continue;
            }
            let Some((key, _value)) = line.split_once('=') else {
                errors.push((
                    lineno,
                    format!("expected `\"name\" = \"description\"`, got `{line}`"),
                ));
                continue;
            };
            let key = key.trim().trim_matches('"').trim();
            let Some(section) = section.as_ref() else {
                errors.push((
                    lineno,
                    format!("metric `{key}` declared outside any [kind] section"),
                ));
                continue;
            };
            if key.is_empty() {
                errors.push((lineno, "empty metric name".to_string()));
                continue;
            }
            if !is_dot_snake(key) {
                errors.push((lineno, format!("metric name `{key}` is not dot.snake")));
                continue;
            }
            let set = manifest.kinds.entry(section.clone()).or_default();
            if !set.insert(key.to_string()) {
                errors.push((lineno, format!("duplicate metric `{key}` in [{section}]")));
            }
            manifest
                .lines
                .insert((section.clone(), key.to_string()), lineno);
        }
        if errors.is_empty() {
            Ok(manifest)
        } else {
            Err(errors)
        }
    }
}

/// `dot.snake`: at least two lowercase/digit/underscore segments joined
/// by single dots.
pub fn is_dot_snake(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}
