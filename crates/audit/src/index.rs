//! Workspace symbol index and nondeterminism taint reachability.
//!
//! Built in one pass over every scanned file's token stream
//! ([`crate::tokens`]): `fn` definitions with their body extents
//! (qualified by the enclosing `impl` type), `struct` definitions,
//! `use` imports, and a lightweight call graph. Calls are resolved by
//! name within the defining crate, plus cross-crate edges through
//! `vb_xxx::name(...)` paths and `use vb_xxx::name` imports — a sound
//! over-approximation: a name collision adds edges, it never drops one.
//!
//! The determinism rule family uses the index one way: compute the set
//! of functions **reachable from output-affecting entry points**
//! (`Policy::plan`, `GroupSim::step`, `run_fleet`, `solve_mip_epoch`,
//! and every function in a bench-root file — the paper-figure loops),
//! then flag nondeterminism sources only inside those extents (plus,
//! for `unordered-iter`, anywhere in the deterministic-core crates,
//! where struct fields feed schedules without passing through a
//! function body).

use crate::tokens::{is_keyword, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Functions whose results are artifacts: schedules, fleet runs,
/// per-epoch MIP solutions. Free functions match by name; `plan` and
/// `step` only as methods (an `impl` block qualifies them).
pub const ENTRY_FNS: &[&str] = &["run_fleet", "solve_mip_epoch"];
pub const ENTRY_METHODS: &[&str] = &["plan", "step"];

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// `Type::name` for methods, `name` for free functions.
    pub qual: String,
    /// Index into the file table.
    pub file: usize,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Line of the body's opening `{` (== `line` when on one line);
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    pub is_test: bool,
}

/// One `struct` definition (name and line; extents are not needed by
/// the current rules).
#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub file: usize,
    pub line: usize,
}

/// One `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplDef {
    pub type_name: String,
    pub trait_name: Option<String>,
    pub file: usize,
    pub line: usize,
}

/// One imported leaf name: `use vb_telemetry::series_sample` records
/// `root = "vb_telemetry"`, `leaf = "series_sample"`.
#[derive(Debug, Clone)]
pub struct UseImport {
    pub file: usize,
    pub line: usize,
    pub root: String,
    pub leaf: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the enclosing function in `fns`.
    pub caller: usize,
    pub callee: String,
    /// First path segment when the callee was `::`-qualified
    /// (`vb_par::par_map` records `Some("vb_par")`).
    pub root: Option<String>,
    pub line: usize,
}

/// Per-file identity inside the index.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// Workspace-relative, forward-slash path.
    pub rel: String,
    /// Crate key: the directory under `crates/` (`sched`, `solver`, …)
    /// or `root` for the top-level `src/` tree.
    pub crate_key: String,
    /// Every function in this file is a taint root (bench harness and
    /// paper-figure loops).
    pub bench_root: bool,
}

/// The workspace symbol index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    pub files: Vec<FileEntry>,
    pub fns: Vec<FnDef>,
    pub structs: Vec<StructDef>,
    pub impls: Vec<ImplDef>,
    pub uses: Vec<UseImport>,
    pub calls: Vec<CallSite>,
}

/// Crate key for a workspace-relative path.
pub fn crate_key(rel: &str) -> String {
    match rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
    {
        Some(dir) => dir.to_string(),
        None => "root".to_string(),
    }
}

/// Map a path root segment (`vb_par`, `crate`, `self`, …) to a crate
/// key when it names a workspace crate.
fn root_to_crate(root: &str) -> Option<String> {
    root.strip_prefix("vb_").map(|r| r.replace('_', "-"))
}

impl SymbolIndex {
    /// Build the index over every file's token stream.
    pub fn build(files: Vec<FileEntry>, streams: &[Vec<Tok>]) -> SymbolIndex {
        let mut idx = SymbolIndex {
            files,
            ..SymbolIndex::default()
        };
        for (file_id, toks) in streams.iter().enumerate() {
            idx.index_file(file_id, toks);
        }
        idx
    }

    fn index_file(&mut self, file_id: usize, toks: &[Tok]) {
        // Stacks of open scopes, keyed by the brace depth their body
        // opened at: `impl` blocks (for method qualification) and
        // functions (to attribute call sites to the innermost one).
        let mut impl_stack: Vec<(String, u32)> = Vec::new();
        let mut fn_stack: Vec<(usize, u32)> = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Punct && t.text == "}" {
                while impl_stack.last().is_some_and(|&(_, d)| d == t.brace_depth) {
                    impl_stack.pop();
                }
                while let Some(&(fid, d)) = fn_stack.last() {
                    if d == t.brace_depth {
                        self.fns[fid].body =
                            Some((self.fns[fid].body.map_or(t.line, |(s, _)| s), t.line));
                        fn_stack.pop();
                    } else {
                        break;
                    }
                }
                i += 1;
                continue;
            }
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "fn" => {
                    let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident)
                    else {
                        // `fn(...)` pointer type.
                        i += 1;
                        continue;
                    };
                    let name = name_tok.text.clone();
                    let qual = match impl_stack.last() {
                        Some((ty, _)) => format!("{ty}::{name}"),
                        None => name.clone(),
                    };
                    // Find the body's `{` (or `;` for a bodyless trait
                    // method) — signatures contain no braces.
                    let mut j = i + 2;
                    let mut body_open = None;
                    while let Some(n) = toks.get(j) {
                        if n.kind == TokKind::Punct {
                            if n.text == "{" {
                                body_open = Some((j, n.line, n.brace_depth));
                                break;
                            }
                            if n.text == ";" && n.paren_depth == t.paren_depth {
                                break;
                            }
                        }
                        j += 1;
                    }
                    let fid = self.fns.len();
                    self.fns.push(FnDef {
                        name,
                        qual,
                        file: file_id,
                        line: t.line,
                        body: body_open.map(|(_, line, _)| (line, line)),
                        is_test: t.in_test,
                    });
                    if let Some((open_idx, _, depth)) = body_open {
                        fn_stack.push((fid, depth));
                        i = open_idx + 1;
                    } else {
                        i = j + 1;
                    }
                    continue;
                }
                "struct" => {
                    if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        self.structs.push(StructDef {
                            name: n.text.clone(),
                            file: file_id,
                            line: t.line,
                        });
                    }
                    i += 2;
                    continue;
                }
                "impl" => {
                    // Collect idents at angle-depth 0 up to the opening
                    // `{`; `impl Trait for Type` takes the last ident
                    // before/after `for`, `impl Type` the last overall.
                    let mut angle: i32 = 0;
                    let mut before_for: Option<String> = None;
                    let mut after_for: Option<String> = None;
                    let mut seen_for = false;
                    let mut j = i + 1;
                    let mut open = None;
                    while let Some(n) = toks.get(j) {
                        match (&n.kind, n.text.as_str()) {
                            (TokKind::Punct, "<") => angle += 1,
                            (TokKind::Punct, ">") => angle -= 1,
                            (TokKind::Punct, "{") => {
                                open = Some((j, n.brace_depth));
                                break;
                            }
                            (TokKind::Punct, ";") => break,
                            (TokKind::Ident, "for") if angle == 0 => seen_for = true,
                            (TokKind::Ident, word) if angle == 0 && !is_keyword(word) => {
                                if seen_for {
                                    after_for.get_or_insert_with(|| word.to_string());
                                } else {
                                    before_for = Some(word.to_string());
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some((open_idx, depth)) = open {
                        let (ty, tr) = if seen_for {
                            (
                                after_for.unwrap_or_else(|| "_".to_string()),
                                before_for.clone(),
                            )
                        } else {
                            (before_for.unwrap_or_else(|| "_".to_string()), None)
                        };
                        self.impls.push(ImplDef {
                            type_name: ty.clone(),
                            trait_name: tr,
                            file: file_id,
                            line: t.line,
                        });
                        impl_stack.push((ty, depth));
                        i = open_idx + 1;
                    } else {
                        i = j + 1;
                    }
                    continue;
                }
                "use" => {
                    i = self.index_use(file_id, toks, i);
                    continue;
                }
                word => {
                    // Call site: identifier directly followed by `(`.
                    let is_call = toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
                    if is_call && !is_keyword(word) && !t.in_test {
                        if let Some(&(caller, _)) = fn_stack.last() {
                            // Walk back over a `seg::seg::name` path to
                            // find the root segment.
                            let mut first = i;
                            while first >= 2
                                && toks[first - 1].kind == TokKind::Punct
                                && toks[first - 1].text == ":"
                                && toks[first - 2].kind == TokKind::Punct
                                && toks[first - 2].text == ":"
                                && first >= 3
                                && toks[first - 3].kind == TokKind::Ident
                            {
                                first -= 3;
                            }
                            let root = (first != i).then(|| toks[first].text.clone());
                            self.calls.push(CallSite {
                                caller,
                                callee: word.to_string(),
                                root,
                                line: t.line,
                            });
                        }
                    }
                    i += 1;
                    continue;
                }
            }
        }
    }

    /// Parse one `use` item starting at token `start` (the `use`
    /// keyword); returns the index one past its terminating `;`.
    fn index_use(&mut self, file_id: usize, toks: &[Tok], start: usize) -> usize {
        let mut j = start + 1;
        let mut root: Option<String> = None;
        let mut prev_ident: Option<(String, usize)> = None;
        let mut after_as = false;
        while let Some(n) = toks.get(j) {
            match (&n.kind, n.text.as_str()) {
                (TokKind::Punct, ";") => {
                    if let Some((leaf, line)) = prev_ident.take() {
                        self.push_use(file_id, line, &root, leaf);
                    }
                    return j + 1;
                }
                (TokKind::Punct, ",") | (TokKind::Punct, "}") => {
                    if let Some((leaf, line)) = prev_ident.take() {
                        self.push_use(file_id, line, &root, leaf);
                    }
                    after_as = false;
                }
                (TokKind::Punct, ":") => {
                    // Path continues: the pending ident was a segment,
                    // not a leaf (skip the second `:` implicitly).
                    prev_ident = None;
                }
                (TokKind::Ident, "as") => after_as = true,
                (TokKind::Ident, word) => {
                    if root.is_none() {
                        root = Some(word.to_string());
                    }
                    if after_as {
                        // Alias replaces the original leaf.
                        after_as = false;
                    }
                    prev_ident = Some((word.to_string(), n.line));
                }
                (TokKind::Punct, "*") => prev_ident = None,
                _ => {}
            }
            j += 1;
        }
        toks.len()
    }

    fn push_use(&mut self, file: usize, line: usize, root: &Option<String>, leaf: String) {
        let Some(root) = root else { return };
        if root == &leaf {
            // `use std;` style bare-crate import: nothing callable.
            return;
        }
        self.uses.push(UseImport {
            file,
            line,
            root: root.clone(),
            leaf,
        });
    }

    /// Compute the taint bit per function: reachable from an
    /// output-affecting entry point. Test functions are never roots and
    /// never propagate.
    pub fn tainted(&self) -> Vec<bool> {
        // (crate key, fn name) -> fn ids.
        let mut by_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (id, f) in self.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let key = self.files[f.file].crate_key.clone();
            by_name.entry((key, f.name.clone())).or_default().push(id);
        }
        // Per-file import map: leaf name -> imported-from crate keys.
        let mut imports: BTreeMap<(usize, String), BTreeSet<String>> = BTreeMap::new();
        for u in &self.uses {
            if let Some(key) = root_to_crate(&u.root) {
                imports
                    .entry((u.file, u.leaf.clone()))
                    .or_default()
                    .insert(key);
            }
        }

        let mut tainted = vec![false; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (id, f) in self.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let is_entry = ENTRY_FNS.contains(&f.name.as_str())
                || (ENTRY_METHODS.contains(&f.name.as_str()) && f.qual.contains("::"))
                || self.files[f.file].bench_root;
            if is_entry {
                tainted[id] = true;
                queue.push(id);
            }
        }

        while let Some(id) = queue.pop() {
            let caller_file = self.fns[id].file;
            let caller_crate = self.files[caller_file].crate_key.clone();
            for call in self.calls.iter().filter(|c| c.caller == id) {
                let mut target_keys: BTreeSet<String> = BTreeSet::new();
                match &call.root {
                    Some(root) => {
                        match root_to_crate(root) {
                            Some(key) => {
                                target_keys.insert(key);
                            }
                            None => {
                                // `Type::method` or `self::`/`crate::`
                                // path: resolve within the crate.
                                target_keys.insert(caller_crate.clone());
                            }
                        }
                    }
                    None => {
                        target_keys.insert(caller_crate.clone());
                        if let Some(keys) = imports.get(&(caller_file, call.callee.clone())) {
                            target_keys.extend(keys.iter().cloned());
                        }
                    }
                }
                for key in target_keys {
                    if let Some(ids) = by_name.get(&(key, call.callee.clone())) {
                        for &tid in ids {
                            if !tainted[tid] {
                                tainted[tid] = true;
                                queue.push(tid);
                            }
                        }
                    }
                }
            }
        }
        tainted
    }

    /// Tainted body extents `(start_line, end_line)` for one file,
    /// given the taint bits from [`SymbolIndex::tainted`].
    pub fn tainted_extents(&self, file: usize, tainted: &[bool]) -> Vec<(usize, usize, &FnDef)> {
        self.fns
            .iter()
            .enumerate()
            .filter(|&(id, f)| tainted[id] && f.file == file)
            .filter_map(|(_, f)| f.body.map(|(_, end)| (f.line, end, f)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use crate::tokens::tokenize;

    fn build(files: &[(&str, &str, bool)]) -> SymbolIndex {
        let entries: Vec<FileEntry> = files
            .iter()
            .map(|(rel, _, bench)| FileEntry {
                rel: rel.to_string(),
                crate_key: crate_key(rel),
                bench_root: *bench,
            })
            .collect();
        let streams: Vec<Vec<Tok>> = files
            .iter()
            .map(|(_, src, _)| tokenize(&scan(src)))
            .collect();
        SymbolIndex::build(entries, &streams)
    }

    #[test]
    fn fn_defs_get_extents_and_impl_qualification() {
        let src = "impl GroupSim {\n    pub fn step(&mut self) {\n        helper();\n    }\n}\nfn helper() {\n}\n";
        let idx = build(&[("crates/sched/src/sim.rs", src, false)]);
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].qual, "GroupSim::step");
        assert_eq!(idx.fns[0].body, Some((2, 4)));
        assert_eq!(idx.fns[1].qual, "helper");
        assert_eq!(idx.fns[1].body, Some((6, 7)));
        assert_eq!(idx.calls.len(), 1);
        assert_eq!(idx.calls[0].callee, "helper");
    }

    #[test]
    fn trait_impl_takes_the_for_type() {
        let src = "impl Policy for MipPolicy {\n    fn plan(&mut self) {}\n}\n";
        let idx = build(&[("crates/sched/src/mip.rs", src, false)]);
        assert_eq!(idx.impls[0].type_name, "MipPolicy");
        assert_eq!(idx.impls[0].trait_name.as_deref(), Some("Policy"));
        assert_eq!(idx.fns[0].qual, "MipPolicy::plan");
    }

    #[test]
    fn taint_reaches_through_intra_crate_calls() {
        let src = "impl P {\n    fn plan(&self) {\n        inner();\n    }\n}\nfn inner() {\n    deeper();\n}\nfn deeper() {}\nfn unrelated() {}\n";
        let idx = build(&[("crates/sched/src/mip.rs", src, false)]);
        let taint = idx.tainted();
        let by_name = |n: &str| {
            idx.fns
                .iter()
                .position(|f| f.name == n)
                .map(|i| taint[i])
                .unwrap_or(false)
        };
        assert!(by_name("plan"));
        assert!(by_name("inner"));
        assert!(by_name("deeper"));
        assert!(!by_name("unrelated"));
    }

    #[test]
    fn taint_crosses_crates_through_qualified_paths_and_uses() {
        let a = "fn run_fleet() {\n    vb_sched::drive();\n    imported_helper();\n}\n";
        let b = "pub fn drive() {}\npub fn imported_helper() {}\nfn dormant() {}\n";
        let a_full = format!("use vb_sched::imported_helper;\n{a}");
        let idx = build(&[
            ("crates/core/src/fleet.rs", &a_full, false),
            ("crates/sched/src/lib.rs", b, false),
        ]);
        let taint = idx.tainted();
        let get = |n: &str| taint[idx.fns.iter().position(|f| f.name == n).unwrap()];
        assert!(get("run_fleet"));
        assert!(get("drive"), "vb_sched::drive() path edge");
        assert!(get("imported_helper"), "use-import edge");
        assert!(!get("dormant"));
    }

    #[test]
    fn bench_root_files_taint_every_fn_but_tests_never_root() {
        let src = "fn figure_loop() {\n    vb_sched::drive();\n}\n#[cfg(test)]\nmod tests {\n    fn helper_in_test() {}\n}\n";
        let lib = "pub fn drive() {}\n";
        let idx = build(&[
            ("crates/bench/src/fig9.rs", src, true),
            ("crates/sched/src/lib.rs", lib, false),
        ]);
        let taint = idx.tainted();
        let get = |n: &str| taint[idx.fns.iter().position(|f| f.name == n).unwrap()];
        assert!(get("figure_loop"));
        assert!(get("drive"));
        assert!(!get("helper_in_test"));
    }

    #[test]
    fn free_fn_named_step_is_not_an_entry_point() {
        let src = "fn step() {}\n";
        let idx = build(&[("crates/trace/src/lib.rs", src, false)]);
        assert!(!idx.tainted()[0], "entry methods require an impl block");
    }
}
