//! Differential contract for the event-driven step core: on identical
//! configs (same catalog, seeds, policies) the event-driven driver must
//! produce **bit-identical** `DetailedRun`s — every per-step stat row
//! and every summary field — to the legacy full-scan loop it replaces.
//! Any divergence, however small, means a lost or spurious wake-up.

use vb_sched::greedy::GreedyPolicy;
use vb_sched::{DetailedRun, GroupSim, GroupSimConfig, MipConfig, MipPolicy, Policy, SimCore};
use vb_trace::Catalog;

fn run_with(
    core: SimCore,
    cfg: &GroupSimConfig,
    names: &[&str],
    policy: &mut dyn Policy,
) -> DetailedRun {
    let cfg = GroupSimConfig {
        core,
        ..cfg.clone()
    };
    GroupSim::new(&Catalog::europe(42), names, cfg)
        .expect("catalog sites exist")
        .run_detailed(policy)
}

/// Assert full bit-equality, with a per-step diff on failure so a
/// divergence pins the first offending step instead of dumping both
/// runs.
fn assert_identical(cfg: &GroupSimConfig, names: &[&str], mk: &dyn Fn() -> Box<dyn Policy>) {
    let legacy = run_with(SimCore::Legacy, cfg, names, mk().as_mut());
    let event = run_with(SimCore::EventDriven, cfg, names, mk().as_mut());
    for (l, e) in legacy.steps.iter().zip(&event.steps) {
        assert_eq!(l, e, "first divergent step under {}", legacy.summary.policy);
    }
    assert_eq!(
        legacy, event,
        "event-driven run diverged from legacy under {}",
        legacy.summary.policy
    );
}

/// Table-1-sized group (three sites), two simulated days.
fn table1_cfg() -> GroupSimConfig {
    GroupSimConfig {
        days: 2,
        ..GroupSimConfig::default()
    }
}

const TABLE1_SITES: [&str; 3] = ["NO-solar", "UK-wind", "PT-wind"];

#[test]
fn greedy_runs_bit_match() {
    assert_identical(&table1_cfg(), &TABLE1_SITES, &|| {
        Box::new(GreedyPolicy::new())
    });
}

#[test]
fn mip_24h_runs_bit_match() {
    assert_identical(&table1_cfg(), &TABLE1_SITES, &|| {
        Box::new(MipPolicy::new(MipConfig::mip_24h()))
    });
}

/// MIP with preemptive moves enabled: exercises the pending-move queue
/// and the movable-app offer path.
#[test]
fn mip_with_moves_bit_matches() {
    let cfg = GroupSimConfig {
        max_movable: 8,
        ..table1_cfg()
    };
    assert_identical(&cfg, &TABLE1_SITES, &|| {
        Box::new(MipPolicy::new(MipConfig::mip()))
    });
}

/// MIP-peak: `preemptive_drain()` is on, exercising the drain event
/// queue, its in-phase worklist, and the ascending-order rule.
#[test]
fn mip_peak_runs_bit_match() {
    let cfg = GroupSimConfig {
        max_movable: 8,
        ..table1_cfg()
    };
    assert_identical(&cfg, &TABLE1_SITES, &|| {
        Box::new(MipPolicy::new(MipConfig::mip_peak()))
    });
}

/// Subgraph-restricted re-hosting (Fig 6 step 2) under the drain-heavy
/// policy: movable-target restriction interacts with every phase.
#[test]
fn subgraph_runs_bit_match() {
    let cfg = GroupSimConfig {
        cores_per_site: 400,
        days: 2,
        seed: 7,
        max_movable: 8,
        subgraphs: Some(vec![vec![0, 1], vec![2, 3]]),
        ..GroupSimConfig::default()
    };
    let names = ["NO-solar", "UK-wind", "PT-wind", "ES-wind"];
    assert_identical(&cfg, &names, &|| {
        Box::new(MipPolicy::new(MipConfig::mip_peak()))
    });
}

/// Small sites under-provisioned for the workload: constant power
/// stress maximises hibernation/eviction/queue churn, the worst case
/// for event bookkeeping.
#[test]
fn stressed_small_sites_bit_match() {
    let cfg = GroupSimConfig {
        cores_per_site: 300,
        days: 2,
        seed: 11,
        ..GroupSimConfig::default()
    };
    assert_identical(&cfg, &["NO-solar", "UK-wind"], &|| {
        Box::new(GreedyPolicy::new())
    });
}
