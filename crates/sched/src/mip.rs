//! The MIP site-selection policies of §3.1.
//!
//! At each planning epoch the policy builds a mixed-integer program over
//! the look-ahead horizon:
//!
//! * **Decision variables** — a binary `x[a][s]` per (application, site)
//!   pair, for both the newly arrived apps and the movable existing
//!   apps (each app goes to exactly one site).
//! * **Displacement model** — per site `s` and look-ahead bucket `b`,
//!   `d[s][b] ≥ load[s][b] − capacity[s][b]` with `d ≥ 0` captures how
//!   many committed cores the forecast power cannot host. Because every
//!   objective term is non-decreasing in `d`, the optimum pins
//!   `d = max(0, load − capacity)` exactly.
//! * **O1 (total)** — `min Σ d · gb_per_core + Σ move_cost`: displaced
//!   capacity, converted to bytes via the memory density, plus the full
//!   memory of any existing app the plan relocates preemptively.
//!   Displaced cores are what *force* migrations at run time, so this is
//!   a convex surrogate of the paper's "total migration bytes": the
//!   byte-exact objective (positive increments of the displacement
//!   process) is not LP-representable without per-bucket binaries — a
//!   planner could "pre-pay" displacement to game any LP relaxation of
//!   it — and the simulation, not the planner, is what measures real
//!   bytes for Table 1.
//! * **O2 (peak)** — an auxiliary `z ≥ d[s][b] · gb_per_core` over all
//!   sites and buckets; adding `λ·z` to the objective implements the
//!   paper's second-order peak goal ("MIP-peak"): avoid concentrating
//!   displacement in any single site-interval, spreading forced
//!   migrations across sites and time.
//!
//! The three Table 1 variants are configurations of this one model:
//!
//! | Variant  | Horizon        | Peak term |
//! |----------|----------------|-----------|
//! | MIP      | entire period  | no        |
//! | MIP-24h  | next 24 hours  | no        |
//! | MIP-peak | entire period  | yes       |
//!
//! The solve is exact (branch & bound over the `vb-solver` simplex);
//! if the solver ever fails (iteration safety valve), the epoch falls
//! back to greedy placement, so a simulation always completes.
//!
//! With [`MipConfig::reuse_across_epochs`] (default on) the policy also
//! caches the solved root relaxation's basis together with the model's
//! structural fingerprint. When the next epoch builds a structurally
//! identical model — same apps × sites × buckets, only the
//! forecast-driven RHS and objective moved — the root is dual-repaired
//! from that basis instead of re-solved from scratch; any structural
//! drift or failed repair falls back to a cold root. The plan is
//! bit-identical either way (the branch & bound below the root is
//! shared); only the simplex pivot count drops. [`MipStats`] counts
//! hits, misses, and greedy fallbacks per policy.

use crate::greedy::GreedyPolicy;
use crate::policy::{Assignment, PlanContext, Policy, SiteSnapshot};
use crate::sim::STEPS_PER_DAY;
use serde::{Deserialize, Serialize};
use vb_solver::{LinExpr, Model, Sense, SolveError, VarId};

/// MIP policy configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MipConfig {
    /// Look-ahead horizon in 15-minute steps (e.g. 672 = 7 days for
    /// "MIP", 96 = 24 h for "MIP-24h"). The effective horizon is capped
    /// by the forecast vectors the context carries.
    pub horizon_steps: u32,
    /// Include the O2 peak objective ("MIP-peak").
    pub minimize_peak: bool,
    /// Weight λ of the peak term relative to total bytes. The paper
    /// treats O2 as second-order; a moderate weight implements that
    /// priority ordering.
    pub peak_weight: f64,
    /// GB of migration traffic per displaced core (≈ VM memory per
    /// core; 4 GB for the default workload).
    pub gb_per_core: f64,
    /// Multiplier on the preemptive-move cost relative to the app's
    /// memory. The displacement surrogate charges a doomed placement in
    /// every bucket it remains displaced, while a runtime eviction costs
    /// the memory only once — a factor > 1 compensates, so plain-O1
    /// variants move only when the forecast deficit is deep and long,
    /// while MIP-peak (whose peak term values spreading) moves earlier.
    pub move_cost_factor: f64,
    /// Weight of the load-balance term: the §3.1 objective "balancing
    /// load between subgraphs/sites", implemented as a penalty on the
    /// worst forecast utilization across sites over the near-term
    /// buckets. Balances placements that the displacement objective
    /// leaves tied, keeping headroom against forecast error everywhere.
    pub balance_weight: f64,
    /// Branch & bound node budget per epoch (anytime solve).
    pub max_nodes: usize,
    /// Reuse solver state across epochs: cache the model skeleton and
    /// the root relaxation's optimal basis, and warm-start the next
    /// epoch's root from it when the structure is unchanged (same apps ×
    /// sites × buckets; only RHS/objective moved). Purely a performance
    /// lever — plans are identical either way, because the branch & bound
    /// below the root is shared and a warm root lands on the same optimum.
    pub reuse_across_epochs: bool,
    /// Display name (Table 1 row label).
    pub name: String,
}

impl MipConfig {
    /// The "MIP" variant: O1 only, whole-period look-ahead.
    pub fn mip() -> MipConfig {
        MipConfig {
            horizon_steps: 7 * STEPS_PER_DAY,
            minimize_peak: false,
            peak_weight: 0.0,
            gb_per_core: 4.0,
            move_cost_factor: 6.0,
            balance_weight: 4.0,
            max_nodes: 400,
            reuse_across_epochs: true,
            name: "MIP".into(),
        }
    }

    /// The "MIP-24h" variant: O1 only, next-day look-ahead.
    pub fn mip_24h() -> MipConfig {
        MipConfig {
            horizon_steps: STEPS_PER_DAY,
            minimize_peak: false,
            peak_weight: 0.0,
            gb_per_core: 4.0,
            move_cost_factor: 6.0,
            balance_weight: 4.0,
            max_nodes: 400,
            reuse_across_epochs: true,
            name: "MIP-24h".into(),
        }
    }

    /// The "MIP-peak" variant: O1 + O2, whole-period look-ahead.
    pub fn mip_peak() -> MipConfig {
        MipConfig {
            horizon_steps: 7 * STEPS_PER_DAY,
            minimize_peak: true,
            peak_weight: 24.0,
            gb_per_core: 4.0,
            move_cost_factor: 2.5,
            balance_weight: 4.0,
            max_nodes: 400,
            reuse_across_epochs: true,
            name: "MIP-peak".into(),
        }
    }
}

/// Per-run solver statistics of a MIP policy: how many epochs were
/// planned through the exact solver, how often the cross-epoch warm
/// start paid off, and how often the epoch degraded to greedy. Surfaced
/// in run reports so regressions in the reuse machinery show up in
/// `scripts/diff_run_reports.py`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MipStats {
    /// Epochs that reached the MIP solve (excludes empty and
    /// single-site epochs, which never build a model).
    pub epochs_planned: usize,
    /// Epochs whose root relaxation was repaired from the previous
    /// epoch's optimal basis instead of solved from scratch.
    pub epoch_warm_hits: usize,
    /// Epochs solved through a cold root: the first epoch, a structural
    /// change (apps/sites/buckets moved), a failed warm repair, or
    /// `reuse_across_epochs = false`.
    pub epoch_warm_misses: usize,
    /// Epochs where the exact solve failed and greedy stepped in.
    pub fallback_epochs: usize,
}

impl MipStats {
    /// Warm-start hit rate over solver-planned epochs (0.0 when none).
    pub fn warm_hit_rate(&self) -> f64 {
        let tried = self.epoch_warm_hits + self.epoch_warm_misses;
        if tried == 0 {
            0.0
        } else {
            self.epoch_warm_hits as f64 / tried as f64
        }
    }
}

/// The MIP policy (all three paper variants).
#[derive(Debug, Clone)]
pub struct MipPolicy {
    cfg: MipConfig,
    fallback: GreedyPolicy,
    /// Last epoch's model skeleton + optimal root state, reused to
    /// warm-start the next structurally identical epoch.
    cache: Option<vb_solver::EpochCache>,
    stats: MipStats,
}

impl MipPolicy {
    /// Create a policy from a variant configuration.
    pub fn new(cfg: MipConfig) -> MipPolicy {
        MipPolicy {
            cfg,
            fallback: GreedyPolicy::new(),
            cache: None,
            stats: MipStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MipConfig {
        &self.cfg
    }

    /// How many epochs fell back to greedy (0 in healthy runs).
    pub fn fallbacks_used(&self) -> usize {
        self.stats.fallback_epochs
    }

    /// Solver statistics accumulated so far in this run.
    pub fn stats(&self) -> MipStats {
        self.stats
    }

    fn solve(&mut self, ctx: &PlanContext) -> Result<Vec<Assignment>, SolveError> {
        self.stats.epochs_planned += 1;
        let n_sites = ctx.sites.len();
        // Ceiling division: a partial final bucket still belongs to the
        // look-ahead (a 100-step horizon with 12-step buckets must plan
        // 9 buckets, not truncate to 8 and go blind for the tail).
        let buckets = ctx
            .horizon_buckets()
            .min(self.cfg.horizon_steps.div_ceil(ctx.bucket_steps.max(1)) as usize)
            .max(1);
        let gbpc = self.cfg.gb_per_core;

        let mut m = Model::new(Sense::Minimize);

        // Placement binaries for new apps and movable apps.
        let x_new: Vec<Vec<VarId>> = ctx
            .new_apps
            .iter()
            .map(|a| {
                (0..n_sites)
                    .map(|s| m.bin_var(&format!("new{}s{s}", a.id.0)))
                    .collect()
            })
            .collect();
        let x_mov: Vec<Vec<VarId>> = ctx
            .movable
            .iter()
            .map(|a| {
                (0..n_sites)
                    .map(|s| m.bin_var(&format!("mov{}s{s}", a.id.0)))
                    .collect()
            })
            .collect();

        // Each app at exactly one site.
        for row in x_new.iter().chain(&x_mov) {
            let e = LinExpr {
                terms: row.iter().map(|&v| (v, 1.0)).collect(),
                constant: 0.0,
            };
            m.add_eq(e, 1.0);
        }

        let mut objective = LinExpr::zero();

        // Preemptive-move cost: moving app a away from its current site
        // costs its full memory. mem · (1 − x[a][current]) expands to
        // constant mem with coefficient −mem on the stay-home binary.
        for (a, app) in ctx.movable.iter().enumerate() {
            let cost = app.mem_gb * self.cfg.move_cost_factor;
            objective = objective
                .add_const(cost)
                .add_term(x_mov[a][app.current_site], -cost);
        }

        // Displacement variables per (site, bucket). Every objective
        // term is non-decreasing in d, so the optimum pins
        // d = max(0, load − capacity) exactly.
        let inf = f64::INFINITY;
        let peak_z = self.cfg.minimize_peak.then(|| m.var("peak", 0.0, inf));
        for (s, site) in ctx.sites.iter().enumerate() {
            for b in 0..buckets {
                let d = m.var(&format!("d_s{s}b{b}"), 0.0, inf);

                // d ≥ load − capacity. load = committed + Σ cores·x.
                // Rearranged: d − Σ cores·x ≥ committed − capacity.
                let mut lhs = LinExpr::term(d, 1.0);
                for (a, app) in ctx.new_apps.iter().enumerate() {
                    if alive(app.spec.lifetime_steps, ctx.bucket_steps, b) {
                        lhs = lhs.add_term(x_new[a][s], -(app.spec.cores() as f64));
                    }
                }
                for (a, app) in ctx.movable.iter().enumerate() {
                    if alive(app.remaining_steps, ctx.bucket_steps, b) {
                        lhs = lhs.add_term(x_mov[a][s], -(app.cores as f64));
                    }
                }
                let committed = site.committed_cores.get(b).copied().unwrap_or(0.0);
                let capacity = site.capacity_forecast_cores.get(b).copied().unwrap_or(0.0);
                m.add_ge(lhs, committed - capacity);

                objective = objective.add_term(d, gbpc);
                if let Some(z) = peak_z {
                    // z ≥ d·gbpc  →  d·gbpc − z ≤ 0.
                    let row = LinExpr::term(d, gbpc).add_term(z, -1.0);
                    m.add_le(row, 0.0);
                }
            }
        }
        if let Some(z) = peak_z {
            objective = objective.add_term(z, self.cfg.peak_weight);
        }

        // Load balancing (§3.1 goal 2): penalise the worst forecast
        // utilization across sites over the near-term buckets. The
        // weight is expressed in "GB per site's worth of utilization":
        // balance_weight = 1 means running one site at 100 % while
        // others idle costs as much as displacing ~1/4 of a site-bucket.
        if self.cfg.balance_weight > 0.0 {
            let z_util = m.var("util", 0.0, inf);
            let near_buckets = buckets.min(8);
            for (s, site) in ctx.sites.iter().enumerate() {
                // Balance against the *running minimum* capacity: a site
                // whose power is about to collapse offers no balancing
                // room now, however sunny or windy it currently is.
                let mut running_min = f64::INFINITY;
                for b in 0..near_buckets {
                    running_min = running_min
                        .min(site.capacity_forecast_cores.get(b).copied().unwrap_or(0.0));
                    let cap = running_min;
                    if cap < 0.05 * site.total_cores as f64 {
                        continue; // dead-site buckets: displacement term rules
                    }
                    // z ≥ load / cap  →  (committed + Σ cores·x)/cap − z ≤ 0.
                    let mut row = LinExpr::term(z_util, -1.0);
                    for (a, app) in ctx.new_apps.iter().enumerate() {
                        if alive(app.spec.lifetime_steps, ctx.bucket_steps, b) {
                            row = row.add_term(x_new[a][s], app.spec.cores() as f64 / cap);
                        }
                    }
                    for (a, app) in ctx.movable.iter().enumerate() {
                        if alive(app.remaining_steps, ctx.bucket_steps, b) {
                            row = row.add_term(x_mov[a][s], app.cores as f64 / cap);
                        }
                    }
                    let committed = site.committed_cores.get(b).copied().unwrap_or(0.0);
                    m.add_le(row, -(committed / cap));
                }
            }
            let site_scale = ctx
                .sites
                .iter()
                .map(|s| s.total_cores as f64)
                .fold(0.0, f64::max);
            objective =
                objective.add_term(z_util, self.cfg.balance_weight * gbpc * site_scale * 0.25);
        }

        m.set_objective(objective);
        // Anytime solve: epochs arrive every 3 simulated hours; a node
        // budget keeps planning latency bounded while the root dive
        // guarantees a good incumbent. With cross-epoch reuse on, the
        // root relaxation is repaired from the previous epoch's optimal
        // basis whenever the model structure is unchanged; both paths
        // run the same branch & bound below the root, so the resulting
        // plan is identical — only the pivot count differs.
        let sol = if self.cfg.reuse_across_epochs {
            match vb_solver::solve_mip_epoch(&m, self.cfg.max_nodes, self.cache.as_ref()) {
                Ok((sol, next_cache, warm_hit)) => {
                    if warm_hit {
                        self.stats.epoch_warm_hits += 1;
                    } else {
                        self.stats.epoch_warm_misses += 1;
                    }
                    self.cache = Some(next_cache);
                    sol
                }
                Err(e) => {
                    // A failed epoch leaves no state worth trusting.
                    self.cache = None;
                    return Err(e);
                }
            }
        } else {
            m.solve_bounded(self.cfg.max_nodes)?
        };
        // A solver-tolerance pathology could in principle leave NaN/∞ in
        // the solution; route it into the greedy fallback rather than
        // letting a NaN-poisoned readout abort the whole simulation.
        if !sol.objective.is_finite() || sol.values().iter().any(|v| !v.is_finite()) {
            // Don't warm-start the next epoch from a basis that produced
            // non-finite values.
            self.cache = None;
            return Err(SolveError::BadModel("non-finite MIP solution".into()));
        }

        // Read the chosen site per app. `total_cmp` keeps the readout
        // total even under unexpected NaN (belt and braces with the
        // finiteness check above).
        let mut out = Vec::new();
        for (a, app) in ctx.new_apps.iter().enumerate() {
            let site = (0..n_sites)
                .max_by(|&i, &j| sol.value(x_new[a][i]).total_cmp(&sol.value(x_new[a][j])))
                // vb-audit: allow(no-panic, plan() rejects contexts with fewer than 2 sites)
                .expect("sites non-empty");
            out.push(Assignment { app: app.id, site });
        }
        for (a, app) in ctx.movable.iter().enumerate() {
            let site = (0..n_sites)
                .max_by(|&i, &j| sol.value(x_mov[a][i]).total_cmp(&sol.value(x_mov[a][j])))
                // vb-audit: allow(no-panic, plan() rejects contexts with fewer than 2 sites)
                .expect("sites non-empty");
            if site != app.current_site {
                out.push(Assignment { app: app.id, site });
            }
        }
        Ok(out)
    }
}

/// Is an app with `remaining` steps of lifetime still alive in bucket
/// `b` (buckets of `bucket_steps`)? Uses the bucket's start instant.
fn alive(remaining: u32, bucket_steps: u32, b: usize) -> bool {
    remaining as u64 > b as u64 * bucket_steps as u64
}

impl Policy for MipPolicy {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn preemptive_drain(&self) -> bool {
        self.cfg.minimize_peak
    }

    /// Forecast-aware re-hosting: among sites that can admit the app
    /// now, prefer the one whose *worst* day-ahead admissible capacity
    /// leaves the most room — avoiding homes that are about to dip.
    fn choose_rehost(&mut self, sites: &[SiteSnapshot], cores: u32) -> Option<usize> {
        sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.headroom() >= cores)
            .max_by(|(_, a), (_, b)| {
                let score = |s: &SiteSnapshot| s.forecast_min_24h_cores - s.allocated_cores as f64;
                score(a).total_cmp(&score(b))
            })
            .map(|(i, _)| i)
    }

    fn mip_stats(&self) -> Option<MipStats> {
        Some(self.stats)
    }

    fn plan(&mut self, ctx: &PlanContext) -> Vec<Assignment> {
        let _span = vb_telemetry::span!("sched.mip_plan");
        if ctx.new_apps.is_empty() && ctx.movable.is_empty() {
            return Vec::new();
        }
        if ctx.sites.len() < 2 {
            // Single site: nothing to decide.
            return ctx
                .new_apps
                .iter()
                .map(|a| Assignment { app: a.id, site: 0 })
                .collect();
        }
        let warm_hits_before = self.stats.epoch_warm_hits;
        let (plan, fell_back) = match self.solve(ctx) {
            Ok(plan) => (plan, 0.0),
            Err(_) => {
                self.stats.fallback_epochs += 1;
                vb_telemetry::counter!("sched.mip_fallbacks").inc();
                vb_telemetry::event(
                    "sched.mip_fallback",
                    &[
                        ("policy", self.cfg.name.as_str().into()),
                        ("epoch_step", ctx.now.into()),
                    ],
                );
                (self.fallback.plan(ctx), 1.0)
            }
        };
        vb_telemetry::series_sample(
            "sched.mip_epoch",
            self.cfg.name.as_str(),
            ctx.now,
            &[
                ("moves_planned", plan.len() as f64),
                (
                    "warm_hit",
                    (self.stats.epoch_warm_hits - warm_hits_before) as f64,
                ),
                ("fallback", fell_back),
            ],
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppSpec;
    use crate::policy::{AppId, MovableApp, NewApp, SitePlanInfo};
    use vb_cluster::VmKind;

    fn site(name: &str, capacity: Vec<f64>, committed: Vec<f64>) -> SitePlanInfo {
        SitePlanInfo {
            name: name.into(),
            total_cores: 1_000,
            current_budget_cores: capacity[0] as u32,
            allocated_cores: committed[0] as u32,
            capacity_forecast_cores: capacity,
            committed_cores: committed,
        }
    }

    fn new_app(id: usize, n_vms: u32, lifetime: u32) -> NewApp {
        NewApp {
            id: AppId(id),
            spec: AppSpec {
                n_vms,
                cores_per_vm: 4,
                mem_per_vm_gb: 16.0,
                kind: VmKind::Stable,
                lifetime_steps: lifetime,
            },
        }
    }

    #[test]
    fn avoids_the_site_whose_power_will_collapse() {
        // Site 0 has more power *now* but collapses in bucket 2; site 1
        // is steady. Greedy would pick site 0; the MIP must not.
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![
                site("collapsing", vec![800.0, 800.0, 0.0, 0.0], vec![0.0; 4]),
                site("steady", vec![500.0, 500.0, 500.0, 500.0], vec![0.0; 4]),
            ],
            new_apps: vec![new_app(0, 25, 48)], // 100 cores, alive all 4 buckets
            movable: vec![],
        };
        let plan = MipPolicy::new(MipConfig::mip()).plan(&ctx);
        assert_eq!(
            plan,
            vec![Assignment {
                app: AppId(0),
                site: 1
            }]
        );
        // And greedy indeed falls for it.
        let gplan = GreedyPolicy::new().plan(&ctx);
        assert_eq!(gplan[0].site, 0);
    }

    #[test]
    fn short_app_can_use_the_collapsing_site() {
        // The same collapse, but the app finishes before it: the MIP can
        // place it anywhere cost-free; both placements have zero
        // predicted overhead, so just assert feasibility and zero cost.
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![
                site("collapsing", vec![800.0, 800.0, 0.0, 0.0], vec![0.0; 4]),
                site("steady", vec![500.0; 4], vec![0.0; 4]),
            ],
            new_apps: vec![new_app(0, 25, 12)], // one bucket of life
            movable: vec![],
        };
        let plan = MipPolicy::new(MipConfig::mip()).plan(&ctx);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn balances_apps_across_sites_when_capacity_binds() {
        // Two steady sites of 300 cores each; two 200-core apps. Placing
        // both on one site displaces 100 cores; splitting avoids it.
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![
                site("a", vec![300.0; 4], vec![0.0; 4]),
                site("b", vec![300.0; 4], vec![0.0; 4]),
            ],
            new_apps: vec![new_app(0, 50, 48), new_app(1, 50, 48)],
            movable: vec![],
        };
        let plan = MipPolicy::new(MipConfig::mip()).plan(&ctx);
        assert_ne!(plan[0].site, plan[1].site, "apps must split");
    }

    #[test]
    fn moves_an_existing_app_off_a_doomed_site_when_cheaper() {
        // A movable app (200 cores / 800 GB) sits on a site whose
        // forecast drops to zero. Staying costs ~500 displaced
        // core-buckets (2 000 GB of surrogate) — moving costs its 800 GB
        // memory once and zero displacement. The plan must move it.
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![
                site("doomed", vec![500.0, 100.0, 0.0, 0.0], vec![0.0; 4]),
                site("ok", vec![500.0; 4], vec![0.0; 4]),
            ],
            new_apps: vec![],
            movable: vec![MovableApp {
                id: AppId(7),
                current_site: 0,
                cores: 200,
                mem_gb: 800.0,
                remaining_steps: 48,
            }],
        };
        let mut pol = MipPolicy::new(MipConfig::mip_peak());
        let plan = pol.plan(&ctx);
        assert_eq!(
            plan,
            vec![Assignment {
                app: AppId(7),
                site: 1
            }]
        );
        assert_eq!(pol.fallbacks_used(), 0);
    }

    #[test]
    fn peak_variant_prefers_shallow_displacement() {
        // One 120-core app. Site "deep" hosts it fine for 3 buckets then
        // displaces all of it at once; site "shallow" displaces 30 cores
        // in every bucket. Total displacement ties at 120 core-buckets,
        // so O1 alone is indifferent — the O2 peak term must pick the
        // shallow profile (30 ≪ 120 peak).
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![
                site("deep", vec![300.0, 300.0, 300.0, 0.0], vec![0.0; 4]),
                site("shallow", vec![90.0, 90.0, 90.0, 90.0], vec![0.0; 4]),
            ],
            new_apps: vec![new_app(0, 30, 48)], // 120 cores
            movable: vec![],
        };
        let peak_plan = MipPolicy::new(MipConfig::mip_peak()).plan(&ctx);
        assert_eq!(peak_plan[0].site, 1, "O2 prefers the shallow profile");
    }

    #[test]
    fn every_new_app_is_assigned_exactly_once() {
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![
                site("a", vec![400.0; 8], vec![100.0; 8]),
                site("b", vec![300.0; 8], vec![50.0; 8]),
                site("c", vec![200.0; 8], vec![0.0; 8]),
            ],
            new_apps: (0..5).map(|i| new_app(i, 10 + i as u32 * 5, 96)).collect(),
            movable: vec![],
        };
        for cfg in [
            MipConfig::mip(),
            MipConfig::mip_24h(),
            MipConfig::mip_peak(),
        ] {
            let plan = MipPolicy::new(cfg).plan(&ctx);
            let mut ids: Vec<usize> = plan.iter().map(|a| a.app.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3, 4]);
            assert!(plan.iter().all(|a| a.site < 3));
        }
    }

    #[test]
    fn empty_epoch_is_a_no_op() {
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![site("a", vec![100.0; 2], vec![0.0; 2])],
            new_apps: vec![],
            movable: vec![],
        };
        assert!(MipPolicy::new(MipConfig::mip()).plan(&ctx).is_empty());
    }

    #[test]
    fn variant_names_match_table_1() {
        assert_eq!(MipPolicy::new(MipConfig::mip()).name(), "MIP");
        assert_eq!(MipPolicy::new(MipConfig::mip_24h()).name(), "MIP-24h");
        assert_eq!(MipPolicy::new(MipConfig::mip_peak()).name(), "MIP-peak");
    }

    #[test]
    fn horizon_covers_partial_final_bucket() {
        // horizon_steps = 100 with 12-step buckets is 8⅓ buckets. The
        // old truncating division planned only 8 and went blind for the
        // tail: a site collapsing in bucket 8 looked perfect. Ceiling
        // division keeps the partial bucket in view.
        let cfg = MipConfig {
            horizon_steps: 100,
            ..MipConfig::mip()
        };
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![
                // Roomier than "steady" for 8 buckets, dead in the 9th.
                site(
                    "trap",
                    vec![800.0, 800.0, 800.0, 800.0, 800.0, 800.0, 800.0, 800.0, 0.0],
                    vec![0.0; 9],
                ),
                site("steady", vec![500.0; 9], vec![0.0; 9]),
            ],
            new_apps: vec![new_app(0, 25, 100)], // 100 cores, alive in bucket 8
            movable: vec![],
        };
        let plan = MipPolicy::new(cfg).plan(&ctx);
        assert_eq!(plan[0].site, 1, "the partial final bucket must be planned");
    }

    #[test]
    fn rehost_survives_nan_forecast_scores() {
        // A NaN forecast must not panic the readout; total_cmp keeps the
        // comparison total and NaN sorts above every finite score, so
        // the finite site still wins via max_by order stability checks.
        let snap = |forecast: f64| SiteSnapshot {
            budget_cores: 100,
            allocated_cores: 0,
            total_cores: 100,
            admission_cap: 100,
            forecast_min_24h_cores: forecast,
        };
        let sites = [snap(f64::NAN), snap(50.0)];
        let mut pol = MipPolicy::new(MipConfig::mip());
        let chosen = pol.choose_rehost(&sites, 10);
        assert!(chosen.is_some(), "must pick a site, not panic");
    }

    #[test]
    fn epoch_reuse_matches_cold_plans_and_counts_hits() {
        // Five epochs over the same apps × sites × buckets with drifting
        // forecasts. The capacities are chosen so each epoch has a
        // *unique* zero-cost placement (new0→a, new1→b, movable stays),
        // hence warm and cold roots must converge to the same plan.
        // balance_weight = 0 keeps the constraint matrix free of
        // capacity-dependent coefficients, so only the RHS moves between
        // epochs and the skeleton matches.
        let cfg = MipConfig {
            balance_weight: 0.0,
            ..MipConfig::mip()
        };
        let mut warm = MipPolicy::new(cfg.clone());
        let mut cold = MipPolicy::new(MipConfig {
            reuse_across_epochs: false,
            ..cfg
        });
        for e in 0..5 {
            let drift = 5.0 * e as f64;
            let ctx = PlanContext {
                now: 0,
                bucket_steps: 12,
                sites: vec![
                    site("a", vec![250.0 + drift; 4], vec![40.0; 4]),
                    site("b", vec![140.0 - 3.0 * drift / 5.0; 4], vec![40.0; 4]),
                ],
                new_apps: vec![new_app(0, 30, 48), new_app(1, 20, 48)],
                movable: vec![MovableApp {
                    id: AppId(9),
                    current_site: 0,
                    cores: 80,
                    mem_gb: 320.0,
                    remaining_steps: 48,
                }],
            };
            assert_eq!(warm.plan(&ctx), cold.plan(&ctx), "epoch {e}");
        }
        let st = warm.mip_stats().unwrap();
        assert_eq!(st.epochs_planned, 5);
        assert_eq!(st.epoch_warm_hits, 4, "every epoch after the first is warm");
        assert_eq!(st.epoch_warm_misses, 1);
        assert_eq!(st.fallback_epochs, 0);
        assert!((st.warm_hit_rate() - 0.8).abs() < 1e-12);
        // The reuse-disabled policy never attempts the warm path.
        let cst = cold.mip_stats().unwrap();
        assert_eq!(cst.epoch_warm_hits + cst.epoch_warm_misses, 0);
        assert_eq!(cst.epochs_planned, 5);
    }

    #[test]
    fn alive_uses_bucket_start() {
        assert!(alive(1, 12, 0));
        assert!(!alive(12, 12, 1));
        assert!(alive(13, 12, 1));
    }
}
