//! The four-step scheduling pipeline of Figure 6.
//!
//! 1. **Subgraph identification** — enumerate the k-cliques of the 50 ms
//!    site graph and rank them by the coefficient of variation of their
//!    combined generation (steadiest first). Delegates to `vb-net`.
//! 2. **Subgraph selection** — keep a short candidate list; the
//!    experiments operate on the top-ranked clique (the paper likewise
//!    evaluates one multi-VB group).
//! 3. **Site selection** — per-application assignment inside the chosen
//!    subgraph, done by a [`crate::policy::Policy`] (greedy or MIP).
//! 4. **VM placement** — packing VMs onto servers within a site;
//!    "any state-of-the-art approach can be used for this step" — the
//!    workspace uses `vb-cluster`'s Protean-style best-fit.

use serde::{Deserialize, Serialize};
use vb_net::{k_cliques, rank_cliques_by_cov, CliqueScore, SiteGraph};
use vb_stats::TimeSeries;
use vb_trace::Catalog;

/// Pipeline knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Clique size (paper: k = 2 to 5).
    pub k: usize,
    /// RTT threshold for graph edges, ms (paper: 50).
    pub latency_threshold_ms: f64,
    /// How many candidate subgraphs to keep after ranking.
    pub candidates: usize,
    /// Day-of-year the ranking window starts at.
    pub start_day: u32,
    /// Length of the ranking window in days (the paper ranks over 3-day
    /// intervals).
    pub window_days: u32,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            k: 3,
            latency_threshold_ms: 50.0,
            candidates: 10,
            start_day: 120,
            window_days: 3,
        }
    }
}

/// Step 1 + 2: enumerate k-cliques of the latency graph and return the
/// `candidates` steadiest ones (lowest combined cov first).
pub fn identify_subgraphs(catalog: &Catalog, cfg: &PipelineConfig) -> Vec<CliqueScore> {
    let graph = SiteGraph::build(catalog.sites().to_vec(), cfg.latency_threshold_ms);
    let cliques = k_cliques(&graph, cfg.k);
    let sites = catalog.sites();
    let traces: Vec<TimeSeries> = vb_par::par_map(sites.len(), |i| {
        let s = &sites[i];
        vb_trace::generate_in(s, cfg.start_day, cfg.window_days, catalog.field())
            .scale(s.capacity_mw)
    });
    let mut ranked = rank_cliques_by_cov(&graph, &cliques, &traces);
    ranked.truncate(cfg.candidates);
    ranked
}

/// Convenience: the names of the sites in the top-ranked k-clique — the
/// multi-VB group the experiments run on.
///
/// # Panics
/// Panics if the graph has no k-clique at all.
pub fn select_group(catalog: &Catalog, cfg: &PipelineConfig) -> Vec<String> {
    let ranked = identify_subgraphs(catalog, cfg);
    // vb-audit: allow(no-panic, documented `# Panics` contract of this convenience API)
    let best = ranked.first().expect("no k-clique in the site graph");
    best.nodes
        .iter()
        .map(|&i| catalog.sites()[i].name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifies_and_ranks_candidates() {
        let catalog = Catalog::europe(42);
        let cfg = PipelineConfig {
            candidates: 5,
            ..PipelineConfig::default()
        };
        let ranked = identify_subgraphs(&catalog, &cfg);
        assert_eq!(ranked.len(), 5);
        // Ascending cov, all within the latency threshold.
        for w in ranked.windows(2) {
            assert!(w[0].cov <= w[1].cov + 1e-12);
        }
        for c in &ranked {
            assert_eq!(c.nodes.len(), 3);
            assert!(c.diameter_ms < 50.0);
        }
    }

    #[test]
    fn top_group_is_steadier_than_typical_singles() {
        let catalog = Catalog::europe(42);
        let cfg = PipelineConfig::default();
        let ranked = identify_subgraphs(&catalog, &cfg);
        let best = &ranked[0];
        // The best 3-clique's combined cov must beat the median single
        // site's cov (that's the whole point of aggregation).
        let singles: Vec<f64> = catalog
            .sites()
            .iter()
            .map(|s| {
                let t = vb_trace::generate_in(s, cfg.start_day, cfg.window_days, catalog.field());
                vb_stats::coefficient_of_variation(&t.values)
            })
            .collect();
        let median_single = vb_stats::percentile(&singles, 50.0);
        assert!(
            best.cov < median_single,
            "best clique cov {} vs median single {}",
            best.cov,
            median_single
        );
    }

    #[test]
    fn select_group_returns_k_site_names() {
        let catalog = Catalog::europe(42);
        let names = select_group(&catalog, &PipelineConfig::default());
        assert_eq!(names.len(), 3);
        for n in &names {
            assert!(catalog.get(n).is_some());
        }
    }

    #[test]
    fn larger_k_gives_steadier_or_equal_best_groups() {
        // More sites to average over cannot hurt the best cov much; in
        // practice k=4's best is steadier than k=2's best.
        let catalog = Catalog::europe(42);
        let cov_for = |k: usize| {
            let cfg = PipelineConfig {
                k,
                ..PipelineConfig::default()
            };
            identify_subgraphs(&catalog, &cfg)[0].cov
        };
        assert!(cov_for(4) <= cov_for(2) + 0.05);
    }
}
