#![warn(missing_docs)]

//! # vb-sched — the power- and network-aware multi-VB co-scheduler
//!
//! Implements §3.1 of the paper: scheduling applications "across
//! highly-variable but predictable capacity locations in a way that
//! i) ensures high level of availability, ii) introduces low & non-bursty
//! network overheads, and iii) minimizes energy usage".
//!
//! The scheduling pipeline of Fig 6 maps to modules as follows:
//!
//! 1. **Subgraph identification** — [`pipeline`]: k-clique enumeration of
//!    the 50 ms site graph and coefficient-of-variation ranking
//!    (delegating to `vb-net`).
//! 2. **Subgraph selection** — [`pipeline`]: a short list of candidate
//!    cliques, steadiest first.
//! 3. **Site selection** — [`policy`]: per-application site assignment.
//!    [`greedy`] is the paper's baseline ("always assigns VMs to the site
//!    with the most available power"); [`mip`] formulates the choice as a
//!    mixed-integer program over forecast capacity with objective O1
//!    (total migration bytes) and optionally O2 (peak migration bytes),
//!    solved exactly by `vb-solver`. The three paper variants — MIP,
//!    MIP-24h and MIP-peak — are horizon/objective configurations of the
//!    same model.
//! 4. **VM placement** — within a site, delegated to the packing
//!    machinery of `vb-cluster` ("any state-of-the-art approach can be
//!    used for this step").
//!
//! [`sim`] runs the whole thing: a multi-site group simulation where
//! sites evict applications when power drops, the runtime re-routes
//! evicted apps to sibling sites (the WAN traffic of Fig 4), and the
//! policies' placement quality shows up as Table 1 / Fig 7 differences.

pub mod app;
pub mod greedy;
pub mod mip;
pub mod pipeline;
pub mod policy;
pub mod replication;
pub mod sim;

pub use app::{AppGen, AppGenConfig, AppSpec};
pub use greedy::GreedyPolicy;
pub use mip::{MipConfig, MipPolicy, MipStats};
pub use pipeline::{identify_subgraphs, select_group, PipelineConfig};
pub use policy::{Assignment, PlanContext, Policy, SitePlanInfo};
pub use replication::{ReplicationModel, ReplicationReport, StandbyMode};
pub use sim::{
    day_ahead_window, DetailedRun, GroupSim, GroupSimConfig, GroupStepStats, PolicySummary,
    SimCore, SimError, DAY_AHEAD_STEPS, STEPS_PER_DAY,
};
