//! Hot/cold standby replication — the alternative to migration (§3).
//!
//! "Such applications must rely on either hot/cold standbys using
//! continuous replication or migration. This introduces continuous or
//! bursty network overheads on the wide area links connecting sites."
//!
//! This module models the *replication* side of that trade-off so it can
//! be compared against the migration-based runtime the rest of the crate
//! simulates:
//!
//! * A **hot standby** streams dirty memory continuously (Remus-style):
//!   per-step traffic proportional to resident stable memory, plus a
//!   full copy whenever a replica is (re)established. Failover on a
//!   power dip is instant and free of bulk traffic, but every stable app
//!   consumes capacity at two sites.
//! * A **cold standby** ships periodic checkpoints: per-step traffic is
//!   the full memory divided by the checkpoint interval, failover loses
//!   the progress since the last checkpoint but the standby holds no
//!   cores until activated.
//!
//! Given the per-step group telemetry of a migration-based run, the
//! model computes what the *same* application population would have cost
//! under replication — a continuous, smooth load versus migration's
//! bursty one.

use crate::sim::DetailedRun;
use serde::{Deserialize, Serialize};
use vb_stats::Summary;

/// Which standby flavour to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StandbyMode {
    /// Continuous dirty-memory streaming (Remus-style hot standby).
    Hot,
    /// Periodic full checkpoints to a passive site.
    Cold,
}

/// Replication-cost parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationModel {
    /// Hot (continuous streaming) or cold (periodic checkpoints).
    pub mode: StandbyMode,
    /// Fraction of an app's memory dirtied per 15-minute step (hot
    /// mode). Write-heavy services dirty a few percent of RAM per
    /// minute; 0.3/step ≈ 2 %/minute.
    pub dirty_fraction_per_step: f64,
    /// Steps between checkpoints (cold mode). 4 = hourly.
    pub checkpoint_interval_steps: u32,
    /// GB of memory per committed core (matches the workload density).
    pub gb_per_core: f64,
}

impl Default for ReplicationModel {
    fn default() -> ReplicationModel {
        ReplicationModel {
            mode: StandbyMode::Hot,
            dirty_fraction_per_step: 0.30,
            checkpoint_interval_steps: 4,
            gb_per_core: 4.0,
        }
    }
}

/// The replication-vs-migration comparison for one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationReport {
    /// The standby flavour this report models.
    pub mode: StandbyMode,
    /// Continuous replication traffic per step, GB.
    pub per_step_gb: Vec<f64>,
    /// Total replication traffic over the run, GB.
    pub total_gb: f64,
    /// Peak per-step replication traffic, GB.
    pub peak_gb: f64,
    /// Standard deviation of per-step replication traffic, GB.
    pub std_gb: f64,
    /// Total migration traffic of the compared run, GB.
    pub migration_total_gb: f64,
    /// Peak per-step migration traffic of the compared run, GB.
    pub migration_peak_gb: f64,
    /// Capacity overhead of standbys: extra core-steps reserved,
    /// relative to the committed core-steps (1.0 = doubling, hot mode).
    pub capacity_overhead: f64,
}

impl ReplicationModel {
    /// Evaluate replication for the application population of a
    /// migration-based run: the committed stable memory at each step is
    /// what would have been continuously replicated instead.
    pub fn evaluate(&self, run: &DetailedRun) -> ReplicationReport {
        let per_step: Vec<f64> = run
            .steps
            .iter()
            .map(|s| {
                let resident_gb = s.allocated_cores as f64 * self.gb_per_core;
                match self.mode {
                    StandbyMode::Hot => resident_gb * self.dirty_fraction_per_step,
                    StandbyMode::Cold => resident_gb / self.checkpoint_interval_steps.max(1) as f64,
                }
            })
            .collect();
        let summary = Summary::of(if per_step.is_empty() {
            &[0.0]
        } else {
            &per_step
        });
        ReplicationReport {
            mode: self.mode,
            total_gb: summary.total,
            peak_gb: summary.max,
            std_gb: summary.std,
            per_step_gb: per_step,
            migration_total_gb: run.summary.total_gb,
            migration_peak_gb: run.summary.peak_gb,
            capacity_overhead: match self.mode {
                StandbyMode::Hot => 1.0,  // live replica holds equal cores
                StandbyMode::Cold => 0.0, // passive checkpoints hold none
            },
        }
    }
}

impl ReplicationReport {
    /// How many times more total traffic replication moves than the
    /// migration-based runtime did.
    pub fn traffic_ratio(&self) -> f64 {
        if self.migration_total_gb <= 0.0 {
            f64::INFINITY
        } else {
            self.total_gb / self.migration_total_gb
        }
    }

    /// How much smoother replication is: migration peak / replication
    /// peak (replication's selling point is the absence of bursts).
    pub fn peak_ratio(&self) -> f64 {
        if self.peak_gb <= 0.0 {
            f64::INFINITY
        } else {
            self.migration_peak_gb / self.peak_gb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyPolicy;
    use crate::sim::{GroupSim, GroupSimConfig};
    use vb_trace::Catalog;

    fn short_run() -> DetailedRun {
        let catalog = Catalog::europe(42);
        let cfg = GroupSimConfig {
            days: 2,
            ..GroupSimConfig::default()
        };
        GroupSim::new(&catalog, &["UK-wind", "PT-wind"], cfg)
            .unwrap()
            .run_detailed(&mut GreedyPolicy::new())
    }

    #[test]
    fn hot_standby_moves_much_more_data_but_smoothly() {
        let run = short_run();
        let report = ReplicationModel::default().evaluate(&run);
        // §3's scale argument: continuous replication of every stable
        // app dwarfs on-demand migration in volume…
        assert!(
            report.traffic_ratio() > 2.0,
            "ratio {}",
            report.traffic_ratio()
        );
        // …but it has no bursts: its peak-to-mean ratio is tiny compared
        // to migration's (replication load tracks the resident memory,
        // migration load spikes at power events).
        let rep_burst =
            report.peak_gb / (report.total_gb / report.per_step_gb.len() as f64).max(1e-9);
        let mig_burst =
            run.summary.peak_gb / (run.summary.total_gb / run.steps.len() as f64).max(1e-9);
        assert!(
            rep_burst < mig_burst / 3.0,
            "replication burstiness {rep_burst} vs migration {mig_burst}"
        );
        assert_eq!(report.capacity_overhead, 1.0);
        assert_eq!(report.per_step_gb.len(), run.steps.len());
    }

    #[test]
    fn cold_standby_is_cheaper_than_hot() {
        let run = short_run();
        let hot = ReplicationModel::default().evaluate(&run);
        let cold = ReplicationModel {
            mode: StandbyMode::Cold,
            checkpoint_interval_steps: 8,
            ..ReplicationModel::default()
        }
        .evaluate(&run);
        assert!(cold.total_gb < hot.total_gb);
        assert_eq!(cold.capacity_overhead, 0.0);
    }

    #[test]
    fn traffic_scales_with_dirty_rate() {
        let run = short_run();
        let slow = ReplicationModel {
            dirty_fraction_per_step: 0.1,
            ..ReplicationModel::default()
        }
        .evaluate(&run);
        let fast = ReplicationModel {
            dirty_fraction_per_step: 0.5,
            ..ReplicationModel::default()
        }
        .evaluate(&run);
        assert!((fast.total_gb / slow.total_gb - 5.0).abs() < 1e-6);
    }

    #[test]
    fn ratios_handle_degenerate_runs() {
        let run = DetailedRun {
            steps: vec![],
            summary: crate::sim::PolicySummary {
                policy: "x".into(),
                total_gb: 0.0,
                p99_gb: 0.0,
                peak_gb: 0.0,
                std_gb: 0.0,
                zero_fraction: 0.0,
                per_step_gb: vec![],
                unavailable_app_steps: 0,
                preemptive_moves: 0,
                dropped_apps: 0,
                vm_decisions: 0,
            },
        };
        let r = ReplicationModel::default().evaluate(&run);
        assert_eq!(r.total_gb, 0.0);
        assert!(r.traffic_ratio().is_infinite());
    }
}
