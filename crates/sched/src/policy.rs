//! The scheduling-policy interface shared by Greedy and the MIP
//! variants.
//!
//! At every planning epoch the group simulation hands the policy a
//! [`PlanContext`]: the candidate sites with their forecast capacity and
//! committed load over the look-ahead horizon, the batch of newly
//! arrived applications, and the existing applications that may be
//! moved preemptively. The policy returns [`Assignment`]s; the runtime
//! executes them and charges any preemptive move as migration traffic.

use crate::app::AppSpec;
use serde::{Deserialize, Serialize};

/// Identifier of an application inside the group simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppId(pub usize);

/// What the policy knows about one site at planning time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SitePlanInfo {
    /// Site name (for reports).
    pub name: String,
    /// Total cores at the site.
    pub total_cores: u32,
    /// Power available right now, as cores.
    pub current_budget_cores: u32,
    /// Cores committed right now (running stable + degradable apps).
    pub allocated_cores: u32,
    /// Forecast capacity per look-ahead bucket, in cores. Built from
    /// the 3 h / day / week-ahead forecast products depending on each
    /// bucket's lead time.
    pub capacity_forecast_cores: Vec<f64>,
    /// Committed (existing, non-movable) load per bucket, in cores —
    /// decays as existing applications reach their departure times.
    pub committed_cores: Vec<f64>,
}

/// An existing application offered to the policy for preemptive
/// re-placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovableApp {
    /// The app's identifier.
    pub id: AppId,
    /// Site index the app currently runs at.
    pub current_site: usize,
    /// Cores the app occupies.
    pub cores: u32,
    /// Its migration volume if moved, GB.
    pub mem_gb: f64,
    /// Remaining lifetime in steps.
    pub remaining_steps: u32,
}

/// A newly arrived application awaiting placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NewApp {
    /// The app's identifier.
    pub id: AppId,
    /// The requested shape, kind, and lifetime.
    pub spec: AppSpec,
}

/// Everything a policy sees at one planning epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanContext {
    /// Current step (15-minute intervals since simulation start).
    pub now: u64,
    /// Steps per look-ahead bucket in the forecast vectors.
    pub bucket_steps: u32,
    /// The candidate sites (the selected multi-VB subgraph).
    pub sites: Vec<SitePlanInfo>,
    /// Applications to place.
    pub new_apps: Vec<NewApp>,
    /// Existing applications the policy may move (at a cost).
    pub movable: Vec<MovableApp>,
}

impl PlanContext {
    /// Number of look-ahead buckets (uniform across sites).
    pub fn horizon_buckets(&self) -> usize {
        self.sites
            .first()
            .map(|s| s.capacity_forecast_cores.len())
            .unwrap_or(0)
    }
}

/// One placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Which app to place or move.
    pub app: AppId,
    /// Target site index within [`PlanContext::sites`].
    pub site: usize,
}

/// Per-site snapshot handed to [`Policy::choose_rehost`] when the
/// runtime needs a new home for an evicted or queued application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteSnapshot {
    /// Powered cores right now.
    pub budget_cores: u32,
    /// Committed cores right now.
    pub allocated_cores: u32,
    /// Total cores.
    pub total_cores: u32,
    /// Admission cap right now (target_util × budget).
    pub admission_cap: u32,
    /// Worst admissible capacity over the next 24 h per the day-ahead
    /// forecast, in cores (already scaled by the utilization target).
    pub forecast_min_24h_cores: f64,
}

impl SiteSnapshot {
    /// Cores available for immediate admission.
    pub fn headroom(&self) -> u32 {
        self.admission_cap.saturating_sub(self.allocated_cores)
    }
}

/// A site-selection policy (Fig 6, step 3).
pub trait Policy {
    /// Human-readable policy name, as used in Table 1.
    fn name(&self) -> &str;

    /// Decide placements for the epoch. Every [`PlanContext::new_apps`]
    /// entry must be assigned; `movable` apps may optionally be
    /// reassigned (omitting one keeps it where it is).
    fn plan(&mut self, ctx: &PlanContext) -> Vec<Assignment>;

    /// Should the runtime drain forecast-deficit sites preemptively,
    /// moving apps out *before* power forces an eviction burst? This is
    /// the paper's MIP-peak behaviour: "MIP-peak migrates VMs
    /// preemptively, spreading out migrations over time and reducing
    /// burstiness". Default: off.
    fn preemptive_drain(&self) -> bool {
        false
    }

    /// Choose a site for an evicted/queued app needing `cores` right
    /// now, or `None` to queue it. The default is the greedy runtime
    /// rule: the admissible site with the most instantaneous headroom.
    /// Forecast-aware policies override this ("as the environment
    /// changes … we need to rerun the optimization", §3.1).
    fn choose_rehost(&mut self, sites: &[SiteSnapshot], cores: u32) -> Option<usize> {
        sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.headroom() >= cores)
            .max_by_key(|(_, s)| s.headroom())
            .map(|(i, _)| i)
    }

    /// Solver statistics for policies backed by the exact MIP solver
    /// (warm-start hits, fallback epochs). `None` for heuristics.
    fn mip_stats(&self) -> Option<crate::mip::MipStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_buckets_reads_site_vectors() {
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![SitePlanInfo {
                name: "a".into(),
                total_cores: 100,
                current_budget_cores: 80,
                allocated_cores: 10,
                capacity_forecast_cores: vec![50.0; 7],
                committed_cores: vec![10.0; 7],
            }],
            new_apps: vec![],
            movable: vec![],
        };
        assert_eq!(ctx.horizon_buckets(), 7);
        let empty = PlanContext {
            sites: vec![],
            ..ctx
        };
        assert_eq!(empty.horizon_buckets(), 0);
    }
}
