//! The paper's baseline: "a baseline greedy policy that always assigns
//! VMs to the site with the most available power" (§3.1).
//!
//! Greedy looks only at the *current* instant — no forecasts, no
//! preemptive moves. It serves as the Table 1 reference line that the
//! MIP variants beat by >30 % on total overhead.

use crate::policy::{Assignment, PlanContext, Policy, SiteSnapshot};

/// How the greedy baseline scores sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyMode {
    /// The paper's literal baseline: "always assigns VMs to the site
    /// with the most available power" — the site generating the most
    /// power right now, regardless of how loaded it already is.
    #[default]
    MostPower,
    /// A stronger ablation baseline: the site with the most *headroom*
    /// (powered cores minus committed cores).
    MostHeadroom,
}

/// The §3.1 baseline policy.
#[derive(Debug, Clone, Default)]
pub struct GreedyPolicy {
    mode: GreedyMode,
}

impl GreedyPolicy {
    /// The paper's baseline (most available power).
    pub fn new() -> GreedyPolicy {
        GreedyPolicy {
            mode: GreedyMode::MostPower,
        }
    }

    /// The headroom-aware variant (used by the ablation benches).
    pub fn most_headroom() -> GreedyPolicy {
        GreedyPolicy {
            mode: GreedyMode::MostHeadroom,
        }
    }

    /// The scoring mode in use.
    pub fn mode(&self) -> GreedyMode {
        self.mode
    }
}

impl Policy for GreedyPolicy {
    fn name(&self) -> &str {
        match self.mode {
            GreedyMode::MostPower => "Greedy",
            GreedyMode::MostHeadroom => "Greedy-headroom",
        }
    }

    fn plan(&mut self, ctx: &PlanContext) -> Vec<Assignment> {
        let _span = vb_telemetry::span!("sched.greedy_plan");
        let mut extra: Vec<f64> = vec![0.0; ctx.sites.len()];
        let mut out = Vec::with_capacity(ctx.new_apps.len());
        for app in &ctx.new_apps {
            // `total_cmp` keeps the argmax total even under a NaN score,
            // and an empty site list simply leaves the app unplaced (the
            // simulator queues it) instead of panicking mid-run.
            let Some(site) = ctx
                .sites
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let score = match self.mode {
                        GreedyMode::MostPower => s.current_budget_cores as f64,
                        GreedyMode::MostHeadroom => {
                            s.current_budget_cores as f64 - s.allocated_cores as f64 - extra[i]
                        }
                    };
                    (i, score)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| i)
            else {
                vb_telemetry::counter!("sched.planner_no_sites").inc();
                continue;
            };
            extra[site] += app.spec.cores() as f64;
            out.push(Assignment { app: app.id, site });
        }
        // Greedy never moves existing apps.
        out
    }

    fn choose_rehost(&mut self, sites: &[SiteSnapshot], cores: u32) -> Option<usize> {
        match self.mode {
            // Paper-literal: most available power among admissible sites.
            GreedyMode::MostPower => sites
                .iter()
                .enumerate()
                .filter(|(_, s)| s.headroom() >= cores)
                .max_by_key(|(_, s)| s.budget_cores)
                .map(|(i, _)| i),
            // Default trait behaviour: most headroom.
            GreedyMode::MostHeadroom => sites
                .iter()
                .enumerate()
                .filter(|(_, s)| s.headroom() >= cores)
                .max_by_key(|(_, s)| s.headroom())
                .map(|(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppSpec;
    use crate::policy::{AppId, NewApp, SitePlanInfo};
    use vb_cluster::VmKind;

    fn site(name: &str, budget: u32, allocated: u32) -> SitePlanInfo {
        SitePlanInfo {
            name: name.into(),
            total_cores: 28_000,
            current_budget_cores: budget,
            allocated_cores: allocated,
            capacity_forecast_cores: vec![budget as f64; 4],
            committed_cores: vec![allocated as f64; 4],
        }
    }

    fn app(id: usize, n_vms: u32) -> NewApp {
        NewApp {
            id: AppId(id),
            spec: AppSpec {
                n_vms,
                cores_per_vm: 4,
                mem_per_vm_gb: 16.0,
                kind: VmKind::Stable,
                lifetime_steps: 96,
            },
        }
    }

    #[test]
    fn picks_the_site_with_most_available_power() {
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![site("low", 1_000, 900), site("high", 20_000, 2_000)],
            new_apps: vec![app(0, 10)],
            movable: vec![],
        };
        let plan = GreedyPolicy::new().plan(&ctx);
        assert_eq!(
            plan,
            vec![Assignment {
                app: AppId(0),
                site: 1
            }]
        );
    }

    #[test]
    fn most_power_mode_ignores_load_headroom_mode_tracks_it() {
        // Site "a" is slightly roomier; site "b" has slightly more raw
        // power. The paper-literal baseline chases raw power; the
        // headroom variant spreads a batch as it fills sites up.
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![site("a", 10_000, 5_000), site("b", 10_100, 5_500)],
            new_apps: vec![app(0, 100), app(1, 10)],
            movable: vec![],
        };
        let literal = GreedyPolicy::new().plan(&ctx);
        assert_eq!(literal[0].site, 1, "raw power wins for MostPower");
        assert_eq!(literal[1].site, 1, "…and it never updates");

        let headroom = GreedyPolicy::most_headroom().plan(&ctx);
        assert_eq!(headroom[0].site, 0, "roomier site first");
        assert_eq!(
            headroom[1].site, 1,
            "400-core first app flips the headroom ranking"
        );
    }

    #[test]
    fn rehost_modes_differ() {
        use crate::policy::SiteSnapshot;
        let snaps = vec![
            SiteSnapshot {
                budget_cores: 9_000,
                allocated_cores: 1_000,
                total_cores: 10_000,
                admission_cap: 6_300,
                forecast_min_24h_cores: 5_000.0,
            },
            SiteSnapshot {
                budget_cores: 10_000,
                allocated_cores: 6_000,
                total_cores: 10_000,
                admission_cap: 7_000,
                forecast_min_24h_cores: 6_000.0,
            },
        ];
        // Literal greedy: most raw power (site 1). Headroom: site 0.
        assert_eq!(GreedyPolicy::new().choose_rehost(&snaps, 100), Some(1));
        assert_eq!(
            GreedyPolicy::most_headroom().choose_rehost(&snaps, 100),
            Some(0)
        );
        // Nothing admissible -> None.
        assert_eq!(GreedyPolicy::new().choose_rehost(&snaps, 50_000), None);
    }

    #[test]
    fn assigns_every_new_app() {
        let ctx = PlanContext {
            now: 0,
            bucket_steps: 12,
            sites: vec![site("only", 100, 0)],
            new_apps: (0..5).map(|i| app(i, 50)).collect(),
            movable: vec![],
        };
        let plan = GreedyPolicy::new().plan(&ctx);
        assert_eq!(plan.len(), 5);
        assert!(plan.iter().all(|a| a.site == 0));
    }
}
