//! Applications: the scheduling unit of §3.1.
//!
//! "For each application, with a number of requested VMs, the scheduler
//! needs to find a group of VB sites …". An application here is an
//! atomic bundle of identical VMs (stable or degradable) with a
//! lifetime; the co-scheduler assigns whole applications to sites, and
//! the group runtime migrates them between sites when power forces it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vb_cluster::VmKind;

/// An application request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Number of identical VMs.
    pub n_vms: u32,
    /// Cores per VM.
    pub cores_per_vm: u32,
    /// Memory per VM, GB (also its per-VM migration cost).
    pub mem_per_vm_gb: f64,
    /// Stable (must stay available → migrates) or degradable
    /// (hibernates in place).
    pub kind: VmKind,
    /// Lifetime in 15-minute steps.
    pub lifetime_steps: u32,
}

impl AppSpec {
    /// Total cores requested.
    pub fn cores(&self) -> u32 {
        self.n_vms * self.cores_per_vm
    }

    /// Total memory (= migration volume when the app moves), GB.
    pub fn mem_gb(&self) -> f64 {
        self.n_vms as f64 * self.mem_per_vm_gb
    }

    /// Memory per core — the conversion the MIP uses to express core
    /// displacement in GB of migration traffic.
    pub fn gb_per_core(&self) -> f64 {
        self.mem_gb() / self.cores() as f64
    }
}

/// Application arrival generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppGenConfig {
    /// Mean app arrivals per 15-minute step.
    pub arrivals_per_step: f64,
    /// Minimum VMs per app (inclusive).
    pub vms_min: u32,
    /// Maximum VMs per app (inclusive).
    pub vms_max: u32,
    /// Cores per VM.
    pub cores_per_vm: u32,
    /// Memory per VM, GB.
    pub mem_per_vm_gb: f64,
    /// Fraction of apps that are degradable.
    pub degradable_fraction: f64,
    /// Median lifetime in steps (log-normal).
    pub median_lifetime_steps: f64,
    /// Log-normal sigma of the lifetime.
    pub lifetime_sigma: f64,
    /// Lifetime cap, steps.
    pub max_lifetime_steps: u32,
}

impl Default for AppGenConfig {
    fn default() -> AppGenConfig {
        AppGenConfig {
            arrivals_per_step: 0.6,
            vms_min: 5,
            vms_max: 50,
            cores_per_vm: 4,
            mem_per_vm_gb: 16.0,
            // §2.3's mix: most capacity should be stable (high-value),
            // with enough degradable apps to absorb power dips.
            degradable_fraction: 0.3,
            // Median 1.5 days; apps are much longer-lived than single
            // VMs — they are services, not tasks.
            median_lifetime_steps: 144.0,
            lifetime_sigma: 0.8,
            max_lifetime_steps: vb_trace::STEPS_PER_DAY as u32 * 14,
        }
    }
}

impl AppGenConfig {
    /// Expected cores per arrival.
    pub fn mean_cores(&self) -> f64 {
        (self.vms_min + self.vms_max) as f64 / 2.0 * self.cores_per_vm as f64
    }

    /// Expected lifetime in steps.
    pub fn mean_lifetime_steps(&self) -> f64 {
        self.median_lifetime_steps * (self.lifetime_sigma * self.lifetime_sigma / 2.0).exp()
    }

    /// Size the arrival rate so steady-state demand occupies
    /// `target_cores` cores (Little's law).
    pub fn sized_for(target_cores: f64) -> AppGenConfig {
        let mut cfg = AppGenConfig::default();
        cfg.arrivals_per_step = target_cores / (cfg.mean_lifetime_steps() * cfg.mean_cores());
        cfg
    }
}

/// Seeded stream of application arrivals.
#[derive(Debug, Clone)]
pub struct AppGen {
    cfg: AppGenConfig,
    rng: StdRng,
}

impl AppGen {
    /// Create a generator.
    pub fn new(cfg: AppGenConfig, seed: u64) -> AppGen {
        AppGen {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AppGenConfig {
        &self.cfg
    }

    /// Draw the arrivals for one 15-minute step.
    pub fn step(&mut self) -> Vec<AppSpec> {
        let n = poisson(&mut self.rng, self.cfg.arrivals_per_step);
        (0..n).map(|_| self.draw()).collect()
    }

    fn draw(&mut self) -> AppSpec {
        let n_vms = self.rng.gen_range(self.cfg.vms_min..=self.cfg.vms_max);
        let kind = if self.rng.gen::<f64>() < self.cfg.degradable_fraction {
            VmKind::Degradable
        } else {
            VmKind::Stable
        };
        let z = standard_normal(&mut self.rng);
        let lifetime = (self.cfg.median_lifetime_steps * (self.cfg.lifetime_sigma * z).exp())
            .round()
            .clamp(1.0, self.cfg.max_lifetime_steps as f64) as u32;
        AppSpec {
            n_vms,
            cores_per_vm: self.cfg.cores_per_vm,
            mem_per_vm_gb: self.cfg.mem_per_vm_gb,
            kind,
            lifetime_steps: lifetime,
        }
    }
}

fn poisson(rng: &mut StdRng, rate: f64) -> usize {
    if rate <= 0.0 {
        return 0;
    }
    let l = (-rate).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_aggregates() {
        let a = AppSpec {
            n_vms: 10,
            cores_per_vm: 4,
            mem_per_vm_gb: 16.0,
            kind: VmKind::Stable,
            lifetime_steps: 100,
        };
        assert_eq!(a.cores(), 40);
        assert_eq!(a.mem_gb(), 160.0);
        assert_eq!(a.gb_per_core(), 4.0);
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = AppGen::new(AppGenConfig::default(), 5);
        let mut b = AppGen::new(AppGenConfig::default(), 5);
        for _ in 0..20 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn draws_respect_config_ranges() {
        let cfg = AppGenConfig::default();
        let mut g = AppGen::new(cfg.clone(), 6);
        let apps: Vec<AppSpec> = (0..500).flat_map(|_| g.step()).collect();
        assert!(!apps.is_empty());
        for a in &apps {
            assert!((cfg.vms_min..=cfg.vms_max).contains(&a.n_vms));
            assert!(a.lifetime_steps >= 1 && a.lifetime_steps <= cfg.max_lifetime_steps);
        }
        let deg = apps.iter().filter(|a| a.kind == VmKind::Degradable).count();
        let frac = deg as f64 / apps.len() as f64;
        assert!(
            (frac - cfg.degradable_fraction).abs() < 0.1,
            "degradable {frac}"
        );
    }

    #[test]
    fn sized_for_matches_littles_law() {
        let cfg = AppGenConfig::sized_for(10_000.0);
        let implied = cfg.arrivals_per_step * cfg.mean_cores() * cfg.mean_lifetime_steps();
        assert!((implied - 10_000.0).abs() < 1.0);
    }
}
