//! Multi-site group simulation (the Table 1 / Fig 7 experiment).
//!
//! Runs a multi-VB group — the sites of one selected clique — over a
//! power-trace period at 15-minute resolution. Applications arrive and
//! are placed by a [`Policy`] at fixed planning epochs; between epochs
//! the *runtime* reacts to actual power:
//!
//! * A site whose power drops below its committed cores first hibernates
//!   degradable applications in place (no WAN traffic), then evicts
//!   stable applications.
//! * Evicted stable applications are re-placed on sibling sites with
//!   available power — each such move is WAN traffic equal to the app's
//!   memory (§3's migration-overhead accounting). With no room anywhere
//!   the app waits in a group-wide queue (an availability violation,
//!   which multi-VB is designed to make rare).
//! * When power returns, hibernated apps resume free of charge and
//!   queued apps relaunch — the relaunch transfer counts as migration
//!   traffic, mirroring the paper's "consider these as VMs migrated
//!   into the site".
//!
//! All four Table 1 policies run against identical arrival sequences and
//! power traces (same seeds), so differences are purely placement
//! quality.
//!
//! ## Two step drivers, one semantics
//!
//! The per-step work can be driven two ways, selected by
//! [`GroupSimConfig::core`]:
//!
//! * [`SimCore::Legacy`] — the original full-scan loop: every site and
//!   every registered app is visited at every step. Kept verbatim as the
//!   differential oracle and the baseline the `fleet_perf` bench
//!   measures speedups against.
//! * [`SimCore::EventDriven`] (default) — time-bucketed event queues
//!   (app expirations, site power threats, preemptive-drain deadlines)
//!   plus incremental group counters, so quiescent sites cost nothing
//!   per step. Power budgets and day-ahead forecast minima are
//!   precomputed per site once at construction; "when does this site
//!   next violate X?" is answered by a bucketed threshold scan instead
//!   of a per-step re-check.
//!
//! Both drivers share every phase helper (eviction, re-hosting,
//! recovery, draining, planning), and the event driver's lazy-arming
//! invariant — an armed wake-up step is never later than the earliest
//! real violation — makes the two bit-identical. That equivalence is
//! pinned by `tests/event_equivalence.rs` across all four policies.

use crate::app::{AppGen, AppGenConfig, AppSpec};
use crate::policy::{AppId, MovableApp, NewApp, PlanContext, Policy, SitePlanInfo, SiteSnapshot};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use vb_cluster::VmKind;
use vb_stats::{Cdf, Summary, TimeSeries};
use vb_trace::{forecast_for, generate_in, Catalog, Horizon, Site, WEEK_AHEAD_STEPS};

/// Errors constructing a group simulation from a catalog + config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A requested site name is not in the catalog.
    UnknownSite(String),
    /// The group needs at least one site.
    NoSites,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownSite(name) => {
                write!(f, "unknown site {name:?}: not present in the catalog")
            }
            SimError::NoSites => write!(f, "a group simulation needs at least one site"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation steps per day at the paper's 15-minute resolution
/// (re-exported from the canonical [`vb_trace::STEPS_PER_DAY`] at the
/// width the scheduler uses).
pub const STEPS_PER_DAY: u32 = vb_trace::STEPS_PER_DAY as u32;

/// Day-ahead look-ahead window in steps: how far `site_at_risk` and the
/// `forecast_min_24h_cores` snapshot scan the day-ahead forecast. Both
/// must use the same window — the policy's risk assessment is meant to
/// see exactly the horizon the snapshot summarises.
pub const DAY_AHEAD_STEPS: usize = STEPS_PER_DAY as usize;

/// Width (in steps) of the coarse buckets the event core's threshold
/// scans use: per-bucket minima let "when does the budget next drop
/// below X?" skip half a day at a time instead of testing every step.
const EVENT_BUCKET_STEPS: usize = (STEPS_PER_DAY / 2) as usize;

/// Sentinel for "no wake-up armed" in the event queues.
const NOT_ARMED: u64 = u64::MAX;

/// Which per-step driver [`GroupSim::run_detailed`] uses. See the
/// module docs; the two are bit-identical by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimCore {
    /// Original full-scan loop — every site/app visited every step.
    Legacy,
    /// Event queues + incremental counters (default).
    EventDriven,
}

/// Configuration of a group simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSimConfig {
    /// Cores per site (paper: ≈700 servers × 40 cores).
    pub cores_per_site: u32,
    /// Admission headroom: a site accepts apps up to this fraction of
    /// its powered cores (paper: 0.7).
    pub target_util: f64,
    /// Planning cadence in steps (default 12 = 3 h).
    pub epoch_steps: u32,
    /// Forecast bucket width in steps for the policy's look-ahead.
    pub bucket_steps: u32,
    /// First day-of-year of the simulated period.
    pub start_day: u32,
    /// Length of the simulated period in days (paper: 7).
    pub days: u32,
    /// Application workload; when `None`, sized to fill ~70 % of the
    /// group's mean available power.
    pub app_cfg: Option<AppGenConfig>,
    /// Cap on preemptive-move candidates offered to the policy per
    /// epoch (keeps the MIP small).
    pub max_movable: usize,
    /// Planned preemptive moves execute at most this many per step,
    /// spreading them over the epoch instead of bursting at the
    /// planning instant (the paper's MIP-peak "spreading out migrations
    /// over time").
    pub moves_per_step: usize,
    /// Optional subgraph structure (Fig 6 step 2): site-index groups an
    /// application must stay inside once placed. Initial placement picks
    /// the subgraph implicitly (by picking a site); re-hosting, queued
    /// relaunch and preemptive drains are then restricted to that
    /// subgraph — the paper's latency constraint on splitting/moving
    /// apps. `None` treats all sites as one group.
    pub subgraphs: Option<Vec<Vec<usize>>>,
    /// Which step driver runs the simulation (bit-identical results).
    pub core: SimCore,
    /// Seed for workload generation.
    pub seed: u64,
}

impl Default for GroupSimConfig {
    fn default() -> GroupSimConfig {
        GroupSimConfig {
            cores_per_site: 700 * 40,
            target_util: 0.7,
            epoch_steps: 12,
            bucket_steps: 12,
            start_day: 120,
            days: 7,
            app_cfg: None,
            max_movable: 0,
            moves_per_step: 2,
            subgraphs: None,
            core: SimCore::EventDriven,
            seed: 42,
        }
    }
}

/// Per-step group telemetry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupStepStats {
    /// Step index (15-minute intervals since simulation start).
    pub step: u64,
    /// WAN transfer volume this step (evictions re-placed + relaunches +
    /// preemptive moves), GB.
    pub transfer_gb: f64,
    /// Portion of `transfer_gb` from forced eviction re-hosting.
    pub rehost_gb: f64,
    /// Portion of `transfer_gb` from queued-app relaunches.
    pub relaunch_gb: f64,
    /// Portion of `transfer_gb` from policy-ordered preemptive moves.
    pub move_gb: f64,
    /// Number of application transfers this step.
    pub transfers: usize,
    /// Memory evicted with nowhere to go (queued), GB.
    pub stranded_gb: f64,
    /// Stable apps waiting in the group queue after this step.
    pub queued_apps: usize,
    /// Degradable apps hibernated across the group after this step.
    pub hibernated_apps: usize,
    /// Group-wide committed cores after this step.
    pub allocated_cores: u64,
    /// Group-wide powered cores this step.
    pub budget_cores: u64,
}

/// Aggregate result of one policy run — one Table 1 row plus the Fig 7
/// CDF series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Policy name (Table 1 row label).
    pub policy: String,
    /// Total migration volume over the run, GB.
    pub total_gb: f64,
    /// 99th percentile of per-step migration volume (all steps), GB.
    pub p99_gb: f64,
    /// Largest per-step migration volume, GB.
    pub peak_gb: f64,
    /// Standard deviation of per-step volume, GB.
    pub std_gb: f64,
    /// Fraction of steps with zero migration (Fig 7's "zero values").
    pub zero_fraction: f64,
    /// Per-step volumes (for CDFs and plots).
    pub per_step_gb: Vec<f64>,
    /// Step-summed app-waiting time: Σ over steps of queued stable apps.
    pub unavailable_app_steps: u64,
    /// Preemptive moves the policy ordered.
    pub preemptive_moves: usize,
    /// Apps that expired while queued (never re-hosted).
    pub dropped_apps: usize,
    /// VM placement decisions made over the run: every attach (initial
    /// placement, re-host, relaunch, preemptive move) counts its VMs.
    /// The fleet bench's "VM-decisions/sec" denominator.
    pub vm_decisions: u64,
}

impl PolicySummary {
    fn from_steps(
        policy: &str,
        steps: &[GroupStepStats],
        moves: usize,
        dropped: usize,
        vm_decisions: u64,
    ) -> PolicySummary {
        let per_step: Vec<f64> = steps.iter().map(|s| s.transfer_gb).collect();
        let summary = Summary::of(&per_step);
        let zero_fraction = Cdf::of_nonzero(&per_step).zero_fraction();
        PolicySummary {
            policy: policy.to_string(),
            total_gb: summary.total,
            p99_gb: summary.p99,
            peak_gb: summary.max,
            std_gb: summary.std,
            zero_fraction,
            per_step_gb: per_step,
            unavailable_app_steps: steps.iter().map(|s| s.queued_apps as u64).sum(),
            preemptive_moves: moves,
            dropped_apps: dropped,
            vm_decisions,
        }
    }
}

#[derive(Debug, Clone)]
struct AppState {
    spec: AppSpec,
    /// Current site, or `None` while queued.
    site: Option<usize>,
    /// Last site the app ran at (anchors its subgraph while queued).
    last_site: usize,
    hibernated: bool,
    /// True while the app sits in the group-wide relaunch queue.
    in_queue: bool,
    departs_at: u64,
    /// Index of this app's entry in its current site's resident list
    /// (meaningless while detached). Lets `detach` overwrite its slot
    /// with [`TOMBSTONE`] in O(1) instead of an O(residents) `retain`.
    slot: usize,
}

/// Dead entry in a site's resident list. Departures tombstone their
/// slot rather than shifting the tail; compaction (in [`GroupSim::detach`])
/// squeezes the list once tombstones outnumber live entries, preserving
/// relative order so "oldest resident first" decisions are unchanged.
const TOMBSTONE: AppId = AppId(usize::MAX);

#[derive(Debug, Clone)]
struct SiteState {
    site: Site,
    /// Actual normalized power over the run.
    actual: TimeSeries,
    /// Forecast products, degraded per horizon (3 h / day / week).
    f3: TimeSeries,
    fd: TimeSeries,
    fw: TimeSeries,
    /// Apps resident here (running or hibernated), in arrival order,
    /// interspersed with [`TOMBSTONE`] entries left by departures.
    apps: Vec<AppId>,
    /// Tombstone count in `apps` (compaction trigger).
    dead: usize,
    /// Running committed cores (stable + degradable, not hibernated).
    allocated_cores: u32,
}

/// Precomputed per-site power readouts shared by both step drivers.
///
/// `budgets[t]` is exactly what the legacy loop derived per step
/// (`floor(clamp(actual[t]) × cores_per_site)`), and `fd_min24[t]` is
/// exactly the fold the legacy snapshot took over the day-ahead window
/// `[t, min(t + DAY_AHEAD_STEPS, len))` — `+∞` marks an empty window.
/// The `*_bucket_min` arrays hold per-[`EVENT_BUCKET_STEPS`] minima so
/// threshold scans skip whole buckets that cannot contain a violation.
#[derive(Debug, Clone)]
struct SitePower {
    budgets: Vec<u32>,
    budget_bucket_min: Vec<u32>,
    fd_min24: Vec<f64>,
    fd24_bucket_min: Vec<f64>,
}

impl SitePower {
    fn build(actual: &TimeSeries, fd: &TimeSeries, cores_per_site: u32, n_steps: usize) -> Self {
        // Missing trace steps (defensive: traces normally cover the run
        // exactly) count as zero power; the gap is surfaced via the
        // `sched.budget_gap_steps` counter instead of a panic.
        let gap = n_steps.saturating_sub(actual.len());
        if gap > 0 {
            vb_telemetry::counter!("sched.budget_gap_steps").add(gap as u64);
        }
        let budgets: Vec<u32> = (0..n_steps)
            .map(|t| {
                let frac = actual.values.get(t).copied().unwrap_or(0.0).clamp(0.0, 1.0);
                (frac * cores_per_site as f64).floor() as u32
            })
            .collect();
        let fd_min24 = sliding_window_min(&fd.values, DAY_AHEAD_STEPS, n_steps);
        let buckets = n_steps.div_ceil(EVENT_BUCKET_STEPS.max(1));
        let budget_bucket_min = (0..buckets)
            .map(|b| {
                let lo = b * EVENT_BUCKET_STEPS;
                let hi = (lo + EVENT_BUCKET_STEPS).min(n_steps);
                budgets[lo..hi].iter().copied().min().unwrap_or(u32::MAX)
            })
            .collect();
        let fd24_bucket_min = (0..buckets)
            .map(|b| {
                let lo = b * EVENT_BUCKET_STEPS;
                let hi = (lo + EVENT_BUCKET_STEPS).min(n_steps);
                fd_min24[lo..hi]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        SitePower {
            budgets,
            budget_bucket_min,
            fd_min24,
            fd24_bucket_min,
        }
    }

    /// Earliest step `t >= from` with `budgets[t] < threshold`.
    fn next_budget_below(&self, from: usize, threshold: u32) -> Option<usize> {
        if threshold == 0 {
            return None; // budgets are unsigned: never below zero
        }
        let n = self.budgets.len();
        let w = EVENT_BUCKET_STEPS.max(1);
        let mut t = from;
        while t < n {
            let b = t / w;
            let hi = ((b + 1) * w).min(n);
            let bucket_min = self.budget_bucket_min.get(b).copied().unwrap_or(u32::MAX);
            if bucket_min < threshold {
                while t < hi {
                    if self.budgets[t] < threshold {
                        return Some(t);
                    }
                    t += 1;
                }
            } else {
                t = hi;
            }
        }
        None
    }

    /// Earliest step `t >= from` where the day-ahead admissible floor
    /// drops below `stable` cores: `fd_min24[t] × cores × util <
    /// stable`, exactly the legacy drain trigger `stable −
    /// forecast_min_24h_cores > 0`. Skipping a bucket is sound because
    /// multiplying by a non-negative constant is weakly monotone under
    /// IEEE rounding: `bucket_min × c ≥ stable` implies every step in
    /// the bucket clears the bar too.
    fn next_fd24_below(&self, from: usize, stable: f64, cores_f: f64, util: f64) -> Option<usize> {
        let n = self.fd_min24.len();
        let w = EVENT_BUCKET_STEPS.max(1);
        let mut t = from;
        while t < n {
            let b = t / w;
            let hi = ((b + 1) * w).min(n);
            let bucket_min = self
                .fd24_bucket_min
                .get(b)
                .copied()
                .unwrap_or(f64::INFINITY);
            if bucket_min * cores_f * util < stable {
                while t < hi {
                    if self.fd_min24[t] * cores_f * util < stable {
                        return Some(t);
                    }
                    t += 1;
                }
            } else {
                t = hi;
            }
        }
        None
    }
}

/// Minimum of `values[t..min(t + window, len)]` for every `t` in
/// `0..out_len` — `+∞` where the window is empty. A right-to-left
/// monotonic deque makes this O(n) while returning exactly the value a
/// per-step `fold(∞, min)` over the same (possibly tail-shortened)
/// window would: the min over a set does not depend on scan order.
fn sliding_window_min(values: &[f64], window: usize, out_len: usize) -> Vec<f64> {
    let n = values.len();
    let mut out = vec![f64::INFINITY; out_len];
    // Indices ascending front→back; values strictly *decreasing*
    // front→back, so the back holds the window minimum. Walking `t`
    // right-to-left, the new index enters at the front (it outlives
    // every resident, so residents with values ≥ its own are dominated
    // and popped), and expired indices (`≥ t + window`) leave the back.
    let mut dq: VecDeque<usize> = VecDeque::new();
    for t in (0..out_len).rev() {
        if t < n {
            while let Some(&f) = dq.front() {
                if values[f] >= values[t] {
                    dq.pop_front();
                } else {
                    break;
                }
            }
            dq.push_front(t);
        }
        while let Some(&b) = dq.back() {
            if b >= t + window {
                dq.pop_back();
            } else {
                break;
            }
        }
        if let Some(&b) = dq.back() {
            out[t] = values[b];
        }
    }
    out
}

/// Per-step telemetry plus the run summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetailedRun {
    /// Per-step group telemetry.
    pub steps: Vec<GroupStepStats>,
    /// The run's Table-1-style summary.
    pub summary: PolicySummary,
}

/// Event-core state: time-bucketed wake-up queues plus incrementally
/// maintained group counters. All counters are kept up to date in both
/// drivers (they are O(1) per mutation); only the queues and the
/// touched-site tracking are gated on `enabled`.
#[derive(Debug, Default)]
struct EventState {
    enabled: bool,
    drain_enabled: bool,
    /// `expiry[t]`: apps whose `departs_at == t` (only `t < n_steps`).
    expiry: Vec<Vec<AppId>>,
    /// `threat[t]`: sites armed to re-check `alloc > budget` at `t`.
    threat: Vec<Vec<usize>>,
    /// Per site: the step its pending power-threat check fires at.
    armed_threat: Vec<u64>,
    /// `drain[t]`: sites armed to re-check the drain deficit at `t`.
    drain: Vec<Vec<usize>>,
    armed_drain: Vec<u64>,
    /// Ascending worklist for the drain phase; sites tipped into
    /// deficit *during* the phase (by a drain move landing on them)
    /// join it live, mirroring the legacy ascending site scan.
    drain_worklist: BinaryHeap<Reverse<usize>>,
    in_drain_phase: bool,
    /// True once this step's drain phase has run (or was skipped):
    /// later arms must target the next step.
    drain_phase_done: bool,
    /// Site currently being drained (for the ascending-order rule).
    drain_pos: usize,
    /// Resident hibernated apps per site — the O(1) "anything to
    /// resume here?" test both drivers' recovery scans lean on.
    hibernated_per_site: Vec<u32>,
    /// Lower bound on the smallest hibernated app's cores per site
    /// (`u32::MAX` when none). Only tightened on hibernate and reset
    /// when the site's last hibernated app leaves, so it may run stale
    /// low after a resume — stale-low keeps the skip test in
    /// [`GroupSim::resume_site`] sound.
    min_hib_cores: Vec<u32>,
    /// Incremental group totals (== the legacy per-step full scans).
    group_allocated: u64,
    hibernated_apps: usize,
    /// Running stable (non-hibernated) cores per site — stable apps
    /// never hibernate, so this tracks exactly the legacy drain scan.
    stable_cores: Vec<u64>,
    /// Sites whose allocation changed this step (stamp = step + 1).
    touched_stamp: Vec<u64>,
    touched: Vec<usize>,
}

/// Locally-buffered rows of the per-step `sched.step_series`, flushed
/// to the global series store in one batch at the end of a run (the
/// store is one process-global mutex; see `run_detailed`).
#[derive(Default)]
struct StepSeries {
    epochs: Vec<u64>,
    transfer_gb: Vec<f64>,
    move_gb: Vec<f64>,
    queued_apps: Vec<f64>,
    hibernated_apps: Vec<f64>,
    power_deficit_cores: Vec<f64>,
    allocated_cores: Vec<f64>,
    budget_cores: Vec<f64>,
}

impl StepSeries {
    fn with_capacity(n: usize) -> StepSeries {
        let mut s = StepSeries::default();
        s.epochs.reserve(n);
        s.transfer_gb.reserve(n);
        s.move_gb.reserve(n);
        s.queued_apps.reserve(n);
        s.hibernated_apps.reserve(n);
        s.power_deficit_cores.reserve(n);
        s.allocated_cores.reserve(n);
        s.budget_cores.reserve(n);
        s
    }

    fn push(&mut self, step: u64, stats: &GroupStepStats, power_deficit_cores: u64) {
        self.epochs.push(step);
        self.transfer_gb.push(stats.transfer_gb);
        self.move_gb.push(stats.move_gb);
        self.queued_apps.push(stats.queued_apps as f64);
        self.hibernated_apps.push(stats.hibernated_apps as f64);
        self.power_deficit_cores.push(power_deficit_cores as f64);
        self.allocated_cores.push(stats.allocated_cores as f64);
        self.budget_cores.push(stats.budget_cores as f64);
    }

    fn flush(&self, instance: &str) {
        vb_telemetry::series_extend(
            "sched.step_series",
            instance,
            &self.epochs,
            &[
                ("transfer_gb", &self.transfer_gb),
                ("move_gb", &self.move_gb),
                ("queued_apps", &self.queued_apps),
                ("hibernated_apps", &self.hibernated_apps),
                ("power_deficit_cores", &self.power_deficit_cores),
                ("allocated_cores", &self.allocated_cores),
                ("budget_cores", &self.budget_cores),
            ],
        );
    }
}

/// The multi-VB group simulator.
pub struct GroupSim {
    cfg: GroupSimConfig,
    sites: Vec<SiteState>,
    /// Precomputed per-site budgets/forecast minima, parallel to `sites`.
    power: Vec<SitePower>,
    /// Group-wide powered cores per step (Σ budgets).
    budget_total: Vec<u64>,
    apps: Vec<AppState>,
    /// Evicted stable apps waiting for capacity anywhere.
    queue: Vec<AppId>,
    gen: AppGen,
    now: u64,
    n_steps: u64,
    preemptive_moves: usize,
    dropped_apps: usize,
    vm_decisions: u64,
    /// Last preemptive-move step per app, for the anti-thrash cooldown.
    moved_at: std::collections::BTreeMap<AppId, u64>,
    /// Planned preemptive moves awaiting execution (app, target site).
    pending_moves: VecDeque<(AppId, usize)>,
    /// Per-site `(allocation, budget)` as of the last resume attempt;
    /// an unchanged pair proves the attempt would be a no-op (see
    /// [`GroupSim::resume_site`]). Sentinel `u32::MAX` = never tried.
    resume_checked: Vec<(u32, u32)>,
    ev: EventState,
}

impl GroupSim {
    /// Build a group over the given catalog sites.
    ///
    /// # Errors
    /// [`SimError::NoSites`] when `site_names` is empty and
    /// [`SimError::UnknownSite`] when a name is not in the catalog, so
    /// callers (benches, examples) fail with a diagnostic instead of a
    /// panic backtrace.
    pub fn new(
        catalog: &Catalog,
        site_names: &[&str],
        cfg: GroupSimConfig,
    ) -> Result<GroupSim, SimError> {
        if site_names.is_empty() {
            return Err(SimError::NoSites);
        }
        let field = catalog.field();
        let n_steps = (cfg.days as u64) * STEPS_PER_DAY as u64;
        // Per-site trace + forecast generation is the expensive part of
        // setup; each site is independent, so fan out across cores. The
        // traces are seeded per site, so the result is identical at any
        // thread count.
        let built: Vec<(SiteState, SitePower)> = vb_par::par_map(site_names.len(), |i| {
            let name = site_names[i];
            let site = catalog
                .get(name)
                .ok_or_else(|| SimError::UnknownSite(name.to_string()))?
                .clone();
            let actual = generate_in(&site, cfg.start_day, cfg.days, field);
            let f3 = forecast_for(&actual, &site, Horizon::Hours3, field);
            let fd = forecast_for(&actual, &site, Horizon::DayAhead, field);
            let fw = forecast_for(&actual, &site, Horizon::WeekAhead, field);
            let power = SitePower::build(&actual, &fd, cfg.cores_per_site, n_steps as usize);
            Ok((
                SiteState {
                    site,
                    actual,
                    f3,
                    fd,
                    fw,
                    apps: Vec::new(),
                    dead: 0,
                    allocated_cores: 0,
                },
                power,
            ))
        })
        .into_iter()
        .collect::<Result<_, SimError>>()?;
        let (sites, power): (Vec<SiteState>, Vec<SitePower>) = built.into_iter().unzip();

        let budget_total: Vec<u64> = (0..n_steps as usize)
            .map(|t| power.iter().map(|p| p.budgets[t] as u64).sum())
            .collect();

        let app_cfg = cfg.app_cfg.clone().unwrap_or_else(|| {
            // Size demand to ~70% of the group's mean available power.
            let mean_power: f64 = sites
                .iter()
                .map(|s| vb_stats::mean(&s.actual.values))
                .sum::<f64>()
                / sites.len() as f64;
            let target =
                cfg.cores_per_site as f64 * sites.len() as f64 * mean_power * cfg.target_util;
            AppGenConfig::sized_for(target)
        });
        let gen = AppGen::new(app_cfg, cfg.seed);
        let n_sites = sites.len();
        let ev = EventState {
            enabled: cfg.core == SimCore::EventDriven,
            drain_enabled: false,
            expiry: vec![Vec::new(); n_steps as usize],
            threat: vec![Vec::new(); n_steps as usize],
            armed_threat: vec![NOT_ARMED; n_sites],
            drain: vec![Vec::new(); n_steps as usize],
            armed_drain: vec![NOT_ARMED; n_sites],
            drain_worklist: BinaryHeap::new(),
            in_drain_phase: false,
            drain_phase_done: false,
            drain_pos: 0,
            hibernated_per_site: vec![0; n_sites],
            min_hib_cores: vec![u32::MAX; n_sites],
            group_allocated: 0,
            hibernated_apps: 0,
            stable_cores: vec![0; n_sites],
            touched_stamp: vec![0; n_sites],
            touched: Vec::new(),
        };
        let sim = GroupSim {
            cfg,
            sites,
            power,
            budget_total,
            apps: Vec::new(),
            queue: Vec::new(),
            gen,
            now: 0,
            n_steps,
            preemptive_moves: 0,
            dropped_apps: 0,
            vm_decisions: 0,
            moved_at: std::collections::BTreeMap::new(),
            pending_moves: VecDeque::new(),
            resume_checked: vec![(u32::MAX, u32::MAX); n_sites],
            ev,
        };
        Ok(sim)
    }

    /// Total steps the run covers.
    pub fn n_steps(&self) -> u64 {
        self.n_steps
    }

    /// Run a policy over the whole period and summarise.
    pub fn run(self, policy: &mut dyn Policy) -> PolicySummary {
        self.run_detailed(policy).summary
    }

    /// Run a policy and keep the full per-step telemetry alongside the
    /// summary (used by the figure benches and diagnostics).
    pub fn run_detailed(mut self, policy: &mut dyn Policy) -> DetailedRun {
        let event = self.cfg.core == SimCore::EventDriven;
        self.ev.enabled = event;
        self.ev.drain_enabled = event && policy.preemptive_drain();
        let _run_span = vb_telemetry::span!("sched.group_run");
        vb_telemetry::event(
            "sched.run_start",
            &[
                ("policy", policy.name().into()),
                ("sites", (self.sites.len() as u64).into()),
                ("steps", self.n_steps.into()),
            ],
        );
        let mut steps = Vec::with_capacity(self.n_steps as usize);
        let mut epoch_arrivals: Vec<AppSpec> = Vec::new();
        // Per-step series rows accumulate locally and flush to the
        // process-global series store once per run: the store is behind
        // one mutex, and per-step sampling from every fleet-shard
        // thread at once would serialize the whole fan-out on it.
        let mut series = StepSeries::with_capacity(self.n_steps as usize);
        // Run-local telemetry accumulators, applied to the process
        // globals once after the loop: per-step atomic updates from
        // every fleet-shard thread at once are measurable against the
        // event core's per-step floor, and the final counter values are
        // identical either way. (The per-step transfer histogram stays
        // in the loop: its *distribution* is the signal.)
        let mut tot_transfers: u64 = 0;
        let mut tot_rehost_gb = 0.0_f64;
        let mut tot_relaunch_gb = 0.0_f64;
        let mut tot_move_gb = 0.0_f64;
        let mut tot_stranded_gb = 0.0_f64;
        // Wall-clock tracing at epoch granularity: a per-step span on a
        // month-long fleet run is ~10⁵ trace events per shard — past the
        // trace buffer caps and a per-step cost in its own right.
        let mut epoch_span = None;
        for step in 0..self.n_steps {
            if step % self.cfg.epoch_steps as u64 == 0 {
                // Close the previous epoch's span before opening the
                // next, so sibling epochs never nest.
                drop(epoch_span.take());
                epoch_span = Some(vb_telemetry::span!("sched.sim_epoch"));
            }
            self.now = step;
            self.ev.drain_phase_done = false;
            let mut stats = GroupStepStats {
                step,
                ..GroupStepStats::default()
            };

            // 1. Expirations.
            if event {
                self.expire_event();
            } else {
                self.expire_scan();
            }

            // 2. Actual power → budgets; hibernate/evict as needed.
            let evicted = if event {
                self.apply_power_event()
            } else {
                self.apply_power_scan()
            };

            // 3. Re-place evicted apps on sibling sites (within their
            // subgraph when Fig 6 step-2 groups are configured).
            for (id, origin) in evicted {
                self.try_rehost(id, origin, policy, &mut stats);
            }

            // 4. Resume hibernated apps; relaunch queued apps. Shared
            // by both drivers: `resume_site` returns in O(1) for sites
            // with nothing hibernated (the fleet norm), and with an
            // empty queue the relaunch loop calls no policy hooks, so
            // skipping it cannot change behavior.
            for s in 0..self.sites.len() {
                self.resume_site(s);
            }
            if !self.queue.is_empty() {
                self.relaunch_queue(policy, &mut stats);
            }

            // 4b. Execute planned preemptive moves, rate-limited so
            // policy-ordered migrations spread over the epoch.
            self.execute_pending_moves(&mut stats);

            // 4c. Preemptive drain (MIP-peak): gradually move apps off
            // sites whose day-ahead forecast shows a capacity deficit,
            // before the dip forces an eviction burst.
            if policy.preemptive_drain() {
                if event {
                    self.drain_step_event(policy, &mut stats);
                } else {
                    self.drain_step_scan(policy, &mut stats);
                }
            }
            self.ev.drain_phase_done = true;

            // 5. Collect this step's arrivals; plan at epoch boundaries.
            epoch_arrivals.extend(self.gen.step());
            if step % self.cfg.epoch_steps as u64 == 0 {
                let batch = std::mem::take(&mut epoch_arrivals);
                self.plan_epoch(batch, policy);
            }

            // 6. Bookkeeping: the legacy driver derives the totals by
            // full scans; the event driver reads its incremental
            // counters (pinned equal by the differential tests).
            stats.queued_apps = self.queue.len();
            stats.budget_cores = self.budget_total[step as usize];
            let power_deficit_cores: u64;
            if event {
                stats.hibernated_apps = self.ev.hibernated_apps;
                stats.allocated_cores = self.ev.group_allocated;
                // Only sites whose allocation changed this step (or
                // whose power threat fired) can carry a deficit: any
                // untouched overloaded site would have had its armed
                // threat fire this step, and threat processing always
                // restores alloc ≤ budget before later phases re-raise
                // it (touching the site).
                let touched = std::mem::take(&mut self.ev.touched);
                power_deficit_cores = touched
                    .iter()
                    .map(|&s| {
                        (self.sites[s].allocated_cores as u64)
                            .saturating_sub(self.budget_at(s, step) as u64)
                    })
                    .sum();
                self.ev.touched = touched;
                self.ev.touched.clear();
            } else {
                stats.hibernated_apps = self
                    .apps
                    .iter()
                    .filter(|a| a.hibernated && a.site.is_some())
                    .count();
                stats.allocated_cores = self.sites.iter().map(|s| s.allocated_cores as u64).sum();
                // Per-site shortfall, not the group-level difference:
                // surplus at one site cannot power another, so only
                // positive per-site deficits count.
                power_deficit_cores = (0..self.sites.len())
                    .map(|s| {
                        (self.sites[s].allocated_cores as u64)
                            .saturating_sub(self.budget_at(s, step) as u64)
                    })
                    .sum();
            }
            tot_transfers += stats.transfers as u64;
            tot_rehost_gb += stats.rehost_gb;
            tot_relaunch_gb += stats.relaunch_gb;
            tot_move_gb += stats.move_gb;
            tot_stranded_gb += stats.stranded_gb;
            vb_telemetry::histogram!("sched.step_transfer_gb").observe(stats.transfer_gb);
            series.push(step, &stats, power_deficit_cores);
            steps.push(stats);
        }
        drop(epoch_span);
        vb_telemetry::counter!("sched.transfers").add(tot_transfers);
        vb_telemetry::float_counter!("sched.rehost_gb").add(tot_rehost_gb);
        vb_telemetry::float_counter!("sched.relaunch_gb").add(tot_relaunch_gb);
        vb_telemetry::float_counter!("sched.move_gb").add(tot_move_gb);
        vb_telemetry::float_counter!("sched.stranded_gb").add(tot_stranded_gb);
        vb_telemetry::gauge!("sched.queued_apps").set(self.queue.len() as f64);
        series.flush(policy.name());
        let summary = PolicySummary::from_steps(
            policy.name(),
            &steps,
            self.preemptive_moves,
            self.dropped_apps,
            self.vm_decisions,
        );
        vb_telemetry::event(
            "sched.run_complete",
            &[
                ("policy", summary.policy.as_str().into()),
                ("total_gb", summary.total_gb.into()),
                ("peak_gb", summary.peak_gb.into()),
                ("preemptive_moves", (summary.preemptive_moves as u64).into()),
                ("dropped_apps", (summary.dropped_apps as u64).into()),
            ],
        );
        DetailedRun { steps, summary }
    }

    /// The powered-core budget of site `s` at `step` (precomputed).
    /// Out-of-range steps (defensive; the step loop never exceeds
    /// `n_steps`) read as zero power with a gap counter, not a panic.
    fn budget_at(&self, s: usize, step: u64) -> u32 {
        self.power[s]
            .budgets
            .get(step as usize)
            .copied()
            .unwrap_or_else(|| {
                vb_telemetry::counter!("sched.budget_gap_steps").inc();
                0
            })
    }

    /// Mark a site's allocation as changed this step (event driver's
    /// deficit bookkeeping); deduplicated via step stamps.
    fn touch(&mut self, s: usize) {
        if !self.ev.enabled {
            return;
        }
        let stamp = self.now + 1;
        if self.ev.touched_stamp[s] != stamp {
            self.ev.touched_stamp[s] = stamp;
            self.ev.touched.push(s);
        }
    }

    /// (Re-)arm site `s`'s power-threat wake-up: the earliest future
    /// step where its precomputed budget drops below the current
    /// allocation. Called on every allocation increase; decreases leave
    /// a possibly-early wake-up behind, which the firing path detects
    /// as a no-op (the lazy-invalidation half of the invariant *armed
    /// step ≤ earliest real violation*).
    fn arm_threat(&mut self, s: usize) {
        if !self.ev.enabled {
            return;
        }
        // The power phase for the current step has already run by the
        // time any allocation increase can happen, so the next check
        // that could fire is at `now + 1` — exactly when the legacy
        // loop would next compare this site's budget.
        let from = (self.now + 1) as usize;
        match self.power[s].next_budget_below(from, self.sites[s].allocated_cores) {
            Some(t) => {
                if self.ev.armed_threat[s] == t as u64 {
                    return; // already queued for exactly this step
                }
                self.ev.armed_threat[s] = t as u64;
                if let Some(bucket) = self.ev.threat.get_mut(t) {
                    bucket.push(s);
                } else {
                    self.ev.armed_threat[s] = NOT_ARMED;
                }
            }
            None => self.ev.armed_threat[s] = NOT_ARMED,
        }
    }

    /// (Re-)arm site `s`'s preemptive-drain wake-up: the earliest step
    /// where the day-ahead admissible floor drops below the site's
    /// stable cores. The target step must respect the phase the step
    /// loop is in: before this step's drain phase, the site may still
    /// be processed *this* step (ascending order, like the legacy
    /// scan); afterwards the next opportunity is the following step.
    fn arm_drain(&mut self, s: usize) {
        if !self.ev.enabled || !self.ev.drain_enabled {
            return;
        }
        let from = if self.ev.in_drain_phase {
            if s > self.ev.drain_pos {
                self.now // the ascending scan has not reached s yet
            } else {
                self.now + 1
            }
        } else if self.ev.drain_phase_done {
            self.now + 1
        } else {
            self.now
        } as usize;
        let stable = self.ev.stable_cores[s] as f64;
        let cores_f = self.cfg.cores_per_site as f64;
        match self.power[s].next_fd24_below(from, stable, cores_f, self.cfg.target_util) {
            Some(t) => {
                if self.ev.armed_drain[s] == t as u64 {
                    return;
                }
                self.ev.armed_drain[s] = t as u64;
                if t as u64 == self.now && self.ev.in_drain_phase {
                    self.ev.drain_worklist.push(Reverse(s));
                } else if let Some(bucket) = self.ev.drain.get_mut(t) {
                    bucket.push(s);
                } else {
                    self.ev.armed_drain[s] = NOT_ARMED;
                }
            }
            None => self.ev.armed_drain[s] = NOT_ARMED,
        }
    }

    /// Legacy phase 1: scan every registered app for expiry.
    fn expire_scan(&mut self) {
        let now = self.now;
        for id in 0..self.apps.len() {
            if self.apps[id].site.is_some() && self.apps[id].departs_at <= now {
                self.detach(AppId(id));
            }
        }
        self.drop_expired_queued();
    }

    /// Event phase 1: only apps whose departure bucket is due.
    fn expire_event(&mut self) {
        let now = self.now as usize;
        let due = match self.ev.expiry.get_mut(now) {
            Some(bucket) => std::mem::take(bucket),
            None => return,
        };
        if due.is_empty() {
            return;
        }
        let mut queue_drops = false;
        for &id in &due {
            debug_assert!(self.apps[id.0].departs_at <= self.now);
            if self.apps[id.0].site.is_some() {
                self.detach(id);
            } else if self.apps[id.0].in_queue {
                queue_drops = true;
            }
        }
        if queue_drops {
            self.drop_expired_queued();
        }
    }

    /// Queued apps whose lifetime lapsed never came back: drop them.
    fn drop_expired_queued(&mut self) {
        let now = self.now;
        let before = self.queue.len();
        let apps = &mut self.apps;
        self.queue.retain(|id| {
            let keep = apps[id.0].departs_at > now;
            if !keep {
                apps[id.0].in_queue = false;
            }
            keep
        });
        self.dropped_apps += before - self.queue.len();
    }

    /// Legacy phase 2: every site re-checks its budget every step.
    fn apply_power_scan(&mut self) -> Vec<(AppId, usize)> {
        let mut evicted = Vec::new();
        for s in 0..self.sites.len() {
            self.apply_power_site(s, &mut evicted);
        }
        evicted
    }

    /// Event phase 2: only sites whose armed power threat fires now.
    /// Entries whose armed step moved on (the site re-armed after an
    /// allocation change) are stale and skipped.
    fn apply_power_event(&mut self) -> Vec<(AppId, usize)> {
        let mut evicted = Vec::new();
        let now = self.now as usize;
        let entries = match self.ev.threat.get_mut(now) {
            Some(bucket) => std::mem::take(bucket),
            None => return evicted,
        };
        if entries.is_empty() {
            return evicted;
        }
        let mut woken: Vec<usize> = Vec::with_capacity(entries.len());
        let mut stale = 0u64;
        for s in entries {
            if self.ev.armed_threat[s] == self.now {
                woken.push(s);
            } else {
                stale += 1;
            }
        }
        if stale > 0 {
            vb_telemetry::counter!("sched.stale_events").add(stale);
        }
        woken.sort_unstable();
        woken.dedup();
        vb_telemetry::counter!("sched.event_wakeups").add(woken.len() as u64);
        for s in woken {
            self.ev.armed_threat[s] = NOT_ARMED;
            // A threat may have gone moot (allocation shrank without
            // re-arming); `apply_power_site` is then a no-op, but the
            // site still counts as touched for deficit bookkeeping.
            self.touch(s);
            self.apply_power_site(s, &mut evicted);
            self.arm_threat(s);
        }
        evicted
    }

    /// Hibernate degradable then evict stable apps at one overloaded
    /// site (oldest resident first) — shared by both drivers.
    fn apply_power_site(&mut self, s: usize, evicted: &mut Vec<(AppId, usize)>) {
        let budget = self.budget_at(s, self.now);

        // Hibernate degradable apps first (oldest resident first).
        // `hibernate` leaves the resident list untouched, so the scan
        // walks it in place and stops at the first index that brings
        // the site back under budget — a gradual dusk decline then
        // costs O(apps hibernated), not O(residents) per step.
        let mut i = 0;
        while self.sites[s].allocated_cores > budget && i < self.sites[s].apps.len() {
            let id = self.sites[s].apps[i];
            i += 1;
            if id == TOMBSTONE {
                continue;
            }
            let a = &self.apps[id.0];
            if !a.hibernated && a.spec.kind == VmKind::Degradable {
                self.hibernate(id, s);
            }
        }

        // Evict stable apps (oldest resident first).
        if self.sites[s].allocated_cores > budget {
            let victims: Vec<AppId> = self.sites[s]
                .apps
                .iter()
                .copied()
                .filter(|&id| {
                    if id == TOMBSTONE {
                        return false;
                    }
                    let a = &self.apps[id.0];
                    !a.hibernated && a.spec.kind == VmKind::Stable
                })
                .collect();
            for id in victims {
                if self.sites[s].allocated_cores <= budget {
                    break;
                }
                self.detach(id);
                evicted.push((id, s));
            }
        }
    }

    /// Try to host an evicted app on a sibling site chosen by the
    /// policy (restricted to the app's subgraph); queue it otherwise. A
    /// successful re-host is WAN traffic.
    fn try_rehost(
        &mut self,
        id: AppId,
        origin: usize,
        policy: &mut dyn Policy,
        stats: &mut GroupStepStats,
    ) {
        let cores = self.apps[id.0].spec.cores();
        match self.choose_target(origin, cores, policy) {
            Some(s) => {
                self.attach(id, s);
                stats.transfer_gb += self.apps[id.0].spec.mem_gb();
                stats.rehost_gb += self.apps[id.0].spec.mem_gb();
                stats.transfers += 1;
            }
            None => {
                stats.stranded_gb += self.apps[id.0].spec.mem_gb();
                self.queue_push(id);
            }
        }
    }

    /// Ask the policy for a re-host/relaunch target for an app of
    /// `cores` whose last site was `from`. Without subgraphs every site
    /// is allowed, so the policy sees the full snapshot slice and local
    /// indices are global — the restricted copy is pure overhead.
    fn choose_target(&mut self, from: usize, cores: u32, policy: &mut dyn Policy) -> Option<usize> {
        let snapshots = self.snapshots();
        if self.cfg.subgraphs.is_none() {
            return policy.choose_rehost(&snapshots, cores);
        }
        let allowed = self.movable_targets(from);
        let restricted: Vec<SiteSnapshot> = allowed.iter().map(|&i| snapshots[i]).collect();
        policy
            .choose_rehost(&restricted, cores)
            .map(|local| allowed[local])
    }

    /// Resume hibernated apps at one site where its budget allows,
    /// oldest resident first — shared by both drivers.
    fn resume_site(&mut self, s: usize) {
        // Nothing hibernated here: the scan would visit every resident
        // for nothing (the legacy driver calls this for every site,
        // every step).
        if self.ev.hibernated_per_site[s] == 0 {
            return;
        }
        let budget = self.budget_at(s, self.now);
        let alloc = self.sites[s].allocated_cores;
        // A resume attempt is a pure function of (resident order,
        // hibernated flags, allocation, budget). Since the last attempt
        // left `(allocation, budget)` at the memoized pair, every state
        // change that could newly enable a resume moved the allocation
        // (hibernate/resume/attach/detach of an active app) or the
        // budget; a hibernated app departing changes neither and only
        // removes a candidate. Unchanged pair ⇒ the attempt would
        // resume nothing — skip the resident scan (a solar site parked
        // at zero budget overnight costs O(1) per step, not O(apps)).
        if self.resume_checked[s] == (alloc, budget) {
            return;
        }
        // Even the smallest hibernated app cannot fit under the current
        // headroom (the bound only ever runs stale *low*, so a pass
        // here can still mean no candidate fits — never the reverse).
        if alloc.saturating_add(self.ev.min_hib_cores[s]) > budget {
            return;
        }
        // Stop once every hibernated resident has been visited: the
        // list tail past the last hibernated app holds only running
        // apps and tombstones, which the scan would skip one by one.
        let mut remaining = self.ev.hibernated_per_site[s];
        let mut resumed_any = false;
        for i in 0..self.sites[s].apps.len() {
            if remaining == 0 {
                break;
            }
            let id = self.sites[s].apps[i];
            if id == TOMBSTONE || !self.apps[id.0].hibernated {
                continue;
            }
            remaining -= 1;
            let cores = self.apps[id.0].spec.cores();
            if self.sites[s].allocated_cores + cores <= budget {
                self.resume(id, s);
                resumed_any = true;
            }
        }
        // One threat re-arm for the whole batch: each resume raises the
        // allocation, and a higher allocation's trigger step is never
        // later than a lower one's, so the final arm dominates every
        // intermediate arm the per-resume path would have pushed.
        if resumed_any {
            self.arm_threat(s);
        }
        self.resume_checked[s] = (self.sites[s].allocated_cores, budget);
    }

    /// Relaunch queued apps anywhere with room (relaunch = WAN
    /// traffic); failures re-queue in order.
    fn relaunch_queue(&mut self, policy: &mut dyn Policy, stats: &mut GroupStepStats) {
        let queued = std::mem::take(&mut self.queue);
        for id in queued {
            let cores = self.apps[id.0].spec.cores();
            let from = self.apps[id.0].last_site;
            match self.choose_target(from, cores, policy) {
                Some(s) => {
                    self.attach(id, s);
                    stats.transfer_gb += self.apps[id.0].spec.mem_gb();
                    stats.relaunch_gb += self.apps[id.0].spec.mem_gb();
                    stats.transfers += 1;
                }
                None => self.queue_push(id),
            }
        }
    }

    /// Site indices an app currently at `site` may move to: its
    /// subgraph's members when subgraphs are configured, every site
    /// otherwise.
    fn movable_targets(&self, site: usize) -> Vec<usize> {
        match &self.cfg.subgraphs {
            Some(groups) => groups
                .iter()
                .find(|g| g.contains(&site))
                .cloned()
                .unwrap_or_else(|| vec![site]),
            None => (0..self.sites.len()).collect(),
        }
    }

    /// Per-site state snapshots for runtime re-hosting decisions. The
    /// day-ahead minimum comes from the precomputed sliding-window
    /// minima — identical to the legacy per-step fold over
    /// [`day_ahead_window`], including the documented tail shortening.
    fn snapshots(&self) -> Vec<SiteSnapshot> {
        let now = self.now as usize;
        (0..self.sites.len())
            .map(|s| {
                let budget = self.budget_at(s, self.now);
                let cap = (self.cfg.target_util * budget as f64).floor() as u32;
                let raw = self.power[s]
                    .fd_min24
                    .get(now)
                    .copied()
                    .unwrap_or(f64::INFINITY);
                // `+∞` marks an empty window (past the forecast end,
                // unreachable while `now < n_steps`); the legacy fold
                // reported 0.0 there.
                let min_frac = if raw.is_finite() { raw } else { 0.0 };
                SiteSnapshot {
                    budget_cores: budget,
                    allocated_cores: self.sites[s].allocated_cores,
                    total_cores: self.cfg.cores_per_site,
                    admission_cap: cap,
                    forecast_min_24h_cores: min_frac
                        * self.cfg.cores_per_site as f64
                        * self.cfg.target_util,
                }
            })
            .collect()
    }

    /// Run the policy for an epoch batch and execute its assignments.
    fn plan_epoch(&mut self, batch: Vec<AppSpec>, policy: &mut dyn Policy) {
        // Register the new apps.
        let new_apps: Vec<NewApp> = batch
            .into_iter()
            .map(|spec| {
                let id = AppId(self.apps.len());
                let departs_at = self.now + spec.lifetime_steps as u64;
                self.apps.push(AppState {
                    spec,
                    site: None,
                    last_site: 0,
                    hibernated: false,
                    in_queue: false,
                    departs_at,
                    slot: 0,
                });
                // Lifetimes are ≥ 1 step, so the bucket is always ahead
                // of the current step; departures past the horizon never
                // fire (the legacy scan never saw them expire either).
                if self.ev.enabled && departs_at < self.n_steps {
                    self.ev.expiry[departs_at as usize].push(id);
                }
                NewApp { id, spec }
            })
            .collect();

        let movable = self.pick_movable();
        let ctx = self.build_context(&new_apps, &movable);
        let plan = policy.plan(&ctx);

        let movable_ids: Vec<AppId> = movable.iter().map(|m| m.id).collect();
        for assignment in plan {
            let id = assignment.app;
            let s = assignment.site.min(self.sites.len() - 1);
            if movable_ids.contains(&id) {
                // Preemptive move: enqueue; executed rate-limited.
                if self.apps[id.0].site == Some(s) {
                    continue;
                }
                self.pending_moves.push_back((id, s));
                vb_telemetry::counter!("sched.moves_planned").inc();
            } else {
                // Initial placement: deployment, not migration traffic.
                self.attach(id, s);
            }
        }
        // Any new app the policy failed to assign goes to the queue.
        for a in &new_apps {
            if self.apps[a.id.0].site.is_none() {
                self.queue_push(a.id);
            }
        }
    }

    /// Execute queued preemptive moves, at most `moves_per_step` per
    /// step. Stale orders (app departed, already moved, or evicted in
    /// the meantime) are dropped silently.
    fn execute_pending_moves(&mut self, stats: &mut GroupStepStats) {
        let mut executed = 0usize;
        while executed < self.cfg.moves_per_step {
            let Some((id, target)) = self.pending_moves.pop_front() else {
                break;
            };
            let app = &self.apps[id.0];
            if app.departs_at <= self.now || app.site.is_none() || app.site == Some(target) {
                continue; // stale order
            }
            self.detach(id);
            self.attach(id, target);
            stats.transfer_gb += self.apps[id.0].spec.mem_gb();
            stats.move_gb += self.apps[id.0].spec.mem_gb();
            stats.transfers += 1;
            self.preemptive_moves += 1;
            self.moved_at.insert(id, self.now);
            executed += 1;
        }
        vb_telemetry::counter!("sched.moves_executed").add(executed as u64);
    }

    /// Legacy phase 4c: scan every site in ascending order for a
    /// day-ahead capacity deficit, draining as budget allows.
    fn drain_step_scan(&mut self, policy: &mut dyn Policy, stats: &mut GroupStepStats) {
        let mut moved = 0usize;
        for s in 0..self.sites.len() {
            if moved >= self.cfg.moves_per_step {
                break;
            }
            self.drain_site(s, policy, stats, &mut moved);
        }
        vb_telemetry::counter!("sched.drain_moves").add(moved as u64);
    }

    /// Event phase 4c: only sites whose armed drain deadline fires now,
    /// processed in ascending site order via a worklist. A drain move
    /// landing on a *later* site can tip it into deficit mid-phase;
    /// `arm_drain`'s phase-aware `from` pushes such sites back into the
    /// live worklist, reproducing the legacy ascending scan exactly.
    fn drain_step_event(&mut self, policy: &mut dyn Policy, stats: &mut GroupStepStats) {
        self.ev.in_drain_phase = true;
        self.ev.drain_pos = 0;
        let now = self.now as usize;
        if let Some(bucket) = self.ev.drain.get_mut(now) {
            let entries = std::mem::take(bucket);
            let mut stale = 0u64;
            for s in entries {
                if self.ev.armed_drain[s] == self.now {
                    self.ev.drain_worklist.push(Reverse(s));
                } else {
                    stale += 1;
                }
            }
            if stale > 0 {
                vb_telemetry::counter!("sched.stale_events").add(stale);
            }
        }
        let mut moved = 0usize;
        while let Some(Reverse(s)) = self.ev.drain_worklist.pop() {
            if self.ev.armed_drain[s] != self.now {
                continue; // duplicate/stale worklist entry
            }
            self.ev.armed_drain[s] = NOT_ARMED;
            self.ev.drain_pos = s;
            if moved < self.cfg.moves_per_step {
                // `drain_site` re-derives the deficit from live state,
                // so a wake-up gone moot is a no-op, same as legacy.
                self.drain_site(s, policy, stats, &mut moved);
            }
            self.arm_drain(s);
        }
        self.ev.in_drain_phase = false;
        vb_telemetry::counter!("sched.drain_moves").add(moved as u64);
    }

    /// One site's preemptive draining: when committed stable cores
    /// exceed the worst admissible capacity of the next 24 h, move the
    /// *smallest* stable apps to policy-chosen homes — rate-limited to
    /// `moves_per_step`, so a predicted dip drains as a stream of small
    /// transfers instead of one burst ("performing more number of
    /// migrations … but each at a lower volume", §3.1).
    fn drain_site(
        &mut self,
        s: usize,
        policy: &mut dyn Policy,
        stats: &mut GroupStepStats,
        moved: &mut usize,
    ) {
        let snapshots = self.snapshots();
        let stable_cores: f64 = self.sites[s]
            .apps
            .iter()
            .filter(|&&id| {
                if id == TOMBSTONE {
                    return false;
                }
                let a = &self.apps[id.0];
                a.spec.kind == VmKind::Stable && !a.hibernated
            })
            .map(|id| self.apps[id.0].spec.cores() as f64)
            .sum();
        let mut deficit = stable_cores - snapshots[s].forecast_min_24h_cores;
        if deficit <= 0.0 {
            return;
        }
        // Smallest stable apps first, skipping recently moved ones.
        let mut victims: Vec<AppId> = self.sites[s]
            .apps
            .iter()
            .copied()
            .filter(|&id| {
                if id == TOMBSTONE {
                    return false;
                }
                let a = &self.apps[id.0];
                a.spec.kind == VmKind::Stable
                    && !a.hibernated
                    && a.departs_at > self.now + 24
                    && self
                        .moved_at
                        .get(&id)
                        .is_none_or(|&t| self.now >= t + STEPS_PER_DAY as u64)
            })
            .collect();
        victims.sort_by(|a, b| {
            self.apps[a.0]
                .spec
                .mem_gb()
                .total_cmp(&self.apps[b.0].spec.mem_gb())
        });
        for id in victims {
            if deficit <= 0.0 || *moved >= self.cfg.moves_per_step {
                break;
            }
            let cores = self.apps[id.0].spec.cores();
            let allowed = self.movable_targets(s);
            let snapshots = self.snapshots();
            let restricted: Vec<SiteSnapshot> = allowed.iter().map(|&i| snapshots[i]).collect();
            let Some(target) = policy
                .choose_rehost(&restricted, cores)
                .map(|local| allowed[local])
            else {
                break;
            };
            // Only drain toward genuinely safer ground.
            let score = |t: usize| {
                snapshots[t].forecast_min_24h_cores - snapshots[t].allocated_cores as f64
            };
            if target == s || score(target) <= score(s) {
                break;
            }
            self.detach(id);
            self.attach(id, target);
            stats.transfer_gb += self.apps[id.0].spec.mem_gb();
            stats.move_gb += self.apps[id.0].spec.mem_gb();
            stats.transfers += 1;
            self.preemptive_moves += 1;
            self.moved_at.insert(id, self.now);
            deficit -= cores as f64;
            *moved += 1;
        }
    }

    /// Stable apps at sites whose forecast shows a capacity deficit,
    /// largest first, capped at `max_movable`.
    fn pick_movable(&self) -> Vec<MovableApp> {
        if self.cfg.max_movable == 0 {
            // Policies that never move residents (Greedy, MIP-24h)
            // would scan every at-risk site's apps only to truncate to
            // nothing.
            return Vec::new();
        }
        let mut out = Vec::new();
        for (s, site) in self.sites.iter().enumerate() {
            if !self.site_at_risk(s) {
                continue;
            }
            for &id in &site.apps {
                if id == TOMBSTONE {
                    continue;
                }
                let a = &self.apps[id.0];
                // Anti-thrash cooldown: an app moved preemptively in the
                // last 12 h is not offered again.
                let recently_moved = self.moved_at.get(&id).is_some_and(|&t| self.now < t + 48);
                if recently_moved {
                    continue;
                }
                if a.spec.kind == VmKind::Stable && !a.hibernated && a.departs_at > self.now {
                    out.push(MovableApp {
                        id,
                        current_site: s,
                        cores: a.spec.cores(),
                        mem_gb: a.spec.mem_gb(),
                        remaining_steps: (a.departs_at - self.now) as u32,
                    });
                }
            }
        }
        out.sort_by(|a, b| b.mem_gb.total_cmp(&a.mem_gb));
        out.truncate(self.cfg.max_movable);
        out
    }

    /// Does the day-ahead forecast show this site's committed cores
    /// exceeding capacity at any point in the next day? Reads the
    /// precomputed window minimum: `∃t: forecast[t] × cores <
    /// committed` holds iff it holds at the window minimum (multiplying
    /// by a non-negative constant preserves order), and an empty tail
    /// window (`+∞` minimum) is risk-free, matching the legacy
    /// `any()` over an empty slice.
    fn site_at_risk(&self, s: usize) -> bool {
        let committed = self.sites[s].allocated_cores as f64;
        let min_frac = self.power[s]
            .fd_min24
            .get(self.now as usize)
            .copied()
            .unwrap_or(f64::INFINITY);
        (min_frac * self.cfg.cores_per_site as f64) < committed
    }

    fn build_context(&self, new_apps: &[NewApp], movable: &[MovableApp]) -> PlanContext {
        let bucket = (self.cfg.bucket_steps as usize).max(1);
        let remaining = (self.n_steps - self.now) as usize;
        // Cap the look-ahead at a week of buckets; `.max(1)` keeps the
        // clamp range valid when one bucket already covers more than a
        // week (`bucket_steps > WEEK_AHEAD_STEPS` used to panic here:
        // `clamp` requires min ≤ max).
        let week_buckets = (WEEK_AHEAD_STEPS / bucket).max(1);
        let buckets = remaining.div_ceil(bucket).clamp(1, week_buckets);

        let movable_ids: Vec<AppId> = movable.iter().map(|m| m.id).collect();
        let sites = self
            .sites
            .iter()
            .enumerate()
            .map(|(si, st)| {
                // Degradable running cores absorb dips without traffic:
                // credit them to forecast capacity rather than charging
                // them as displaceable load.
                let degradable: f64 = st
                    .apps
                    .iter()
                    .filter(|&&id| {
                        if id == TOMBSTONE {
                            return false;
                        }
                        let a = &self.apps[id.0];
                        a.spec.kind == VmKind::Degradable && !a.hibernated
                    })
                    .map(|id| self.apps[id.0].spec.cores() as f64)
                    .sum();

                let mut capacity = Vec::with_capacity(buckets);
                let mut committed = Vec::with_capacity(buckets);
                for b in 0..buckets {
                    let lo = self.now as usize + b * bucket;
                    let hi = (lo + bucket).min(st.actual.len());
                    // Composite forecast: the freshest product per lead
                    // time (3h-ahead, then day-ahead, then week-ahead).
                    let series = if b * bucket < 12 {
                        &st.f3
                    } else if b * bucket < DAY_AHEAD_STEPS {
                        &st.fd
                    } else {
                        &st.fw
                    };
                    let mean_frac = if lo < hi {
                        vb_stats::mean(&series.values[lo..hi])
                    } else {
                        0.0
                    };
                    // Plan against the *admissible* share of forecast
                    // power (the runtime admits up to target_util of the
                    // powered cores). Planning to 100 % of the forecast
                    // would leave no margin for forecast error — any
                    // small dip would force evictions.
                    capacity.push(
                        mean_frac * self.cfg.cores_per_site as f64 * self.cfg.target_util
                            + degradable,
                    );
                }

                // Committed stable cores at each bucket start,
                // excluding apps offered as movable. One departure-
                // sorted sweep instead of a per-bucket rescan: core
                // counts are integers, so the f64 running sum is exact
                // and bit-identical to summing each bucket's survivors
                // in residence order.
                let mut departures: Vec<(u64, u32)> = st
                    .apps
                    .iter()
                    .filter(|&&id| {
                        if id == TOMBSTONE {
                            return false;
                        }
                        let a = &self.apps[id.0];
                        a.spec.kind == VmKind::Stable && !a.hibernated && !movable_ids.contains(&id)
                    })
                    .map(|id| (self.apps[id.0].departs_at, self.apps[id.0].spec.cores()))
                    .collect();
                departures.sort_unstable_by_key(|&(d, _)| d);
                let mut alive: f64 = departures.iter().map(|&(_, c)| c as u64).sum::<u64>() as f64;
                let mut next_departure = 0usize;
                for b in 0..buckets {
                    let t = (self.now as usize + b * bucket) as u64;
                    while next_departure < departures.len() && departures[next_departure].0 <= t {
                        alive -= departures[next_departure].1 as f64;
                        next_departure += 1;
                    }
                    committed.push(alive);
                }
                SitePlanInfo {
                    name: st.site.name.clone(),
                    total_cores: self.cfg.cores_per_site,
                    current_budget_cores: self.budget_at(si, self.now),
                    allocated_cores: st.allocated_cores,
                    capacity_forecast_cores: capacity,
                    committed_cores: committed,
                }
            })
            .collect();
        PlanContext {
            now: self.now,
            bucket_steps: self.cfg.bucket_steps,
            sites,
            new_apps: new_apps.to_vec(),
            movable: movable.to_vec(),
        }
    }

    /// Push an app onto the relaunch queue (tracking membership for the
    /// event driver's expiry handling).
    fn queue_push(&mut self, id: AppId) {
        self.apps[id.0].in_queue = true;
        self.queue.push(id);
    }

    fn attach(&mut self, id: AppId, s: usize) {
        debug_assert!(self.apps[id.0].site.is_none());
        let cores = self.apps[id.0].spec.cores();
        self.apps[id.0].site = Some(s);
        self.apps[id.0].last_site = s;
        self.apps[id.0].hibernated = false;
        self.apps[id.0].in_queue = false;
        self.apps[id.0].slot = self.sites[s].apps.len();
        self.sites[s].apps.push(id);
        self.sites[s].allocated_cores += cores;
        self.ev.group_allocated += cores as u64;
        self.vm_decisions += self.apps[id.0].spec.n_vms as u64;
        if self.apps[id.0].spec.kind == VmKind::Stable {
            self.ev.stable_cores[s] += cores as u64;
            self.arm_drain(s);
        }
        self.touch(s);
        self.arm_threat(s);
    }

    fn detach(&mut self, id: AppId) {
        if let Some(s) = self.apps[id.0].site.take() {
            // O(1) removal: tombstone the slot; compact (preserving
            // relative order) once dead entries outnumber live ones, so
            // the amortized cost per departure stays constant and scans
            // over the list never see more than ~half waste.
            let slot = self.apps[id.0].slot;
            debug_assert_eq!(self.sites[s].apps[slot], id);
            self.sites[s].apps[slot] = TOMBSTONE;
            self.sites[s].dead += 1;
            if self.sites[s].dead * 2 > self.sites[s].apps.len() {
                let old = std::mem::take(&mut self.sites[s].apps);
                let mut kept = Vec::with_capacity(old.len() - self.sites[s].dead);
                for a in old {
                    if a != TOMBSTONE {
                        self.apps[a.0].slot = kept.len();
                        kept.push(a);
                    }
                }
                self.sites[s].apps = kept;
                self.sites[s].dead = 0;
            }
            let cores = self.apps[id.0].spec.cores();
            if !self.apps[id.0].hibernated {
                self.sites[s].allocated_cores -= cores;
                self.ev.group_allocated -= cores as u64;
                if self.apps[id.0].spec.kind == VmKind::Stable {
                    self.ev.stable_cores[s] -= cores as u64;
                    self.arm_drain(s);
                }
                self.touch(s);
            } else {
                // Hibernated apps are always degradable (stable apps
                // are evicted, never hibernated), so stable_cores and
                // the allocation are untouched here.
                self.apps[id.0].hibernated = false;
                self.ev.hibernated_apps -= 1;
                self.ev.hibernated_per_site[s] -= 1;
                if self.ev.hibernated_per_site[s] == 0 {
                    self.ev.min_hib_cores[s] = u32::MAX;
                }
            }
        }
    }

    /// Hibernate a degradable app in place (no WAN traffic).
    fn hibernate(&mut self, id: AppId, s: usize) {
        debug_assert!(!self.apps[id.0].hibernated);
        let cores = self.apps[id.0].spec.cores();
        self.apps[id.0].hibernated = true;
        self.sites[s].allocated_cores -= cores;
        self.ev.group_allocated -= cores as u64;
        self.ev.hibernated_apps += 1;
        self.ev.hibernated_per_site[s] += 1;
        self.ev.min_hib_cores[s] = self.ev.min_hib_cores[s].min(cores);
        self.touch(s);
    }

    /// Resume a hibernated app (free of charge — no WAN traffic).
    /// Threat re-arming is the caller's job ([`GroupSim::resume_site`]
    /// arms once per batch, which dominates per-resume arming).
    fn resume(&mut self, id: AppId, s: usize) {
        debug_assert!(self.apps[id.0].hibernated);
        let cores = self.apps[id.0].spec.cores();
        self.apps[id.0].hibernated = false;
        self.sites[s].allocated_cores += cores;
        self.ev.group_allocated += cores as u64;
        self.ev.hibernated_apps -= 1;
        self.ev.hibernated_per_site[s] -= 1;
        if self.ev.hibernated_per_site[s] == 0 {
            self.ev.min_hib_cores[s] = u32::MAX;
        }
        self.touch(s);
    }
}

/// The day-ahead readout window at step `now` over a series of length
/// `len`: `[now, now + DAY_AHEAD_STEPS)` clipped to the series end.
///
/// Near the end of the run the window *intentionally* shortens: steps
/// past the simulated horizon are never played, so capacity risk there
/// cannot affect the run, and scanning past `len` would require
/// forecast data that does not exist. Every consumer — `site_at_risk`,
/// the `forecast_min_24h_cores` snapshot, and the event core's
/// precomputed minima — shares this same clipped window, so the final
/// day's readouts are consistently (and deliberately) less
/// conservative rather than divergently so. Pinned by the
/// `day_ahead_window_*` regression tests.
pub fn day_ahead_window(now: usize, len: usize) -> (usize, usize) {
    (now.min(len), (now + DAY_AHEAD_STEPS).min(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyPolicy;
    use crate::mip::{MipConfig, MipPolicy};

    fn tiny_cfg() -> GroupSimConfig {
        GroupSimConfig {
            cores_per_site: 400,
            days: 2,
            epoch_steps: 12,
            bucket_steps: 12,
            seed: 7,
            ..GroupSimConfig::default()
        }
    }

    fn catalog() -> Catalog {
        Catalog::europe(42)
    }

    #[test]
    fn greedy_run_completes_and_accounts() {
        let sim = GroupSim::new(&catalog(), &["NO-solar", "UK-wind", "PT-wind"], tiny_cfg())
            .expect("Table 1 trio exists in the catalog");
        let n = sim.n_steps() as usize;
        let summary = sim.run(&mut GreedyPolicy::new());
        assert_eq!(summary.per_step_gb.len(), n);
        assert_eq!(summary.policy, "Greedy");
        assert!(summary.total_gb >= 0.0);
        assert!(summary.peak_gb <= summary.total_gb + 1e-9);
        assert!((0.0..=1.0).contains(&summary.zero_fraction));
        assert!(summary.vm_decisions > 0, "placements must be counted");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg())
            .expect("sites exist")
            .run(&mut GreedyPolicy::new());
        let b = GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg())
            .expect("sites exist")
            .run(&mut GreedyPolicy::new());
        assert_eq!(a.per_step_gb, b.per_step_gb);
        assert_eq!(a.total_gb, b.total_gb);
        assert_eq!(a.vm_decisions, b.vm_decisions);
    }

    #[test]
    fn mip_run_completes_without_fallbacks() {
        let sim =
            GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg()).expect("sites exist");
        let mut policy = MipPolicy::new(MipConfig::mip_24h());
        let summary = sim.run(&mut policy);
        assert_eq!(summary.policy, "MIP-24h");
        assert_eq!(policy.fallbacks_used(), 0, "exact solves should succeed");
    }

    #[test]
    fn multi_site_beats_single_site_on_availability() {
        // The §2.3 claim: aggregating complementary sites reduces
        // unavailability for stable applications.
        let single = GroupSim::new(&catalog(), &["NO-solar"], tiny_cfg())
            .expect("site exists")
            .run(&mut GreedyPolicy::new());
        let multi = GroupSim::new(&catalog(), &["NO-solar", "UK-wind", "PT-wind"], tiny_cfg())
            .expect("sites exist")
            .run(&mut GreedyPolicy::new());
        assert!(
            multi.unavailable_app_steps < single.unavailable_app_steps,
            "multi {} vs single {}",
            multi.unavailable_app_steps,
            single.unavailable_app_steps
        );
    }

    #[test]
    fn per_step_volumes_are_nonnegative_and_finite() {
        let summary = GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg())
            .expect("sites exist")
            .run(&mut GreedyPolicy::new());
        assert!(summary
            .per_step_gb
            .iter()
            .all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn bad_site_names_are_diagnosed_not_panicked() {
        let err = GroupSim::new(&catalog(), &["Atlantis-wave"], tiny_cfg())
            .err()
            .expect("unknown site must be rejected");
        assert_eq!(err, SimError::UnknownSite("Atlantis-wave".into()));
        assert!(err.to_string().contains("Atlantis-wave"));
        let err = GroupSim::new(&catalog(), &[], tiny_cfg())
            .err()
            .expect("empty group must be rejected");
        assert_eq!(err, SimError::NoSites);
    }

    /// Regression for the `clamp(1, …)` panic: with `bucket_steps`
    /// wider than a week, `WEEK_AHEAD_STEPS / bucket` is 0 and the old
    /// clamp hit `min > max`. The run must complete with exactly one
    /// planning bucket instead.
    #[test]
    fn oversized_bucket_steps_do_not_panic() {
        for bucket_steps in [700, 1344, 10_000] {
            let cfg = GroupSimConfig {
                bucket_steps,
                days: 1,
                ..tiny_cfg()
            };
            let summary = GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], cfg)
                .expect("sites exist")
                .run(&mut GreedyPolicy::new());
            assert_eq!(
                summary.per_step_gb.len(),
                STEPS_PER_DAY as usize,
                "bucket_steps {bucket_steps} must still complete the run"
            );
        }
    }

    /// The day-ahead window clips at the series end: full-width in the
    /// interior, shortening over the last day, empty past the end.
    #[test]
    fn day_ahead_window_clips_at_the_tail() {
        let len = 2 * DAY_AHEAD_STEPS;
        assert_eq!(day_ahead_window(0, len), (0, DAY_AHEAD_STEPS));
        assert_eq!(
            day_ahead_window(DAY_AHEAD_STEPS, len),
            (DAY_AHEAD_STEPS, len)
        );
        // Tail: the window shortens step by step…
        assert_eq!(day_ahead_window(len - 10, len), (len - 10, len));
        // …and is empty at/past the end (lo == hi).
        assert_eq!(day_ahead_window(len, len), (len, len));
        assert_eq!(day_ahead_window(len + 5, len), (len, len));
    }

    /// The precomputed sliding-window minima must equal a brute-force
    /// fold over [`day_ahead_window`] at *every* step — in particular
    /// over the shortened tail windows of the final day.
    #[test]
    fn fd_minima_match_brute_force_including_tail() {
        let sim =
            GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg()).expect("sites exist");
        for (s, st) in sim.sites.iter().enumerate() {
            let n = sim.n_steps as usize;
            assert_eq!(sim.power[s].fd_min24.len(), n);
            for t in 0..n {
                let (lo, hi) = day_ahead_window(t, st.fd.len());
                let brute = st.fd.values[lo..hi]
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(
                    sim.power[s].fd_min24[t].to_bits(),
                    brute.to_bits(),
                    "site {s} step {t}: precomputed min diverged from the fold"
                );
                // The last day's windows genuinely shorten.
                if t + DAY_AHEAD_STEPS > st.fd.len() {
                    assert!(hi - lo < DAY_AHEAD_STEPS);
                }
            }
        }
    }

    /// The threshold scans must agree with linear scans over the
    /// precomputed arrays (bucket skipping is an optimization only).
    #[test]
    fn threshold_scans_match_linear_scans() {
        let sim =
            GroupSim::new(&catalog(), &["UK-wind", "NO-solar"], tiny_cfg()).expect("sites exist");
        let p = &sim.power[0];
        for from in [0usize, 7, 95, 100, 190, 500] {
            for threshold in [0u32, 1, 50, 200, 400, 401] {
                let linear = (from..p.budgets.len()).find(|&t| p.budgets[t] < threshold);
                assert_eq!(
                    p.next_budget_below(from, threshold),
                    linear,
                    "budget scan from {from} below {threshold}"
                );
            }
            for stable in [0.0f64, 10.0, 150.0, 280.0, 1e9] {
                let cores_f = sim.cfg.cores_per_site as f64;
                let util = sim.cfg.target_util;
                let linear =
                    (from..p.fd_min24.len()).find(|&t| p.fd_min24[t] * cores_f * util < stable);
                assert_eq!(
                    p.next_fd24_below(from, stable, cores_f, util),
                    linear,
                    "fd24 scan from {from} below {stable}"
                );
            }
        }
    }
}

#[cfg(test)]
mod subgraph_tests {
    use super::*;
    use crate::greedy::GreedyPolicy;

    fn cfg_with_groups() -> GroupSimConfig {
        GroupSimConfig {
            cores_per_site: 400,
            days: 2,
            seed: 7,
            // Two disjoint subgraphs: {0,1} and {2,3}.
            subgraphs: Some(vec![vec![0, 1], vec![2, 3]]),
            ..GroupSimConfig::default()
        }
    }

    #[test]
    fn subgraph_restriction_runs_and_bounds_targets() {
        let catalog = Catalog::europe(42);
        let names = ["NO-solar", "UK-wind", "PT-wind", "ES-wind"];
        let summary = GroupSim::new(&catalog, &names, cfg_with_groups())
            .expect("sites exist")
            .run(&mut GreedyPolicy::new());
        assert_eq!(summary.per_step_gb.len(), 2 * STEPS_PER_DAY as usize);
        assert!(summary.per_step_gb.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn movable_targets_respect_groups() {
        let catalog = Catalog::europe(42);
        let names = ["NO-solar", "UK-wind", "PT-wind", "ES-wind"];
        let sim = GroupSim::new(&catalog, &names, cfg_with_groups()).expect("sites exist");
        assert_eq!(sim.movable_targets(0), vec![0, 1]);
        assert_eq!(sim.movable_targets(3), vec![2, 3]);
        // Ungrouped default covers every site.
        let open = GroupSim::new(
            &catalog,
            &names,
            GroupSimConfig {
                cores_per_site: 400,
                days: 1,
                ..GroupSimConfig::default()
            },
        )
        .expect("sites exist");
        assert_eq!(open.movable_targets(1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unconstrained_rehosting_strands_no_more_than_constrained() {
        // Removing the latency constraint can only widen re-host options,
        // so the ungrouped run must have no more stranded app-steps.
        let catalog = Catalog::europe(42);
        let names = ["NO-solar", "UK-wind", "PT-wind", "ES-wind"];
        let grouped = GroupSim::new(&catalog, &names, cfg_with_groups())
            .expect("sites exist")
            .run(&mut GreedyPolicy::new());
        let open_cfg = GroupSimConfig {
            subgraphs: None,
            ..cfg_with_groups()
        };
        let open = GroupSim::new(&catalog, &names, open_cfg)
            .expect("sites exist")
            .run(&mut GreedyPolicy::new());
        assert!(
            open.unavailable_app_steps <= grouped.unavailable_app_steps,
            "open {} vs grouped {}",
            open.unavailable_app_steps,
            grouped.unavailable_app_steps
        );
    }
}
