//! Multi-site group simulation (the Table 1 / Fig 7 experiment).
//!
//! Runs a multi-VB group — the sites of one selected clique — over a
//! power-trace period at 15-minute resolution. Applications arrive and
//! are placed by a [`Policy`] at fixed planning epochs; between epochs
//! the *runtime* reacts to actual power:
//!
//! * A site whose power drops below its committed cores first hibernates
//!   degradable applications in place (no WAN traffic), then evicts
//!   stable applications.
//! * Evicted stable applications are re-placed on sibling sites with
//!   available power — each such move is WAN traffic equal to the app's
//!   memory (§3's migration-overhead accounting). With no room anywhere
//!   the app waits in a group-wide queue (an availability violation,
//!   which multi-VB is designed to make rare).
//! * When power returns, hibernated apps resume free of charge and
//!   queued apps relaunch — the relaunch transfer counts as migration
//!   traffic, mirroring the paper's "consider these as VMs migrated
//!   into the site".
//!
//! All four Table 1 policies run against identical arrival sequences and
//! power traces (same seeds), so differences are purely placement
//! quality.

use crate::app::{AppGen, AppGenConfig, AppSpec};
use crate::policy::{AppId, MovableApp, NewApp, PlanContext, Policy, SitePlanInfo, SiteSnapshot};
use serde::{Deserialize, Serialize};
use vb_cluster::VmKind;
use vb_stats::{Cdf, Summary, TimeSeries};
use vb_trace::{forecast_for, generate_in, Catalog, Horizon, Site};

/// Errors constructing a group simulation from a catalog + config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A requested site name is not in the catalog.
    UnknownSite(String),
    /// The group needs at least one site.
    NoSites,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownSite(name) => {
                write!(f, "unknown site {name:?}: not present in the catalog")
            }
            SimError::NoSites => write!(f, "a group simulation needs at least one site"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation steps per day at the paper's 15-minute resolution
/// (re-exported from the canonical [`vb_trace::STEPS_PER_DAY`] at the
/// width the scheduler uses).
pub const STEPS_PER_DAY: u32 = vb_trace::STEPS_PER_DAY as u32;

/// Day-ahead look-ahead window in steps: how far `site_at_risk` and the
/// `forecast_min_24h_cores` snapshot scan the day-ahead forecast. Both
/// must use the same window — the policy's risk assessment is meant to
/// see exactly the horizon the snapshot summarises.
pub const DAY_AHEAD_STEPS: usize = STEPS_PER_DAY as usize;

/// Configuration of a group simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSimConfig {
    /// Cores per site (paper: ≈700 servers × 40 cores).
    pub cores_per_site: u32,
    /// Admission headroom: a site accepts apps up to this fraction of
    /// its powered cores (paper: 0.7).
    pub target_util: f64,
    /// Planning cadence in steps (default 12 = 3 h).
    pub epoch_steps: u32,
    /// Forecast bucket width in steps for the policy's look-ahead.
    pub bucket_steps: u32,
    /// First day-of-year of the simulated period.
    pub start_day: u32,
    /// Length of the simulated period in days (paper: 7).
    pub days: u32,
    /// Application workload; when `None`, sized to fill ~70 % of the
    /// group's mean available power.
    pub app_cfg: Option<AppGenConfig>,
    /// Cap on preemptive-move candidates offered to the policy per
    /// epoch (keeps the MIP small).
    pub max_movable: usize,
    /// Planned preemptive moves execute at most this many per step,
    /// spreading them over the epoch instead of bursting at the
    /// planning instant (the paper's MIP-peak "spreading out migrations
    /// over time").
    pub moves_per_step: usize,
    /// Optional subgraph structure (Fig 6 step 2): site-index groups an
    /// application must stay inside once placed. Initial placement picks
    /// the subgraph implicitly (by picking a site); re-hosting, queued
    /// relaunch and preemptive drains are then restricted to that
    /// subgraph — the paper's latency constraint on splitting/moving
    /// apps. `None` treats all sites as one group.
    pub subgraphs: Option<Vec<Vec<usize>>>,
    /// Seed for workload generation.
    pub seed: u64,
}

impl Default for GroupSimConfig {
    fn default() -> GroupSimConfig {
        GroupSimConfig {
            cores_per_site: 700 * 40,
            target_util: 0.7,
            epoch_steps: 12,
            bucket_steps: 12,
            start_day: 120,
            days: 7,
            app_cfg: None,
            max_movable: 0,
            moves_per_step: 2,
            subgraphs: None,
            seed: 42,
        }
    }
}

/// Per-step group telemetry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupStepStats {
    /// Step index (15-minute intervals since simulation start).
    pub step: u64,
    /// WAN transfer volume this step (evictions re-placed + relaunches +
    /// preemptive moves), GB.
    pub transfer_gb: f64,
    /// Portion of `transfer_gb` from forced eviction re-hosting.
    pub rehost_gb: f64,
    /// Portion of `transfer_gb` from queued-app relaunches.
    pub relaunch_gb: f64,
    /// Portion of `transfer_gb` from policy-ordered preemptive moves.
    pub move_gb: f64,
    /// Number of application transfers this step.
    pub transfers: usize,
    /// Memory evicted with nowhere to go (queued), GB.
    pub stranded_gb: f64,
    /// Stable apps waiting in the group queue after this step.
    pub queued_apps: usize,
    /// Degradable apps hibernated across the group after this step.
    pub hibernated_apps: usize,
    /// Group-wide committed cores after this step.
    pub allocated_cores: u64,
    /// Group-wide powered cores this step.
    pub budget_cores: u64,
}

/// Aggregate result of one policy run — one Table 1 row plus the Fig 7
/// CDF series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySummary {
    /// Policy name (Table 1 row label).
    pub policy: String,
    /// Total migration volume over the run, GB.
    pub total_gb: f64,
    /// 99th percentile of per-step migration volume (all steps), GB.
    pub p99_gb: f64,
    /// Largest per-step migration volume, GB.
    pub peak_gb: f64,
    /// Standard deviation of per-step volume, GB.
    pub std_gb: f64,
    /// Fraction of steps with zero migration (Fig 7's "zero values").
    pub zero_fraction: f64,
    /// Per-step volumes (for CDFs and plots).
    pub per_step_gb: Vec<f64>,
    /// Step-summed app-waiting time: Σ over steps of queued stable apps.
    pub unavailable_app_steps: u64,
    /// Preemptive moves the policy ordered.
    pub preemptive_moves: usize,
    /// Apps that expired while queued (never re-hosted).
    pub dropped_apps: usize,
}

impl PolicySummary {
    fn from_steps(
        policy: &str,
        steps: &[GroupStepStats],
        moves: usize,
        dropped: usize,
    ) -> PolicySummary {
        let per_step: Vec<f64> = steps.iter().map(|s| s.transfer_gb).collect();
        let summary = Summary::of(&per_step);
        let zero_fraction = Cdf::of_nonzero(&per_step).zero_fraction();
        PolicySummary {
            policy: policy.to_string(),
            total_gb: summary.total,
            p99_gb: summary.p99,
            peak_gb: summary.max,
            std_gb: summary.std,
            zero_fraction,
            per_step_gb: per_step,
            unavailable_app_steps: steps.iter().map(|s| s.queued_apps as u64).sum(),
            preemptive_moves: moves,
            dropped_apps: dropped,
        }
    }
}

#[derive(Debug, Clone)]
struct AppState {
    spec: AppSpec,
    /// Current site, or `None` while queued.
    site: Option<usize>,
    /// Last site the app ran at (anchors its subgraph while queued).
    last_site: usize,
    hibernated: bool,
    departs_at: u64,
}

#[derive(Debug, Clone)]
struct SiteState {
    site: Site,
    /// Actual normalized power over the run.
    actual: TimeSeries,
    /// Forecast products, degraded per horizon (3 h / day / week).
    f3: TimeSeries,
    fd: TimeSeries,
    fw: TimeSeries,
    /// Apps resident here (running or hibernated).
    apps: Vec<AppId>,
    /// Running committed cores (stable + degradable, not hibernated).
    allocated_cores: u32,
    budget_cores: u32,
}

/// Per-step telemetry plus the run summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetailedRun {
    /// Per-step group telemetry.
    pub steps: Vec<GroupStepStats>,
    /// The run's Table-1-style summary.
    pub summary: PolicySummary,
}

/// The multi-VB group simulator.
pub struct GroupSim {
    cfg: GroupSimConfig,
    sites: Vec<SiteState>,
    apps: Vec<AppState>,
    /// Evicted stable apps waiting for capacity anywhere.
    queue: Vec<AppId>,
    gen: AppGen,
    now: u64,
    n_steps: u64,
    preemptive_moves: usize,
    dropped_apps: usize,
    /// Last preemptive-move step per app, for the anti-thrash cooldown.
    moved_at: std::collections::HashMap<AppId, u64>,
    /// Planned preemptive moves awaiting execution (app, target site).
    pending_moves: std::collections::VecDeque<(AppId, usize)>,
}

impl GroupSim {
    /// Build a group over the given catalog sites.
    ///
    /// # Errors
    /// [`SimError::NoSites`] when `site_names` is empty and
    /// [`SimError::UnknownSite`] when a name is not in the catalog, so
    /// callers (benches, examples) fail with a diagnostic instead of a
    /// panic backtrace.
    pub fn new(
        catalog: &Catalog,
        site_names: &[&str],
        cfg: GroupSimConfig,
    ) -> Result<GroupSim, SimError> {
        if site_names.is_empty() {
            return Err(SimError::NoSites);
        }
        let field = catalog.field();
        // Per-site trace + forecast generation is the expensive part of
        // setup; each site is independent, so fan out across cores. The
        // traces are seeded per site, so the result is identical at any
        // thread count.
        let sites: Vec<SiteState> = vb_par::par_map(site_names.len(), |i| {
            let name = site_names[i];
            let site = catalog
                .get(name)
                .ok_or_else(|| SimError::UnknownSite(name.to_string()))?
                .clone();
            let actual = generate_in(&site, cfg.start_day, cfg.days, field);
            let f3 = forecast_for(&actual, &site, Horizon::Hours3, field);
            let fd = forecast_for(&actual, &site, Horizon::DayAhead, field);
            let fw = forecast_for(&actual, &site, Horizon::WeekAhead, field);
            Ok(SiteState {
                site,
                actual,
                f3,
                fd,
                fw,
                apps: Vec::new(),
                allocated_cores: 0,
                budget_cores: cfg.cores_per_site,
            })
        })
        .into_iter()
        .collect::<Result<_, SimError>>()?;

        let n_steps = (cfg.days as u64) * STEPS_PER_DAY as u64;
        let app_cfg = cfg.app_cfg.clone().unwrap_or_else(|| {
            // Size demand to ~70% of the group's mean available power.
            let mean_power: f64 = sites
                .iter()
                .map(|s| vb_stats::mean(&s.actual.values))
                .sum::<f64>()
                / sites.len() as f64;
            let target =
                cfg.cores_per_site as f64 * sites.len() as f64 * mean_power * cfg.target_util;
            AppGenConfig::sized_for(target)
        });
        let gen = AppGen::new(app_cfg, cfg.seed);
        let sim = GroupSim {
            cfg,
            sites,
            apps: Vec::new(),
            queue: Vec::new(),
            gen,
            now: 0,
            n_steps,
            preemptive_moves: 0,
            dropped_apps: 0,
            moved_at: std::collections::HashMap::new(),
            pending_moves: std::collections::VecDeque::new(),
        };
        Ok(sim)
    }

    /// Total steps the run covers.
    pub fn n_steps(&self) -> u64 {
        self.n_steps
    }

    /// Run a policy over the whole period and summarise.
    pub fn run(self, policy: &mut dyn Policy) -> PolicySummary {
        self.run_detailed(policy).summary
    }

    /// Run a policy and keep the full per-step telemetry alongside the
    /// summary (used by the figure benches and diagnostics).
    pub fn run_detailed(mut self, policy: &mut dyn Policy) -> DetailedRun {
        let _run_span = vb_telemetry::span!("sched.group_run");
        vb_telemetry::event(
            "sched.run_start",
            &[
                ("policy", policy.name().into()),
                ("sites", (self.sites.len() as u64).into()),
                ("steps", self.n_steps.into()),
            ],
        );
        let mut steps = Vec::with_capacity(self.n_steps as usize);
        let mut epoch_arrivals: Vec<AppSpec> = Vec::new();
        for step in 0..self.n_steps {
            let _step_span = vb_telemetry::span!("sched.sim_step");
            self.now = step;
            let mut stats = GroupStepStats {
                step,
                ..GroupStepStats::default()
            };

            // 1. Expirations.
            self.expire();

            // 2. Actual power → budgets; hibernate/evict as needed.
            let evicted = self.apply_power(step);

            // 3. Re-place evicted apps on sibling sites (within their
            // subgraph when Fig 6 step-2 groups are configured).
            for (id, origin) in evicted {
                self.try_rehost(id, origin, policy, &mut stats);
            }

            // 4. Resume hibernated apps; relaunch queued apps.
            self.recover(policy, &mut stats);

            // 4b. Execute planned preemptive moves, rate-limited so
            // policy-ordered migrations spread over the epoch.
            self.execute_pending_moves(&mut stats);

            // 4c. Preemptive drain (MIP-peak): gradually move apps off
            // sites whose day-ahead forecast shows a capacity deficit,
            // before the dip forces an eviction burst.
            if policy.preemptive_drain() {
                self.preemptive_drain_step(policy, &mut stats);
            }

            // 5. Collect this step's arrivals; plan at epoch boundaries.
            epoch_arrivals.extend(self.gen.step());
            if step % self.cfg.epoch_steps as u64 == 0 {
                let batch = std::mem::take(&mut epoch_arrivals);
                self.plan_epoch(batch, policy);
            }

            // 6. Bookkeeping.
            stats.queued_apps = self.queue.len();
            stats.hibernated_apps = self
                .apps
                .iter()
                .filter(|a| a.hibernated && a.site.is_some())
                .count();
            stats.allocated_cores = self.sites.iter().map(|s| s.allocated_cores as u64).sum();
            stats.budget_cores = self.sites.iter().map(|s| s.budget_cores as u64).sum();
            vb_telemetry::counter!("sched.transfers").add(stats.transfers as u64);
            vb_telemetry::float_counter!("sched.rehost_gb").add(stats.rehost_gb);
            vb_telemetry::float_counter!("sched.relaunch_gb").add(stats.relaunch_gb);
            vb_telemetry::float_counter!("sched.move_gb").add(stats.move_gb);
            vb_telemetry::float_counter!("sched.stranded_gb").add(stats.stranded_gb);
            vb_telemetry::gauge!("sched.queued_apps").set(stats.queued_apps as f64);
            vb_telemetry::histogram!("sched.step_transfer_gb").observe(stats.transfer_gb);
            // Per-site shortfall, not the group-level difference: surplus
            // at one site cannot power another, so only positive per-site
            // deficits count.
            let power_deficit_cores: u64 = self
                .sites
                .iter()
                .map(|s| (s.allocated_cores as u64).saturating_sub(s.budget_cores as u64))
                .sum();
            vb_telemetry::series_sample(
                "sched.step_series",
                policy.name(),
                step,
                &[
                    ("transfer_gb", stats.transfer_gb),
                    ("move_gb", stats.move_gb),
                    ("queued_apps", stats.queued_apps as f64),
                    ("hibernated_apps", stats.hibernated_apps as f64),
                    ("power_deficit_cores", power_deficit_cores as f64),
                    ("allocated_cores", stats.allocated_cores as f64),
                    ("budget_cores", stats.budget_cores as f64),
                ],
            );
            steps.push(stats);
        }
        let summary = PolicySummary::from_steps(
            policy.name(),
            &steps,
            self.preemptive_moves,
            self.dropped_apps,
        );
        vb_telemetry::event(
            "sched.run_complete",
            &[
                ("policy", summary.policy.as_str().into()),
                ("total_gb", summary.total_gb.into()),
                ("peak_gb", summary.peak_gb.into()),
                ("preemptive_moves", (summary.preemptive_moves as u64).into()),
                ("dropped_apps", (summary.dropped_apps as u64).into()),
            ],
        );
        DetailedRun { steps, summary }
    }

    fn expire(&mut self) {
        let now = self.now;
        for id in 0..self.apps.len() {
            if self.apps[id].site.is_some() && self.apps[id].departs_at <= now {
                self.detach(AppId(id));
            }
        }
        // Queued apps whose lifetime lapsed never came back: drop them.
        let before = self.queue.len();
        let apps = &self.apps;
        self.queue.retain(|id| apps[id.0].departs_at > now);
        self.dropped_apps += before - self.queue.len();
    }

    /// Set budgets from actual power; hibernate degradable then evict
    /// stable apps at overloaded sites. Returns evicted stable apps with
    /// their origin site.
    fn apply_power(&mut self, step: u64) -> Vec<(AppId, usize)> {
        let mut evicted = Vec::new();
        for s in 0..self.sites.len() {
            let frac = self.sites[s].actual.values[step as usize].clamp(0.0, 1.0);
            let budget = (frac * self.cfg.cores_per_site as f64).floor() as u32;
            self.sites[s].budget_cores = budget;

            // Hibernate degradable apps first (oldest resident first).
            if self.sites[s].allocated_cores > budget {
                let victims: Vec<AppId> = self.sites[s]
                    .apps
                    .iter()
                    .copied()
                    .filter(|id| {
                        let a = &self.apps[id.0];
                        !a.hibernated && a.spec.kind == VmKind::Degradable
                    })
                    .collect();
                for id in victims {
                    if self.sites[s].allocated_cores <= budget {
                        break;
                    }
                    self.apps[id.0].hibernated = true;
                    self.sites[s].allocated_cores -= self.apps[id.0].spec.cores();
                }
            }

            // Evict stable apps (oldest resident first).
            if self.sites[s].allocated_cores > budget {
                let victims: Vec<AppId> = self.sites[s]
                    .apps
                    .iter()
                    .copied()
                    .filter(|id| {
                        let a = &self.apps[id.0];
                        !a.hibernated && a.spec.kind == VmKind::Stable
                    })
                    .collect();
                for id in victims {
                    if self.sites[s].allocated_cores <= budget {
                        break;
                    }
                    self.detach(id);
                    evicted.push((id, s));
                }
            }
        }
        evicted
    }

    /// Try to host an evicted app on a sibling site chosen by the
    /// policy (restricted to the app's subgraph); queue it otherwise. A
    /// successful re-host is WAN traffic.
    fn try_rehost(
        &mut self,
        id: AppId,
        origin: usize,
        policy: &mut dyn Policy,
        stats: &mut GroupStepStats,
    ) {
        let cores = self.apps[id.0].spec.cores();
        let allowed = self.movable_targets(origin);
        let snapshots = self.snapshots();
        let restricted: Vec<SiteSnapshot> = allowed.iter().map(|&i| snapshots[i]).collect();
        match policy
            .choose_rehost(&restricted, cores)
            .map(|local| allowed[local])
        {
            Some(s) => {
                self.attach(id, s);
                stats.transfer_gb += self.apps[id.0].spec.mem_gb();
                stats.rehost_gb += self.apps[id.0].spec.mem_gb();
                stats.transfers += 1;
            }
            None => {
                stats.stranded_gb += self.apps[id.0].spec.mem_gb();
                self.queue.push(id);
            }
        }
    }

    /// Resume hibernated apps where budgets allow, then relaunch queued
    /// apps anywhere with room (relaunch = WAN traffic).
    fn recover(&mut self, policy: &mut dyn Policy, stats: &mut GroupStepStats) {
        for s in 0..self.sites.len() {
            let resident: Vec<AppId> = self.sites[s].apps.clone();
            for id in resident {
                if !self.apps[id.0].hibernated {
                    continue;
                }
                let cores = self.apps[id.0].spec.cores();
                if self.sites[s].allocated_cores + cores <= self.sites[s].budget_cores {
                    self.apps[id.0].hibernated = false;
                    self.sites[s].allocated_cores += cores;
                }
            }
        }
        let queued = std::mem::take(&mut self.queue);
        for id in queued {
            let cores = self.apps[id.0].spec.cores();
            let allowed = self.movable_targets(self.apps[id.0].last_site);
            let snapshots = self.snapshots();
            let restricted: Vec<SiteSnapshot> = allowed.iter().map(|&i| snapshots[i]).collect();
            match policy
                .choose_rehost(&restricted, cores)
                .map(|local| allowed[local])
            {
                Some(s) => {
                    self.attach(id, s);
                    stats.transfer_gb += self.apps[id.0].spec.mem_gb();
                    stats.relaunch_gb += self.apps[id.0].spec.mem_gb();
                    stats.transfers += 1;
                }
                None => self.queue.push(id),
            }
        }
    }

    /// Site indices an app currently at `site` may move to: its
    /// subgraph's members when subgraphs are configured, every site
    /// otherwise.
    fn movable_targets(&self, site: usize) -> Vec<usize> {
        match &self.cfg.subgraphs {
            Some(groups) => groups
                .iter()
                .find(|g| g.contains(&site))
                .cloned()
                .unwrap_or_else(|| vec![site]),
            None => (0..self.sites.len()).collect(),
        }
    }

    /// Per-site state snapshots for runtime re-hosting decisions.
    fn snapshots(&self) -> Vec<SiteSnapshot> {
        self.sites
            .iter()
            .map(|st| {
                let cap = (self.cfg.target_util * st.budget_cores as f64).floor() as u32;
                let lo = self.now as usize;
                let hi = (lo + DAY_AHEAD_STEPS).min(st.fd.len());
                let min_frac = if lo < hi {
                    st.fd.values[lo..hi]
                        .iter()
                        .copied()
                        .fold(f64::INFINITY, f64::min)
                } else {
                    0.0
                };
                SiteSnapshot {
                    budget_cores: st.budget_cores,
                    allocated_cores: st.allocated_cores,
                    total_cores: self.cfg.cores_per_site,
                    admission_cap: cap,
                    forecast_min_24h_cores: min_frac
                        * self.cfg.cores_per_site as f64
                        * self.cfg.target_util,
                }
            })
            .collect()
    }

    /// Run the policy for an epoch batch and execute its assignments.
    fn plan_epoch(&mut self, batch: Vec<AppSpec>, policy: &mut dyn Policy) {
        // Register the new apps.
        let new_apps: Vec<NewApp> = batch
            .into_iter()
            .map(|spec| {
                let id = AppId(self.apps.len());
                self.apps.push(AppState {
                    spec,
                    site: None,
                    last_site: 0,
                    hibernated: false,
                    departs_at: self.now + spec.lifetime_steps as u64,
                });
                NewApp { id, spec }
            })
            .collect();

        let movable = self.pick_movable();
        let ctx = self.build_context(&new_apps, &movable);
        let plan = policy.plan(&ctx);

        let movable_ids: Vec<AppId> = movable.iter().map(|m| m.id).collect();
        for assignment in plan {
            let id = assignment.app;
            let s = assignment.site.min(self.sites.len() - 1);
            if movable_ids.contains(&id) {
                // Preemptive move: enqueue; executed rate-limited.
                if self.apps[id.0].site == Some(s) {
                    continue;
                }
                self.pending_moves.push_back((id, s));
                vb_telemetry::counter!("sched.moves_planned").inc();
            } else {
                // Initial placement: deployment, not migration traffic.
                self.attach(id, s);
            }
        }
        // Any new app the policy failed to assign goes to the queue.
        for a in &new_apps {
            if self.apps[a.id.0].site.is_none() {
                self.queue.push(a.id);
            }
        }
    }

    /// Execute queued preemptive moves, at most `moves_per_step` per
    /// step. Stale orders (app departed, already moved, or evicted in
    /// the meantime) are dropped silently.
    fn execute_pending_moves(&mut self, stats: &mut GroupStepStats) {
        let mut executed = 0usize;
        while executed < self.cfg.moves_per_step {
            let Some((id, target)) = self.pending_moves.pop_front() else {
                break;
            };
            let app = &self.apps[id.0];
            if app.departs_at <= self.now || app.site.is_none() || app.site == Some(target) {
                continue; // stale order
            }
            self.detach(id);
            self.attach(id, target);
            stats.transfer_gb += self.apps[id.0].spec.mem_gb();
            stats.move_gb += self.apps[id.0].spec.mem_gb();
            stats.transfers += 1;
            self.preemptive_moves += 1;
            self.moved_at.insert(id, self.now);
            executed += 1;
        }
        vb_telemetry::counter!("sched.moves_executed").add(executed as u64);
    }

    /// One step of preemptive draining: for each site whose committed
    /// stable cores exceed the worst admissible capacity of the next
    /// 24 h, move the *smallest* stable apps to policy-chosen homes —
    /// rate-limited to `moves_per_step`, so a predicted dip drains as a
    /// stream of small transfers instead of one burst ("performing more
    /// number of migrations … but each at a lower volume", §3.1).
    fn preemptive_drain_step(&mut self, policy: &mut dyn Policy, stats: &mut GroupStepStats) {
        let mut moved = 0usize;
        for s in 0..self.sites.len() {
            if moved >= self.cfg.moves_per_step {
                break;
            }
            let snapshots = self.snapshots();
            let stable_cores: f64 = self.sites[s]
                .apps
                .iter()
                .filter(|id| {
                    let a = &self.apps[id.0];
                    a.spec.kind == VmKind::Stable && !a.hibernated
                })
                .map(|id| self.apps[id.0].spec.cores() as f64)
                .sum();
            let mut deficit = stable_cores - snapshots[s].forecast_min_24h_cores;
            if deficit <= 0.0 {
                continue;
            }
            // Smallest stable apps first, skipping recently moved ones.
            let mut victims: Vec<AppId> = self.sites[s]
                .apps
                .iter()
                .copied()
                .filter(|id| {
                    let a = &self.apps[id.0];
                    a.spec.kind == VmKind::Stable
                        && !a.hibernated
                        && a.departs_at > self.now + 24
                        && self
                            .moved_at
                            .get(id)
                            .is_none_or(|&t| self.now >= t + STEPS_PER_DAY as u64)
                })
                .collect();
            victims.sort_by(|a, b| {
                self.apps[a.0]
                    .spec
                    .mem_gb()
                    .total_cmp(&self.apps[b.0].spec.mem_gb())
            });
            for id in victims {
                if deficit <= 0.0 || moved >= self.cfg.moves_per_step {
                    break;
                }
                let cores = self.apps[id.0].spec.cores();
                let allowed = self.movable_targets(s);
                let snapshots = self.snapshots();
                let restricted: Vec<SiteSnapshot> = allowed.iter().map(|&i| snapshots[i]).collect();
                let Some(target) = policy
                    .choose_rehost(&restricted, cores)
                    .map(|local| allowed[local])
                else {
                    break;
                };
                // Only drain toward genuinely safer ground.
                let score = |t: usize| {
                    snapshots[t].forecast_min_24h_cores - snapshots[t].allocated_cores as f64
                };
                if target == s || score(target) <= score(s) {
                    break;
                }
                self.detach(id);
                self.attach(id, target);
                stats.transfer_gb += self.apps[id.0].spec.mem_gb();
                stats.move_gb += self.apps[id.0].spec.mem_gb();
                stats.transfers += 1;
                self.preemptive_moves += 1;
                self.moved_at.insert(id, self.now);
                deficit -= cores as f64;
                moved += 1;
            }
        }
        vb_telemetry::counter!("sched.drain_moves").add(moved as u64);
    }

    /// Stable apps at sites whose forecast shows a capacity deficit,
    /// largest first, capped at `max_movable`.
    fn pick_movable(&self) -> Vec<MovableApp> {
        let mut out = Vec::new();
        for (s, site) in self.sites.iter().enumerate() {
            if !self.site_at_risk(s) {
                continue;
            }
            for &id in &site.apps {
                let a = &self.apps[id.0];
                // Anti-thrash cooldown: an app moved preemptively in the
                // last 12 h is not offered again.
                let recently_moved = self.moved_at.get(&id).is_some_and(|&t| self.now < t + 48);
                if recently_moved {
                    continue;
                }
                if a.spec.kind == VmKind::Stable && !a.hibernated && a.departs_at > self.now {
                    out.push(MovableApp {
                        id,
                        current_site: s,
                        cores: a.spec.cores(),
                        mem_gb: a.spec.mem_gb(),
                        remaining_steps: (a.departs_at - self.now) as u32,
                    });
                }
            }
        }
        out.sort_by(|a, b| b.mem_gb.total_cmp(&a.mem_gb));
        out.truncate(self.cfg.max_movable);
        out
    }

    /// Does the day-ahead forecast show this site's committed cores
    /// exceeding capacity at any point in the next day?
    fn site_at_risk(&self, s: usize) -> bool {
        let site = &self.sites[s];
        let committed = site.allocated_cores as f64;
        let end = (self.now as usize + DAY_AHEAD_STEPS).min(site.fd.len());
        site.fd.values[self.now as usize..end]
            .iter()
            .any(|&f| (f * self.cfg.cores_per_site as f64) < committed)
    }

    fn build_context(&self, new_apps: &[NewApp], movable: &[MovableApp]) -> PlanContext {
        let bucket = (self.cfg.bucket_steps as usize).max(1);
        let remaining = (self.n_steps - self.now) as usize;
        let buckets = remaining
            .div_ceil(bucket)
            .clamp(1, (7 * STEPS_PER_DAY as usize) / bucket);

        let movable_ids: Vec<AppId> = movable.iter().map(|m| m.id).collect();
        let sites = self
            .sites
            .iter()
            .map(|st| {
                // Degradable running cores absorb dips without traffic:
                // credit them to forecast capacity rather than charging
                // them as displaceable load.
                let degradable: f64 = st
                    .apps
                    .iter()
                    .filter(|id| {
                        let a = &self.apps[id.0];
                        a.spec.kind == VmKind::Degradable && !a.hibernated
                    })
                    .map(|id| self.apps[id.0].spec.cores() as f64)
                    .sum();

                let mut capacity = Vec::with_capacity(buckets);
                let mut committed = Vec::with_capacity(buckets);
                for b in 0..buckets {
                    let lo = self.now as usize + b * bucket;
                    let hi = (lo + bucket).min(st.actual.len());
                    // Composite forecast: the freshest product per lead
                    // time (3h-ahead, then day-ahead, then week-ahead).
                    let series = if b * bucket < 12 {
                        &st.f3
                    } else if b * bucket < DAY_AHEAD_STEPS {
                        &st.fd
                    } else {
                        &st.fw
                    };
                    let mean_frac = if lo < hi {
                        vb_stats::mean(&series.values[lo..hi])
                    } else {
                        0.0
                    };
                    // Plan against the *admissible* share of forecast
                    // power (the runtime admits up to target_util of the
                    // powered cores). Planning to 100 % of the forecast
                    // would leave no margin for forecast error — any
                    // small dip would force evictions.
                    capacity.push(
                        mean_frac * self.cfg.cores_per_site as f64 * self.cfg.target_util
                            + degradable,
                    );

                    // Committed stable cores at the bucket start,
                    // excluding apps offered as movable.
                    let t = (self.now as usize + b * bucket) as u64;
                    let stable: f64 = st
                        .apps
                        .iter()
                        .filter(|id| {
                            let a = &self.apps[id.0];
                            a.spec.kind == VmKind::Stable
                                && !a.hibernated
                                && a.departs_at > t
                                && !movable_ids.contains(id)
                        })
                        .map(|id| self.apps[id.0].spec.cores() as f64)
                        .sum();
                    committed.push(stable);
                }
                SitePlanInfo {
                    name: st.site.name.clone(),
                    total_cores: self.cfg.cores_per_site,
                    current_budget_cores: st.budget_cores,
                    allocated_cores: st.allocated_cores,
                    capacity_forecast_cores: capacity,
                    committed_cores: committed,
                }
            })
            .collect();
        PlanContext {
            now: self.now,
            bucket_steps: self.cfg.bucket_steps,
            sites,
            new_apps: new_apps.to_vec(),
            movable: movable.to_vec(),
        }
    }

    fn attach(&mut self, id: AppId, s: usize) {
        debug_assert!(self.apps[id.0].site.is_none());
        self.apps[id.0].site = Some(s);
        self.apps[id.0].last_site = s;
        self.apps[id.0].hibernated = false;
        self.sites[s].apps.push(id);
        self.sites[s].allocated_cores += self.apps[id.0].spec.cores();
    }

    fn detach(&mut self, id: AppId) {
        if let Some(s) = self.apps[id.0].site.take() {
            self.sites[s].apps.retain(|&a| a != id);
            if !self.apps[id.0].hibernated {
                self.sites[s].allocated_cores -= self.apps[id.0].spec.cores();
            }
            self.apps[id.0].hibernated = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyPolicy;
    use crate::mip::{MipConfig, MipPolicy};

    fn tiny_cfg() -> GroupSimConfig {
        GroupSimConfig {
            cores_per_site: 400,
            days: 2,
            epoch_steps: 12,
            bucket_steps: 12,
            seed: 7,
            ..GroupSimConfig::default()
        }
    }

    fn catalog() -> Catalog {
        Catalog::europe(42)
    }

    #[test]
    fn greedy_run_completes_and_accounts() {
        let sim =
            GroupSim::new(&catalog(), &["NO-solar", "UK-wind", "PT-wind"], tiny_cfg()).unwrap();
        let n = sim.n_steps() as usize;
        let summary = sim.run(&mut GreedyPolicy::new());
        assert_eq!(summary.per_step_gb.len(), n);
        assert_eq!(summary.policy, "Greedy");
        assert!(summary.total_gb >= 0.0);
        assert!(summary.peak_gb <= summary.total_gb + 1e-9);
        assert!((0.0..=1.0).contains(&summary.zero_fraction));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg())
            .unwrap()
            .run(&mut GreedyPolicy::new());
        let b = GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg())
            .unwrap()
            .run(&mut GreedyPolicy::new());
        assert_eq!(a.per_step_gb, b.per_step_gb);
        assert_eq!(a.total_gb, b.total_gb);
    }

    #[test]
    fn mip_run_completes_without_fallbacks() {
        let sim = GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg()).unwrap();
        let mut policy = MipPolicy::new(MipConfig::mip_24h());
        let summary = sim.run(&mut policy);
        assert_eq!(summary.policy, "MIP-24h");
        assert_eq!(policy.fallbacks_used(), 0, "exact solves should succeed");
    }

    #[test]
    fn multi_site_beats_single_site_on_availability() {
        // The §2.3 claim: aggregating complementary sites reduces
        // unavailability for stable applications.
        let single = GroupSim::new(&catalog(), &["NO-solar"], tiny_cfg())
            .unwrap()
            .run(&mut GreedyPolicy::new());
        let multi = GroupSim::new(&catalog(), &["NO-solar", "UK-wind", "PT-wind"], tiny_cfg())
            .unwrap()
            .run(&mut GreedyPolicy::new());
        assert!(
            multi.unavailable_app_steps < single.unavailable_app_steps,
            "multi {} vs single {}",
            multi.unavailable_app_steps,
            single.unavailable_app_steps
        );
    }

    #[test]
    fn per_step_volumes_are_nonnegative_and_finite() {
        let summary = GroupSim::new(&catalog(), &["UK-wind", "PT-wind"], tiny_cfg())
            .unwrap()
            .run(&mut GreedyPolicy::new());
        assert!(summary
            .per_step_gb
            .iter()
            .all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn bad_site_names_are_diagnosed_not_panicked() {
        let err = GroupSim::new(&catalog(), &["Atlantis-wave"], tiny_cfg())
            .err()
            .expect("unknown site must be rejected");
        assert_eq!(err, SimError::UnknownSite("Atlantis-wave".into()));
        assert!(err.to_string().contains("Atlantis-wave"));
        let err = GroupSim::new(&catalog(), &[], tiny_cfg())
            .err()
            .expect("empty group must be rejected");
        assert_eq!(err, SimError::NoSites);
    }
}

#[cfg(test)]
mod subgraph_tests {
    use super::*;
    use crate::greedy::GreedyPolicy;

    fn cfg_with_groups() -> GroupSimConfig {
        GroupSimConfig {
            cores_per_site: 400,
            days: 2,
            seed: 7,
            // Two disjoint subgraphs: {0,1} and {2,3}.
            subgraphs: Some(vec![vec![0, 1], vec![2, 3]]),
            ..GroupSimConfig::default()
        }
    }

    #[test]
    fn subgraph_restriction_runs_and_bounds_targets() {
        let catalog = Catalog::europe(42);
        let names = ["NO-solar", "UK-wind", "PT-wind", "ES-wind"];
        let summary = GroupSim::new(&catalog, &names, cfg_with_groups())
            .unwrap()
            .run(&mut GreedyPolicy::new());
        assert_eq!(summary.per_step_gb.len(), 2 * 96);
        assert!(summary.per_step_gb.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn movable_targets_respect_groups() {
        let catalog = Catalog::europe(42);
        let names = ["NO-solar", "UK-wind", "PT-wind", "ES-wind"];
        let sim = GroupSim::new(&catalog, &names, cfg_with_groups()).unwrap();
        assert_eq!(sim.movable_targets(0), vec![0, 1]);
        assert_eq!(sim.movable_targets(3), vec![2, 3]);
        // Ungrouped default covers every site.
        let open = GroupSim::new(
            &catalog,
            &names,
            GroupSimConfig {
                cores_per_site: 400,
                days: 1,
                ..GroupSimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(open.movable_targets(1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unconstrained_rehosting_strands_no_more_than_constrained() {
        // Removing the latency constraint can only widen re-host options,
        // so the ungrouped run must have no more stranded app-steps.
        let catalog = Catalog::europe(42);
        let names = ["NO-solar", "UK-wind", "PT-wind", "ES-wind"];
        let grouped = GroupSim::new(&catalog, &names, cfg_with_groups())
            .unwrap()
            .run(&mut GreedyPolicy::new());
        let open_cfg = GroupSimConfig {
            subgraphs: None,
            ..cfg_with_groups()
        };
        let open = GroupSim::new(&catalog, &names, open_cfg)
            .unwrap()
            .run(&mut GreedyPolicy::new());
        assert!(
            open.unavailable_app_steps <= grouped.unavailable_app_steps,
            "open {} vs grouped {}",
            open.unavailable_app_steps,
            grouped.unavailable_app_steps
        );
    }
}
