#![warn(missing_docs)]

//! # vb-par — deterministic scoped-thread parallelism
//!
//! Every figure/table sweep in this workspace is embarrassingly
//! parallel: independent per-site trace generation, per-pair cov
//! computations, per-clique scoring, per-policy simulations. This crate
//! is the one executor they all share, with a contract the experiment
//! harness depends on:
//!
//! **Determinism.** [`par_map`] writes each task's result at its input
//! index, so the output vector is *bit-identical* at any thread count —
//! `threads = 1` and `threads = 64` produce the same bytes as long as
//! the task closure itself is a pure function of its index. All
//! workspace RNG is seeded per site/app stream, so the paper artifacts
//! satisfy that premise, and `tests/` pins it (Table 1, the §2.3 pair
//! sweep and the clique ranking are compared across thread counts).
//!
//! **Work sharing.** Workers claim chunks of the index range from an
//! atomic cursor instead of pre-splitting it, so uneven task costs (a
//! 7-day MIP policy run next to a greedy one) don't leave threads idle.
//! [`ParConfig::min_chunk`] amortises cursor traffic for cheap tasks.
//!
//! **Panic propagation.** A panicking task aborts the map and re-raises
//! the original payload on the caller thread after the remaining
//! workers drain.
//!
//! **Thread-count control**, strongest first:
//! 1. an explicit [`ParConfig::threads`],
//! 2. a scoped [`with_threads`] override (used by the determinism tests),
//! 3. the `VB_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! **Telemetry.** `par.tasks` / `par.workers` counters, a
//! `par.worker_tasks` histogram (work-sharing balance across workers)
//! and `par.busy` spans. Each fan-out also captures the caller's trace
//! context and adopts it on every worker, so worker span timelines nest
//! under the span that launched the `par_map`. All of it compiles out
//! with the workspace-wide `telemetry` feature.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Worker count; `None` defers to the [`with_threads`] override,
    /// then `VB_THREADS`, then the machine's available parallelism.
    pub threads: Option<usize>,
    /// Smallest index chunk a worker claims per cursor fetch. Raise it
    /// for very cheap tasks so cursor traffic does not dominate.
    pub min_chunk: usize,
}

impl Default for ParConfig {
    fn default() -> ParConfig {
        ParConfig {
            threads: None,
            min_chunk: 1,
        }
    }
}

impl ParConfig {
    /// Config pinned to an explicit worker count.
    pub fn with_threads(threads: usize) -> ParConfig {
        ParConfig {
            threads: Some(threads),
            ..ParConfig::default()
        }
    }

    /// The worker count a map over `n_tasks` indices will actually use:
    /// the configured/overridden/env/machine thread count, capped so no
    /// worker would sit idle even if every claim were `min_chunk` wide.
    pub fn resolve_threads(&self, n_tasks: usize) -> usize {
        if n_tasks == 0 {
            return 0;
        }
        let configured = self
            .threads
            .or_else(override_threads)
            .or_else(env_threads)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            });
        configured
            .max(1)
            .min(n_tasks.div_ceil(self.min_chunk.max(1)))
    }
}

/// Scoped thread-count override, set by [`with_threads`]. 0 = unset.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Serialises [`with_threads`] scopes (the override is process-global).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn override_threads() -> Option<usize> {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

fn env_threads() -> Option<usize> {
    std::env::var("VB_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Run `f` with every [`par_map`] in the process pinned to `threads`
/// workers (unless a call site passes an explicit [`ParConfig::threads`],
/// which still wins). Scopes are serialised against each other, so
/// concurrent tests using different counts cannot interleave. The
/// override is restored even if `f` panics.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    assert!(threads > 0, "thread override must be positive");
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(OVERRIDE.swap(threads, Ordering::Relaxed));
    f()
}

/// Map `f` over `0..n` in parallel; `out[i] == f(i)` in input order,
/// bit-identical at any thread count. Uses [`ParConfig::default`] (so
/// `VB_THREADS` and [`with_threads`] apply).
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(&ParConfig::default(), n, f)
}

/// [`par_map`] with tasks claimed `min_chunk` indices at a time —
/// for maps whose per-index work is too cheap to pay one cursor fetch
/// each (e.g. the §2.3 pair sweep's ~300 small cov computations).
pub fn par_map_chunked<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let cfg = ParConfig {
        min_chunk: min_chunk.max(1),
        ..ParConfig::default()
    };
    par_map_with(&cfg, n, f)
}

/// [`par_map`] under an explicit [`ParConfig`].
pub fn par_map_with<T, F>(cfg: &ParConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = cfg.resolve_threads(n);
    let chunk = cfg.min_chunk.max(1);
    vb_telemetry::counter!("par.tasks").add(n as u64);
    vb_telemetry::counter!("par.workers").add(threads as u64);

    if threads <= 1 {
        // Sequential reference path: the parallel path must bit-match it.
        let _span = vb_telemetry::span!("par.busy");
        vb_telemetry::histogram!("par.worker_tasks").observe(n as f64);
        return (0..n).map(f).collect();
    }

    // Workers claim [start, start+chunk) ranges off a shared cursor and
    // keep each completed chunk tagged with its start index; chunks are
    // disjoint, so reassembling them in start order restores exactly the
    // sequential output.
    let cursor = AtomicUsize::new(0);
    // Carry the caller's open span into every worker so their `par.busy`
    // spans (and everything the tasks open) nest under the fan-out point
    // in trace timelines.
    let trace_ctx = vb_telemetry::trace_context();
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(n.div_ceil(chunk));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let _trace = vb_telemetry::adopt_trace(trace_ctx);
                    let _span = vb_telemetry::span!("par.busy");
                    let mut mine: Vec<(usize, Vec<T>)> = Vec::new();
                    let mut tasks = 0u64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        mine.push((start, (start..end).map(f).collect()));
                        tasks += (end - start) as u64;
                    }
                    vb_telemetry::histogram!("par.worker_tasks").observe(tasks as f64);
                    mine
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mine) => chunks.extend(mine),
                // Re-raise the task's own panic payload on the caller;
                // the scope has already joined the remaining workers.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, values) in chunks {
        out.extend(values);
    }
    debug_assert_eq!(out.len(), n, "every index produced exactly once");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_in_input_order() {
        let out = par_map(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert!(par_map(0, |i| i).is_empty());
    }

    #[test]
    fn all_thread_counts_match_sequential() {
        let expect: Vec<u64> = (0..101)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for threads in [1, 2, 3, 8, 64] {
            let cfg = ParConfig::with_threads(threads);
            let out = par_map_with(&cfg, 101, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn chunked_claims_match_sequential() {
        let expect: Vec<usize> = (0..100).map(|i| i + 7).collect();
        for min_chunk in [1, 3, 16, 100, 1000] {
            assert_eq!(
                par_map_chunked(100, min_chunk, |i| i + 7),
                expect,
                "min_chunk = {min_chunk}"
            );
        }
    }

    #[test]
    fn threads_cap_at_useful_parallelism() {
        let cfg = ParConfig::with_threads(64);
        assert_eq!(cfg.resolve_threads(3), 3);
        assert_eq!(cfg.resolve_threads(0), 0);
        let chunky = ParConfig {
            threads: Some(64),
            min_chunk: 10,
        };
        // 25 tasks in chunks of 10 is at most 3 busy workers.
        assert_eq!(chunky.resolve_threads(25), 3);
    }

    #[test]
    fn with_threads_scopes_and_restores() {
        assert_eq!(override_threads(), None);
        let inner = with_threads(3, || ParConfig::default().resolve_threads(1000));
        assert_eq!(inner, 3);
        assert_eq!(override_threads(), None, "override restored");
        // Explicit config still wins over the scope.
        let pinned = with_threads(3, || ParConfig::with_threads(2).resolve_threads(1000));
        assert_eq!(pinned, 2);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let result = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(override_threads(), None);
    }

    #[test]
    fn task_panics_propagate_with_payload() {
        let result = std::panic::catch_unwind(|| {
            par_map_with(&ParConfig::with_threads(4), 32, |i| {
                if i == 13 {
                    panic!("task 13 failed");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("task 13 failed"), "payload: {message:?}");
    }

    #[test]
    fn uneven_task_costs_still_assemble_in_order() {
        // Early indices sleep so late indices finish first; order must
        // come from indices, not completion time.
        let out = par_map_with(&ParConfig::with_threads(4), 12, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }
}
