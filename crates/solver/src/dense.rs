//! Reference dense two-phase primal simplex (row-expansion path).
//!
//! This is the original `vb-solver` LP engine, retained verbatim as a
//! differential-testing oracle for the bounded-variable engine in
//! [`crate::simplex`]. It materialises every finite upper bound as an
//! extra `≤` row, which is simple and easy to audit but makes
//! bound-heavy models (e.g. MIPs full of binaries) pay one tableau row
//! per bound. Production solves go through [`crate::simplex::solve_lp`];
//! this path is only called from tests and benches that cross-check the
//! two engines against each other.
//!
//! The implementation follows the textbook construction:
//!
//! 1. **Standardise** — shift every variable by its lower bound so all
//!    variables are ≥ 0, turn finite upper bounds into extra `≤` rows,
//!    normalise right-hand sides to be non-negative, and add slack /
//!    surplus / artificial columns per constraint type.
//! 2. **Phase 1** — minimise the sum of artificials from the all-slack /
//!    all-artificial basis; a positive optimum means infeasible.
//! 3. **Phase 2** — minimise the real objective (maximisation is solved
//!    by negation) with artificial columns barred from entering.
//!
//! Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
//! after a fixed number of iterations, which guarantees termination even
//! on degenerate (cycling-prone) instances.

use crate::model::{Cmp, Model, Sense, Solution, SolveError, VarId};

/// Pivot / ratio-test tolerance.
const EPS: f64 = 1e-9;
/// Reduced-cost optimality tolerance.
const COST_EPS: f64 = 1e-7;
/// Phase-1 feasibility tolerance.
const FEAS_EPS: f64 = 1e-6;
/// Iterations of Dantzig pivoting before switching to Bland's rule.
const BLAND_AFTER: usize = 2_000;

/// Solve a model's LP relaxation via the row-expansion reference path,
/// with optional `(var, lb, ub)` bound overrides.
pub fn solve_lp_reference(
    model: &Model,
    bound_overrides: &[(VarId, f64, f64)],
) -> Result<Solution, SolveError> {
    let n = model.vars.len();

    // Effective bounds.
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    for &(v, l, u) in bound_overrides {
        lb[v.0] = l;
        ub[v.0] = u;
    }
    for j in 0..n {
        if lb[j] > ub[j] + EPS {
            return Err(SolveError::Infeasible);
        }
    }

    // Collect rows: model constraints plus upper-bound rows, expressed
    // over the shifted variables y = x - lb (so y >= 0).
    struct Row {
        coefs: Vec<f64>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.constraints.len() + n);
    for c in &model.constraints {
        // The model stores rows sparsely; this reference path stays
        // dense, so expand each row over all n variables.
        let mut coefs = vec![0.0; n];
        for &(v, a) in &c.coefs {
            coefs[v.0] += a;
        }
        let shift: f64 = coefs.iter().zip(&lb).map(|(a, l)| a * l).sum();
        rows.push(Row {
            coefs,
            cmp: c.cmp,
            rhs: c.rhs - shift,
        });
    }
    for j in 0..n {
        if ub[j].is_finite() {
            let mut coefs = vec![0.0; n];
            coefs[j] = 1.0;
            rows.push(Row {
                coefs,
                cmp: Cmp::Le,
                rhs: ub[j] - lb[j],
            });
        }
    }

    // Normalise to non-negative rhs.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            r.rhs = -r.rhs;
            for a in r.coefs.iter_mut() {
                *a = -*a;
            }
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    // Column layout: [structural | slacks+surplus | artificials | rhs].
    let m = rows.len();
    let n_slack = rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Le | Cmp::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Ge | Cmp::Eq))
        .count();
    let cols = n + n_slack + n_art;
    let art_start = n + n_slack;

    let mut a = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut next_art = art_start;
    for (i, r) in rows.iter().enumerate() {
        a[i][..n].copy_from_slice(&r.coefs);
        a[i][cols] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                a[i][next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                a[i][next_slack] = -1.0;
                next_slack += 1;
                a[i][next_art] = 1.0;
                basis[i] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                a[i][next_art] = 1.0;
                basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        basis,
        m,
        cols,
        art_start,
    };

    // Phase 1: minimise the sum of artificials. The cost row is the
    // negative sum of rows whose basic variable is artificial (pricing
    // out the initial basis).
    if n_art > 0 {
        let mut cost = vec![0.0; t.cols + 1];
        for c in cost.iter_mut().take(t.cols).skip(art_start) {
            *c = 1.0;
        }
        for i in 0..t.m {
            if t.basis[i] >= art_start {
                for (j, c) in cost.iter_mut().enumerate().take(t.cols + 1) {
                    *c -= t.a[i][j];
                }
            }
        }
        t.iterate(&mut cost, t.cols)?; // artificials may pivot in phase 1
        let phase1_obj = -cost[t.cols];
        if phase1_obj > FEAS_EPS {
            return Err(SolveError::Infeasible);
        }
        t.expel_artificials();
    }

    // Phase 2: the real objective over shifted variables (min sense).
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut c_struct = vec![0.0; n];
    for &(v, coef) in &model.objective {
        c_struct[v.0] += sign * coef;
    }
    let mut cost = vec![0.0; t.cols + 1];
    cost[..n].copy_from_slice(&c_struct);
    // Price out the current basis.
    for i in 0..t.m {
        let b = t.basis[i];
        let cb = if b < n { c_struct[b] } else { 0.0 };
        if cb != 0.0 {
            for (j, c) in cost.iter_mut().enumerate().take(t.cols + 1) {
                *c -= cb * t.a[i][j];
            }
        }
    }
    t.iterate(&mut cost, t.art_start)?;

    // Extract x = y + lb and the objective in the model's sense.
    let mut x = lb.clone();
    for i in 0..t.m {
        if t.basis[i] < n {
            x[t.basis[i]] += t.a[i][t.cols];
        }
    }
    let shifted_obj = -cost[t.cols]; // value of min(sign·c'y)
    let const_part: f64 = model
        .objective
        .iter()
        .map(|&(v, coef)| coef * lb[v.0])
        .sum::<f64>()
        + model.objective_const;
    let objective = sign * shifted_obj + const_part;
    Ok(Solution::new(objective, x))
}

struct Tableau {
    /// `m × (cols + 1)` rows; the last column is the rhs.
    a: Vec<Vec<f64>>,
    basis: Vec<usize>,
    m: usize,
    cols: usize,
    /// First artificial column index.
    art_start: usize,
}

impl Tableau {
    /// Run simplex iterations on the given cost row until optimal.
    /// Columns at `col_limit` and beyond may not enter the basis.
    fn iterate(&mut self, cost: &mut [f64], col_limit: usize) -> Result<(), SolveError> {
        let max_iter = 20_000 + 100 * (self.m + self.cols);
        for iter in 0..max_iter {
            let bland = iter >= BLAND_AFTER;
            let Some(enter) = self.choose_entering(cost, col_limit, bland) else {
                return Ok(());
            };
            let Some(leave) = self.choose_leaving(enter) else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(leave, enter, cost);
        }
        Err(SolveError::IterationLimit)
    }

    /// Entering column: most negative reduced cost (Dantzig) or first
    /// negative (Bland).
    fn choose_entering(&self, cost: &[f64], col_limit: usize, bland: bool) -> Option<usize> {
        if bland {
            (0..col_limit).find(|&j| cost[j] < -COST_EPS)
        } else {
            let mut best = None;
            let mut best_cost = -COST_EPS;
            for (j, &cj) in cost.iter().enumerate().take(col_limit) {
                if cj < best_cost {
                    best_cost = cj;
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Leaving row by minimum ratio test, ties broken by smallest basis
    /// index (lexicographic tie-break helps avoid cycling).
    fn choose_leaving(&self, enter: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            let aij = self.a[i][enter];
            if aij > EPS {
                let ratio = self.a[i][self.cols] / aij;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - EPS || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                        {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Gauss–Jordan pivot on `(row, col)`, updating the cost row too.
    fn pivot(&mut self, row: usize, col: usize, cost: &mut [f64]) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        // Split borrows: copy the pivot row to update the others.
        let pivot_row = self.a[row].clone();
        for i in 0..self.m {
            if i != row {
                let factor = self.a[i][col];
                if factor.abs() > EPS {
                    for (v, p) in self.a[i].iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                }
            }
        }
        let factor = cost[col];
        if factor.abs() > EPS {
            for (v, p) in cost.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivot any basic artificial (at value 0) out of the
    /// basis if some non-artificial column has a nonzero entry in its
    /// row; otherwise the row is redundant and the artificial stays at 0.
    fn expel_artificials(&mut self) {
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                if let Some(col) = (0..self.art_start).find(|&j| self.a[i][j].abs() > 1e-7) {
                    let mut dummy = vec![0.0; self.cols + 1];
                    self.pivot(i, col, &mut dummy);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn reference_solves_the_classic_two_variable_max() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 -> x=2,y=6, obj 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let y = m.var("y", 0.0, f64::INFINITY);
        let e = m.expr(&[(x, 1.0)]);
        m.add_le(e, 4.0);
        let e = m.expr(&[(y, 2.0)]);
        m.add_le(e, 12.0);
        let e = m.expr(&[(x, 3.0), (y, 2.0)]);
        m.add_le(e, 18.0);
        let e = m.expr(&[(x, 3.0), (y, 5.0)]);
        m.set_objective(e);
        let s = solve_lp_reference(&m, &[]).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn reference_detects_infeasible_bound_overrides() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, 10.0);
        let e = m.expr(&[(x, 1.0)]);
        m.set_objective(e);
        assert_eq!(
            solve_lp_reference(&m, &[(x, 6.0, 4.0)]).unwrap_err(),
            SolveError::Infeasible
        );
    }
}
