#![warn(missing_docs)]

//! # vb-solver — linear and mixed-integer programming from scratch
//!
//! §3.1 of the paper formulates subgraph and site selection as
//! Mixed-Integer Programs with two objectives — total migration overhead
//! (O1) and peak migration overhead (O2). The authors presumably used a
//! commercial solver; to keep the reproduction self-contained this crate
//! implements the needed machinery from scratch:
//!
//! * [`model`] — a small modelling layer: variables with bounds and
//!   integrality, linear expressions, `≤ / ≥ / =` constraints, and a
//!   minimise/maximise objective.
//! * [`simplex`] — a sparse bounded-variable primal simplex for the LP
//!   relaxations (variable bounds never become tableau rows; rows store
//!   nonzeros only and pivots touch only nonzero columns), with
//!   candidate-list partial pricing, a dual-simplex warm-start path,
//!   and a Bland-rule fallback for anti-cycling.
//! * [`revised`] — the factorized production engine: the same simplex
//!   on a sparse Markowitz-ordered LU basis with eta-file updates and
//!   periodic refactorization instead of an explicit tableau, making
//!   exact steepest-edge pricing ([`Pricing::SteepestEdge`])
//!   affordable. Selected per kernel via [`branch::Engine`].
//! * [`branch`] — best-first branch & bound on fractional integer
//!   variables, giving exact MIP optima; child nodes warm-start from
//!   their parent's optimal basis, and [`branch::solve_mip_epoch`]
//!   carries the optimal root state *across* successive solves of a
//!   structurally identical model (the co-scheduler's epoch loop).
//!   The production kernel ([`KernelConfig::production`]) adds devex
//!   pricing and deterministic parallel node-batch expansion.
//! * [`presolve`] — fixed-variable elimination, singleton-row
//!   substitution, and bound tightening that shrink a model before the
//!   kernel sees it, with a deterministic postsolve back to the
//!   original variable space.
//! * [`skeleton`] — the structural fingerprint ([`ModelSkeleton`]) that
//!   gates cross-epoch state reuse.
//! * [`dense`] — the original row-expansion two-phase simplex, kept as
//!   an independent oracle for differential testing.
//!
//! The scheduler's MIPs are small (tens to a few hundred variables) but
//! repeat every epoch with only forecast-driven RHS/objective changes,
//! so the hot path is sparse and persistent; a commercial solver would
//! return the same optima.
//!
//! ```
//! use vb_solver::{Model, Sense};
//!
//! // max x + 2y  s.t.  x + y <= 4,  x,y in {0..3} integer
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.int_var("x", 0.0, 3.0);
//! let y = m.int_var("y", 0.0, 3.0);
//! let budget = m.expr(&[(x, 1.0), (y, 1.0)]);
//! m.add_le(budget, 4.0);
//! let objective = m.expr(&[(x, 1.0), (y, 2.0)]);
//! m.set_objective(objective);
//! let sol = m.solve().unwrap();
//! assert_eq!(sol.objective.round(), 7.0); // x=1, y=3
//! ```

pub mod branch;
pub mod dense;
pub(crate) mod factor;
pub(crate) mod ftran;
pub mod model;
pub mod presolve;
pub mod revised;
pub mod simplex;
pub mod skeleton;

pub use branch::{
    solve_mip_epoch, solve_mip_epoch_with, solve_mip_kernel, Engine, EpochCache, KernelConfig,
};
pub use model::{Cmp, LinExpr, Model, Sense, Solution, SolveError, VarId};
pub use presolve::{PresolveStats, Presolved};
pub use simplex::Pricing;
pub use skeleton::ModelSkeleton;
