//! Structural fingerprint of a [`Model`] for cross-epoch state reuse.
//!
//! The MIP co-scheduler re-plans a structurally identical model every
//! epoch: same sites × apps × horizon buckets, hence the same constraint
//! matrix, senses, and integrality — only the objective, right-hand
//! sides, and variable bounds move with the forecasts. A retained
//! [`crate::simplex::SimplexState`] stays valid under exactly those
//! changes (the tableau depends only on the matrix and the basis), so
//! [`ModelSkeleton`] captures everything that must *not* change and
//! [`ModelSkeleton::matches`] gates the warm path: any structural drift
//! — a row added, a coefficient moved, a variable flipped to integer —
//! is a miss and the caller falls back to a cold solve.

use crate::model::{Cmp, Model, Sense};

/// The epoch-invariant structure of a model: dimensions, optimization
/// sense, integrality mask, constraint senses, and the constraint matrix
/// in CSR form (sorted column indices and exact coefficient values).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSkeleton {
    sense: Sense,
    n_vars: usize,
    integer: Vec<bool>,
    cmps: Vec<Cmp>,
    /// CSR row pointers: row `i` owns `col_idx[row_ptr[i]..row_ptr[i+1]]`.
    row_ptr: Vec<u32>,
    /// Column index per nonzero, sorted within each row.
    col_idx: Vec<u32>,
    /// Coefficient per nonzero.
    vals: Vec<f64>,
}

impl ModelSkeleton {
    /// Capture the structural fingerprint of `model`.
    pub fn of(model: &Model) -> ModelSkeleton {
        let mut row_ptr = Vec::with_capacity(model.constraints.len() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for c in &model.constraints {
            for &(v, a) in &c.coefs {
                col_idx.push(v.0 as u32);
                vals.push(a);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        ModelSkeleton {
            sense: model.sense,
            n_vars: model.vars.len(),
            integer: model.vars.iter().map(|v| v.integer).collect(),
            cmps: model.constraints.iter().map(|c| c.cmp).collect(),
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Whether `model` has exactly this structure — same dimensions,
    /// sense, integrality, constraint senses, and constraint matrix
    /// (pattern *and* values, compared exactly: a coefficient that moved
    /// at all invalidates the retained tableau). RHS, objective, and
    /// variable bounds are deliberately not compared; those may change
    /// between epochs.
    pub fn matches(&self, model: &Model) -> bool {
        if self.sense != model.sense
            || self.n_vars != model.vars.len()
            || self.cmps.len() != model.constraints.len()
        {
            return false;
        }
        if model
            .vars
            .iter()
            .zip(&self.integer)
            .any(|(v, &int)| v.integer != int)
        {
            return false;
        }
        for (i, c) in model.constraints.iter().enumerate() {
            if c.cmp != self.cmps[i] {
                return false;
            }
            let (lo, hi) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            if c.coefs.len() != hi - lo {
                return false;
            }
            for (k, &(v, a)) in c.coefs.iter().enumerate() {
                // Exact equality on purpose (NaN never matches, which is
                // the safe direction: a cold solve).
                if self.col_idx[lo + k] != v.0 as u32 || self.vals[lo + k] != a {
                    return false;
                }
            }
        }
        true
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.cmps.len()
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// Nonzero count of the constraint matrix.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn placement_like() -> Model {
        let mut m = Model::new(Sense::Minimize);
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        let d = m.var("d", 0.0, f64::INFINITY);
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_eq(e, 1.0);
        let e = m.expr(&[(d, 1.0), (x, -4.0)]);
        m.add_ge(e, -2.0);
        let obj = m.expr(&[(x, 3.0), (y, 5.0), (d, 1.0)]);
        m.set_objective(obj);
        m
    }

    #[test]
    fn matches_itself_and_rhs_or_objective_changes() {
        let m = placement_like();
        let sk = ModelSkeleton::of(&m);
        assert!(sk.matches(&m));
        assert_eq!(sk.num_rows(), 2);
        assert_eq!(sk.num_vars(), 3);
        assert_eq!(sk.nnz(), 4);

        // RHS and objective changes keep the skeleton valid.
        let mut m2 = placement_like();
        m2.constraints[1].rhs = -7.5;
        m2.objective[0].1 = 9.0;
        assert!(sk.matches(&m2));
    }

    #[test]
    fn structural_drift_is_a_miss() {
        let sk = ModelSkeleton::of(&placement_like());

        // A moved coefficient.
        let mut m = placement_like();
        m.constraints[1].coefs[1].1 = -5.0;
        assert!(!sk.matches(&m));

        // A different constraint sense.
        let mut m = placement_like();
        m.constraints[0].cmp = Cmp::Le;
        assert!(!sk.matches(&m));

        // An extra row.
        let mut m = placement_like();
        let e = m.expr(&[]);
        m.add_le(e, 1.0);
        assert!(!sk.matches(&m));

        // An extra variable.
        let mut m = placement_like();
        m.var("extra", 0.0, 1.0);
        assert!(!sk.matches(&m));
    }
}
