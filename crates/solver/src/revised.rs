//! Revised simplex on a factorized LU basis — the production LP engine.
//!
//! The explicit-tableau engine ([`crate::simplex`]) pays for every pivot
//! by rewriting all tableau rows (a sparse Gauss–Jordan sweep); on the
//! fleet-shaped 100×+ models the rows densify and that sweep dominates
//! the solve. This engine keeps the basis as a sparse LU factorization
//! ([`crate::factor`]) plus a product-form eta file ([`crate::ftran`])
//! instead, and reconstructs per-iteration data on demand:
//!
//! * the entering column `d̂ = B⁻¹a_q` by one **FTRAN**,
//! * the pricing row `α = eᵣᵀB⁻¹A` by one **BTRAN** plus a sweep of the
//!   constraint rows, and
//! * reduced costs by the classic `d = c − (B⁻ᵀc_B)ᵀA` only when a
//!   solve starts; between pivots `d` is updated from the pricing row.
//!
//! Each pivot appends one eta. The factorization is rebuilt — and the
//! basic values recomputed from the model data, shedding accumulated
//! drift — when the eta file reaches [`Params::refactor_after`] updates
//! or when a **stability trigger** fires: the pivot element reached via
//! FTRAN and via BTRAN must agree to [`STAB_EPS`], otherwise the factors
//! have degraded and the iteration is retried on fresh ones.
//!
//! Because reduced costs and norms are exact per-iteration quantities
//! here, **steepest-edge pricing** ([`Pricing::SteepestEdge`]) becomes
//! affordable: the exact reference weights `γ_j = 1 + ‖B⁻¹a_j‖²` are
//! maintained by the Forrest–Goldfarb recurrence (one extra BTRAN per
//! pivot), with a reset to the unit framework whenever the maintained
//! entering weight drifts a factor [`SE_DRIFT`] from its exact value.
//! Devex and Dantzig remain available and share the Bland anti-cycling
//! fallback.
//!
//! The state mirrors [`crate::simplex::SimplexState`]'s warm-start
//! surface — bound overrides with dual-simplex repair, and cross-epoch
//! RHS/bound retargeting — so branch & bound and the epoch cache use
//! either engine interchangeably. Column layout, tolerances, tie-break
//! rules, and the two-phase construction are identical to the tableau
//! engine; in exact arithmetic the two produce the same pivots, and both
//! are deterministic functions of the model.

use crate::factor::LuFactors;
use crate::ftran::BasisFactor;
use crate::model::{Cmp, Model, Sense, Solution, SolveError, VarId};
use crate::simplex::{Pricing, BLAND_AFTER, COST_EPS, DEVEX_RESET, DROP_EPS, EPS, FEAS_EPS};
use std::sync::Arc;

/// FTRAN-vs-BTRAN pivot agreement tolerance (relative): worse than this
/// means the factors + eta file have degraded and trigger an immediate
/// refactorization.
const STAB_EPS: f64 = 1e-7;
/// Steepest-edge framework reset: when the maintained weight of the
/// entering column differs from its exact norm `1 + ‖B⁻¹a_q‖²` by more
/// than this factor either way, all weights restart at 1.
const SE_DRIFT: f64 = 4.0;
/// Eta updates between scheduled refactorizations. A Markowitz
/// refactorization at fleet scale costs two orders of magnitude more
/// than replaying one eta, so the interval is long; the stability
/// trigger still forces an early rebuild the moment the factors
/// actually degrade.
const REFACTOR_AFTER: usize = 128;

/// Engine tuning knobs. The defaults are the production policy; tests
/// shrink them to force refactorizations and the Bland fallback onto
/// small instances.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Refactorize after this many eta updates.
    pub refactor_after: usize,
    /// Iterations before primal pricing falls back to Bland's rule.
    pub bland_after: usize,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            refactor_after: REFACTOR_AFTER,
            bland_after: BLAND_AFTER,
        }
    }
}

/// Constraint matrix in both row- and column-major sparse form, shared
/// (via `Arc`) by every state cloned off one solve — branch & bound
/// clones states per node, and the matrix never changes.
#[derive(Debug)]
struct Mat {
    row_starts: Vec<u32>,
    row_cols: Vec<u32>,
    row_vals: Vec<f64>,
    col_starts: Vec<u32>,
    col_rows: Vec<u32>,
    col_vals: Vec<f64>,
}

/// A phase-1 artificial: the unit column `sign·e_row`.
#[derive(Debug, Clone, Copy)]
struct ArtCol {
    row: u32,
    sign: f64,
}

/// Dense pricing row plus its support list. `α` stays dense for O(1)
/// reads; the support records every column the sweep touched, so the
/// per-pivot consumers (reduced-cost update, steepest-edge cross terms,
/// devex weights) iterate the nonzeros instead of every column. An
/// epoch-marked scratch deduplicates the support without a clearing
/// pass.
struct PriceRow {
    alpha: Vec<f64>,
    support: Vec<u32>,
    mark: Vec<u32>,
    epoch: u32,
}

impl PriceRow {
    fn new(cols: usize) -> PriceRow {
        PriceRow {
            alpha: vec![0.0; cols],
            support: Vec::new(),
            mark: vec![0; cols],
            epoch: 0,
        }
    }

    /// Zero the previous row (via its support) and start a new one.
    fn clear(&mut self) {
        for &j in &self.support {
            self.alpha[j as usize] = 0.0;
        }
        self.support.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn add(&mut self, j: usize, v: f64) {
        if self.mark[j] != self.epoch {
            self.mark[j] = self.epoch;
            self.support.push(j as u32);
        }
        self.alpha[j] += v;
    }
}

/// Per-solve counters, flushed to `vb-telemetry` at loop and solve
/// boundaries (so a warm attempt that falls back still reports).
#[derive(Debug, Clone, Copy, Default)]
struct Stats {
    pivots: u64,
    dual_pivots: u64,
    flips: u64,
    degenerate: u64,
    scanned: u64,
    devex_pivots: u64,
    devex_resets: u64,
    ftran_nnz: u64,
    btran_nnz: u64,
    refactorizations: u64,
    eta_updates: u64,
    steepest_resets: u64,
}

/// Outcome of the primal ratio test (mirrors the tableau engine's).
enum Step {
    Flip,
    Pivot {
        row: usize,
        target: f64,
        leave_at_upper: bool,
    },
    Unbounded,
}

/// Revised-simplex state: basis, factorization, and bounds — the
/// factorized counterpart of [`crate::simplex::SimplexState`], reusable
/// as a warm-start basis under changed bounds or (structurally
/// identical) changed models.
#[derive(Debug, Clone)]
pub struct RevisedState {
    mat: Arc<Mat>,
    arts: Arc<Vec<ArtCol>>,
    /// Per-column bounds and bound side, laid out
    /// `[structural | logical | artificial]` like the tableau engine.
    lb: Vec<f64>,
    ub: Vec<f64>,
    at_upper: Vec<bool>,
    /// Basic column per row / row per column (`usize::MAX` = nonbasic).
    basis: Vec<usize>,
    basis_pos: Vec<usize>,
    /// Current value of each row's basic variable.
    xb: Vec<f64>,
    /// Model right-hand side the state was last retargeted against.
    rhs_b: Vec<f64>,
    factor: BasisFactor,
    n: usize,
    m: usize,
    cols: usize,
    art_start: usize,
    params: Params,
    stats: Stats,
}

/// Solve a model's LP relaxation on the factorized engine and return the
/// optimal state alongside the solution. Semantics match
/// [`crate::simplex::solve_lp_state_priced`]: `bound_overrides` impose
/// branching bounds, and `warm` (a previous state of the *same* model)
/// starts from that basis with a dual-simplex repair, falling back to a
/// cold solve on numerical trouble.
pub fn solve_lp_state(
    model: &Model,
    bound_overrides: &[(VarId, f64, f64)],
    warm: Option<&RevisedState>,
    pricing: Pricing,
) -> Result<(Solution, RevisedState), SolveError> {
    solve_lp_state_params(model, bound_overrides, warm, pricing, Params::default())
}

/// [`solve_lp_state`] with explicit engine [`Params`] (test hook: small
/// `refactor_after`/`bland_after` force the update and fallback paths
/// onto small instances).
#[doc(hidden)]
pub fn solve_lp_state_params(
    model: &Model,
    bound_overrides: &[(VarId, f64, f64)],
    warm: Option<&RevisedState>,
    pricing: Pricing,
    params: Params,
) -> Result<(Solution, RevisedState), SolveError> {
    let _span = vb_telemetry::span!("solver.lp_solve");
    vb_telemetry::counter!("solver.lp_solves").inc();

    let n = model.vars.len();
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    for &(v, l, u) in bound_overrides {
        lb[v.0] = l;
        ub[v.0] = u;
    }
    for j in 0..n {
        if lb[j] > ub[j] + EPS {
            return Err(SolveError::Infeasible);
        }
        if !lb[j].is_finite() {
            return Err(SolveError::BadModel(format!(
                "variable {} must have a finite lower bound",
                model.vars[j].name
            )));
        }
    }

    if let Some(parent) = warm {
        if parent.n == n && parent.m == model.constraints.len() {
            match warm_solve(model, &lb, &ub, parent, pricing) {
                Ok(done) => {
                    vb_telemetry::counter!("solver.warm_start_hits").inc();
                    return Ok(done);
                }
                // A proven-infeasible child is a successful warm start.
                Err(SolveError::Infeasible) => {
                    vb_telemetry::counter!("solver.warm_start_hits").inc();
                    return Err(SolveError::Infeasible);
                }
                // Numerical trouble: re-solve from scratch.
                Err(_) => vb_telemetry::counter!("solver.warm_start_misses").inc(),
            }
        } else {
            vb_telemetry::counter!("solver.warm_start_misses").inc();
        }
    }

    cold_solve(model, lb, ub, pricing, params)
}

/// Re-solve a *structurally identical* model from a previous epoch's
/// optimal factorized state — same contract as
/// [`crate::simplex::solve_lp_epoch_warm_priced`]: the caller gates
/// structure with [`crate::skeleton::ModelSkeleton`], the RHS delta is
/// retargeted through one FTRAN, bounds re-applied, and the basis
/// repaired dual-simplex-first. `Err(Infeasible)` is not a certificate.
pub fn solve_lp_epoch_warm(
    model: &Model,
    prev: &RevisedState,
    pricing: Pricing,
) -> Result<(Solution, RevisedState), SolveError> {
    let _span = vb_telemetry::span!("solver.lp_solve");
    vb_telemetry::counter!("solver.lp_solves").inc();

    let n = model.vars.len();
    if prev.n != n || prev.m != model.constraints.len() {
        return Err(SolveError::BadModel(
            "epoch warm start requires identical model dimensions".into(),
        ));
    }
    let lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    for j in 0..n {
        if lb[j] > ub[j] + EPS {
            return Err(SolveError::Infeasible);
        }
        if !lb[j].is_finite() {
            return Err(SolveError::BadModel(format!(
                "variable {} must have a finite lower bound",
                model.vars[j].name
            )));
        }
    }

    let mut st = prev.clone();
    st.apply_rhs(model);
    st.apply_bounds(&lb, &ub)?;
    let c2 = st.phase2_costs(model);
    let mut d = st.reduced_costs(&c2);
    st.dual_iterate(&mut d, st.art_start)?;
    st.iterate_with(&mut d, st.art_start, pricing)?;
    let sol = st.extract(model);
    st.flush_stats();
    Ok((sol, st))
}

/// Full two-phase solve from the logical basis.
fn cold_solve(
    model: &Model,
    lb: Vec<f64>,
    ub: Vec<f64>,
    pricing: Pricing,
    params: Params,
) -> Result<(Solution, RevisedState), SolveError> {
    let mut st = RevisedState::build(model, lb, ub, params)?;

    // Phase 1: minimise the sum of artificials.
    if st.art_start < st.cols {
        let mut c1 = vec![0.0; st.cols];
        for c in c1.iter_mut().skip(st.art_start) {
            *c = 1.0;
        }
        let mut d = st.reduced_costs(&c1);
        st.iterate_with(&mut d, st.cols, pricing)?; // artificials may pivot in phase 1
        let infeas: f64 = (0..st.m)
            .filter(|&i| st.basis[i] >= st.art_start)
            .map(|i| st.xb[i])
            .sum();
        if infeas > FEAS_EPS {
            return Err(SolveError::Infeasible);
        }
        st.expel_and_freeze_artificials(&mut d)?;
    }

    // Phase 2: the real objective, artificials barred from entering.
    let c2 = st.phase2_costs(model);
    let mut d = st.reduced_costs(&c2);
    st.iterate_with(&mut d, st.art_start, pricing)?;

    let sol = st.extract(model);
    st.flush_stats();
    Ok((sol, st))
}

/// Re-optimise `parent` under new structural bounds: dual-simplex repair
/// followed by a primal clean-up pass.
fn warm_solve(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    parent: &RevisedState,
    pricing: Pricing,
) -> Result<(Solution, RevisedState), SolveError> {
    let mut st = parent.clone();
    st.apply_bounds(lb, ub)?;
    let c2 = st.phase2_costs(model);
    let mut d = st.reduced_costs(&c2);
    st.dual_iterate(&mut d, st.art_start)?;
    st.iterate_with(&mut d, st.art_start, pricing)?;
    let sol = st.extract(model);
    st.flush_stats();
    Ok((sol, st))
}

impl RevisedState {
    /// Build the initial state: logicals basic where the residual fits
    /// their interval, artificials elsewhere — the same starting basis
    /// as the tableau engine (whose sign-flip normalisation is replaced
    /// here by signed artificial columns `σ·e_i`; the implied tableau is
    /// identical either way).
    fn build(
        model: &Model,
        mut lb: Vec<f64>,
        mut ub: Vec<f64>,
        params: Params,
    ) -> Result<RevisedState, SolveError> {
        let n = model.vars.len();
        let m = model.constraints.len();

        let mut nnz = 0usize;
        let mut resid = Vec::with_capacity(m);
        for c in &model.constraints {
            nnz += c.coefs.len();
            let dot: f64 = c.coefs.iter().map(|&(v, a)| a * lb[v.0]).sum();
            resid.push(c.rhs - dot);
        }
        vb_telemetry::histogram!("solver.nnz").observe(nnz as f64);
        let needs_art: Vec<bool> = model
            .constraints
            .iter()
            .zip(&resid)
            .map(|(c, &r)| match c.cmp {
                Cmp::Le => r < 0.0,
                Cmp::Ge => r > 0.0,
                Cmp::Eq => r.abs() > EPS,
            })
            .collect();
        let n_art = needs_art.iter().filter(|&&x| x).count();
        let art_start = n + m;
        let cols = art_start + n_art;

        // Row-major, then column-major (column entries arrive in row
        // order, so both are sorted and fully deterministic).
        let mut row_starts = Vec::with_capacity(m + 1);
        row_starts.push(0u32);
        let mut row_cols = Vec::with_capacity(nnz);
        let mut row_vals = Vec::with_capacity(nnz);
        for c in &model.constraints {
            for &(v, a) in &c.coefs {
                row_cols.push(v.0 as u32);
                row_vals.push(a);
            }
            row_starts.push(row_cols.len() as u32);
        }
        let mut col_counts = vec![0u32; n + 1];
        for &j in &row_cols {
            col_counts[j as usize + 1] += 1;
        }
        for j in 0..n {
            col_counts[j + 1] += col_counts[j];
        }
        let col_starts = col_counts.clone();
        let mut col_rows = vec![0u32; nnz];
        let mut col_vals = vec![0.0f64; nnz];
        let mut cursor = col_counts;
        for i in 0..m {
            let (a, b) = (row_starts[i] as usize, row_starts[i + 1] as usize);
            for e in a..b {
                let j = row_cols[e] as usize;
                let slot = cursor[j] as usize;
                col_rows[slot] = i as u32;
                col_vals[slot] = row_vals[e];
                cursor[j] += 1;
            }
        }

        // Logical bounds per constraint type, then artificials [0, ∞).
        for c in &model.constraints {
            match c.cmp {
                Cmp::Le => {
                    lb.push(0.0);
                    ub.push(f64::INFINITY);
                }
                Cmp::Ge => {
                    lb.push(f64::NEG_INFINITY);
                    ub.push(0.0);
                }
                Cmp::Eq => {
                    lb.push(0.0);
                    ub.push(0.0);
                }
            }
        }
        lb.resize(cols, 0.0);
        ub.resize(cols, f64::INFINITY);

        let mut xb = vec![0.0; m];
        let mut rhs_b = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut at_upper = vec![false; cols];
        let mut arts = Vec::with_capacity(n_art);
        for (i, c) in model.constraints.iter().enumerate() {
            rhs_b.push(c.rhs);
            if needs_art[i] {
                let sigma = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
                basis[i] = art_start + arts.len();
                arts.push(ArtCol {
                    row: i as u32,
                    sign: sigma,
                });
                xb[i] = resid[i].abs();
                // The row's own logical stays nonbasic at 0: that is the
                // upper bound for `≥` logicals, the lower bound otherwise.
                at_upper[n + i] = matches!(c.cmp, Cmp::Ge);
            } else {
                basis[i] = n + i;
                xb[i] = resid[i];
            }
        }
        let mut basis_pos = vec![usize::MAX; cols];
        for (i, &b) in basis.iter().enumerate() {
            basis_pos[b] = i;
        }

        let mut st = RevisedState {
            mat: Arc::new(Mat {
                row_starts,
                row_cols,
                row_vals,
                col_starts,
                col_rows,
                col_vals,
            }),
            arts: Arc::new(arts),
            lb,
            ub,
            at_upper,
            basis,
            basis_pos,
            xb,
            rhs_b,
            factor: BasisFactor::default(),
            n,
            m,
            cols,
            art_start,
            params,
            stats: Stats::default(),
        };
        st.factorize_basis()?;
        #[cfg(feature = "check-invariants")]
        st.assert_invariants("build");
        Ok(st)
    }

    /// Phase-2 cost vector: the objective over structurals, min sense.
    fn phase2_costs(&self, model: &Model) -> Vec<f64> {
        let sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut c = vec![0.0; self.cols];
        for &(v, coef) in &model.objective {
            c[v.0] += sign * coef;
        }
        c
    }

    /// Reduced costs `d = c − yᵀA` with `y = B⁻ᵀc_B` (one BTRAN plus a
    /// constraint-row sweep) — computed on demand at solve boundaries,
    /// then maintained per pivot from the pricing row.
    fn reduced_costs(&mut self, c: &[f64]) -> Vec<f64> {
        let mut y: Vec<f64> = self.basis.iter().map(|&b| c[b]).collect();
        let mut d = c.to_vec();
        if y.iter().any(|&v| v != 0.0) {
            self.stats.btran_nnz += self.factor.btran(&mut y);
            for (i, &p) in y.iter().enumerate() {
                if p.abs() <= DROP_EPS {
                    continue;
                }
                let (a, b) = self.row_range(i);
                for e in a..b {
                    d[self.mat.row_cols[e] as usize] -= p * self.mat.row_vals[e];
                }
                d[self.n + i] -= p;
            }
            for (k, art) in self.arts.iter().enumerate() {
                let p = y[art.row as usize];
                if p != 0.0 {
                    d[self.art_start + k] -= p * art.sign;
                }
            }
        }
        // Basic reduced costs are zero by definition; pin them so later
        // pivot updates start exact.
        for &b in &self.basis {
            d[b] = 0.0;
        }
        d
    }

    fn row_range(&self, i: usize) -> (usize, usize) {
        (
            self.mat.row_starts[i] as usize,
            self.mat.row_starts[i + 1] as usize,
        )
    }

    /// Current value of a nonbasic column (the bound it sits at).
    fn nonbasic_value(&self, j: usize) -> f64 {
        if self.at_upper[j] {
            self.ub[j]
        } else {
            self.lb[j]
        }
    }

    /// Dense copy of original column `j` (structural, logical unit, or
    /// signed artificial unit) into `out`.
    fn load_column(&self, j: usize, out: &mut [f64]) {
        out.fill(0.0);
        if j < self.n {
            let (a, b) = (
                self.mat.col_starts[j] as usize,
                self.mat.col_starts[j + 1] as usize,
            );
            for e in a..b {
                out[self.mat.col_rows[e] as usize] = self.mat.col_vals[e];
            }
        } else if j < self.art_start {
            out[j - self.n] = 1.0;
        } else {
            let art = self.arts[j - self.art_start];
            out[art.row as usize] = art.sign;
        }
    }

    /// `τᵀa_j` over column `j`'s nonzeros (structural sparse dot,
    /// logical unit pick, signed artificial pick).
    fn dot_column(&self, j: usize, t: &[f64]) -> f64 {
        if j < self.n {
            let (a, b) = (
                self.mat.col_starts[j] as usize,
                self.mat.col_starts[j + 1] as usize,
            );
            (a..b)
                .map(|e| t[self.mat.col_rows[e] as usize] * self.mat.col_vals[e])
                .sum()
        } else if j < self.art_start {
            t[j - self.n]
        } else {
            let art = self.arts[j - self.art_start];
            t[art.row as usize] * art.sign
        }
    }

    /// `r ← r − v·a_j` over column `j`'s nonzeros.
    fn sub_column(&self, j: usize, v: f64, r: &mut [f64]) {
        if j < self.n {
            let (a, b) = (
                self.mat.col_starts[j] as usize,
                self.mat.col_starts[j + 1] as usize,
            );
            for e in a..b {
                r[self.mat.col_rows[e] as usize] -= v * self.mat.col_vals[e];
            }
        } else if j < self.art_start {
            r[j - self.n] -= v;
        } else {
            let art = self.arts[j - self.art_start];
            r[art.row as usize] -= v * art.sign;
        }
    }

    /// Pricing row `α = ρᵀA` over all columns (structural via the
    /// constraint-row sweep, logical `α_{n+i} = ρ_i`, artificial
    /// `σ_k·ρ_{row_k}`), recorded with its support so the per-pivot
    /// consumers can skip the zero columns.
    fn pricing_row(&self, rho: &[f64], pr: &mut PriceRow) {
        pr.clear();
        for (i, &p) in rho.iter().enumerate() {
            if p.abs() <= DROP_EPS {
                continue;
            }
            let (a, b) = self.row_range(i);
            for e in a..b {
                pr.add(self.mat.row_cols[e] as usize, p * self.mat.row_vals[e]);
            }
            pr.add(self.n + i, p);
        }
        for (k, art) in self.arts.iter().enumerate() {
            let p = rho[art.row as usize];
            if p != 0.0 {
                pr.add(self.art_start + k, p * art.sign);
            }
        }
    }

    /// Factorize the current basis matrix from the model data.
    fn factorize_basis(&mut self) -> Result<(), SolveError> {
        let mut cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(self.m);
        for &b in &self.basis {
            if b < self.n {
                let (a, e) = (
                    self.mat.col_starts[b] as usize,
                    self.mat.col_starts[b + 1] as usize,
                );
                cols.push(
                    (a..e)
                        .map(|k| (self.mat.col_rows[k], self.mat.col_vals[k]))
                        .collect(),
                );
            } else if b < self.art_start {
                cols.push(vec![((b - self.n) as u32, 1.0)]);
            } else {
                let art = self.arts[b - self.art_start];
                cols.push(vec![(art.row, art.sign)]);
            }
        }
        // A singular basis is numerical trouble, not infeasibility: use
        // the iteration-limit channel so warm paths fall back to cold.
        let lu = LuFactors::factorize(self.m, &cols).map_err(|_| SolveError::IterationLimit)?;
        self.factor = BasisFactor::new(lu, self.m);
        Ok(())
    }

    /// Rebuild the factorization and recompute the basic values fresh
    /// from the model data (`x_B = B⁻¹(b − N·x_N)`), shedding the drift
    /// the eta-file updates accumulated.
    fn refactorize(&mut self) -> Result<(), SolveError> {
        self.stats.refactorizations += 1;
        self.factorize_basis()?;
        let mut r = self.rhs_b.clone();
        for j in 0..self.cols {
            if self.basis_pos[j] == usize::MAX {
                let v = self.nonbasic_value(j);
                if v != 0.0 {
                    self.sub_column(j, v, &mut r);
                }
            }
        }
        self.stats.ftran_nnz += self.factor.ftran(&mut r);
        #[cfg(feature = "check-invariants")]
        for (i, (&fresh, &held)) in r.iter().zip(&self.xb).enumerate() {
            assert!(
                (fresh - held).abs() <= 1e-4 * (1.0 + held.abs()),
                "refactorization moved basic value {i}: maintained {held}, recomputed {fresh}"
            );
        }
        self.xb.copy_from_slice(&r);
        Ok(())
    }

    /// Retarget structural bounds (warm start): nonbasic structurals are
    /// re-seated on a finite bound under the new interval and the basic
    /// values shifted through one FTRAN of the accumulated column delta.
    fn apply_bounds(&mut self, lb: &[f64], ub: &[f64]) -> Result<(), SolveError> {
        let mut shift = vec![0.0; self.m];
        let mut any = false;
        for j in 0..self.n {
            let (nl, nu) = (lb[j], ub[j]);
            if self.basis_pos[j] == usize::MAX {
                let old = self.nonbasic_value(j);
                let (new, up) = if self.at_upper[j] {
                    if nu.is_finite() {
                        (nu, true)
                    } else {
                        (nl, false)
                    }
                } else if nl.is_finite() {
                    (nl, false)
                } else {
                    (nu, true)
                };
                if !new.is_finite() {
                    return Err(SolveError::BadModel(
                        "warm start requires a finite bound per nonbasic variable".into(),
                    ));
                }
                let delta = new - old;
                if delta != 0.0 {
                    // x_B −= B⁻¹a_j·Δ; batch the columns, solve once.
                    self.sub_column(j, -delta, &mut shift);
                    any = true;
                }
                self.at_upper[j] = up;
            }
            self.lb[j] = nl;
            self.ub[j] = nu;
        }
        if any {
            self.stats.ftran_nnz += self.factor.ftran(&mut shift);
            for (x, &s) in self.xb.iter_mut().zip(&shift) {
                *x -= s;
            }
        }
        Ok(())
    }

    /// Retarget the basic values for a model-RHS change (epoch warm
    /// start): `x_B += B⁻¹·Δb`, one FTRAN.
    fn apply_rhs(&mut self, model: &Model) {
        let mut delta = vec![0.0; self.m];
        let mut any = false;
        for (k, c) in model.constraints.iter().enumerate() {
            let d = c.rhs - self.rhs_b[k];
            if d != 0.0 {
                delta[k] = d;
                self.rhs_b[k] = c.rhs;
                any = true;
            }
        }
        if !any {
            return;
        }
        self.stats.ftran_nnz += self.factor.ftran(&mut delta);
        for (x, &s) in self.xb.iter_mut().zip(&delta) {
            *x += s;
        }
    }

    /// Primal bounded-variable simplex on reduced costs `d` until no
    /// nonbasic column priced below `col_limit` can improve. Pricing
    /// weights (devex or steepest-edge) live for exactly one call, as in
    /// the tableau engine, so a solve stays a pure function of
    /// `(model, bounds, basis)`.
    fn iterate_with(
        &mut self,
        d: &mut [f64],
        col_limit: usize,
        pricing: Pricing,
    ) -> Result<(), SolveError> {
        let max_iter = 20_000 + 100 * (self.m + self.cols);
        let weighted = !matches!(pricing, Pricing::Dantzig);
        let mut weights = vec![1.0f64; self.cols];
        let mut ecol = vec![0.0; self.m];
        let mut rho = vec![0.0; self.m];
        let mut pr = PriceRow::new(self.cols);
        let mut tau = vec![0.0; self.m];
        // Maintained violation array for the weighted rules: `viol[j]`
        // is the entering violation of candidate `j` (−∞ for basic,
        // fixed, or out-of-limit columns), refreshed from the pricing
        // row's support after every pivot so the entering scan reads
        // two arrays instead of six.
        let mut viol = vec![f64::NEG_INFINITY; self.cols];
        let mut active = 0u64;
        if weighted {
            for (j, slot) in viol.iter_mut().enumerate().take(col_limit) {
                let v = self.entering_viol(j, d);
                if v != f64::NEG_INFINITY {
                    active += 1;
                }
                *slot = v;
            }
        }
        // Set right after a stability refactorization so one bad pivot
        // cannot refactorize in a loop.
        let mut fresh = false;
        let result = (|| {
            for iter in 0..max_iter {
                let bland = iter >= self.params.bland_after;
                let enter = if weighted && !bland {
                    self.choose_entering_weighted(&viol, active, &weights)
                } else {
                    self.choose_entering(d, col_limit, bland)
                };
                let Some(enter) = enter else {
                    return Ok(());
                };
                let dir = if self.at_upper[enter] { -1.0 } else { 1.0 };
                self.load_column(enter, &mut ecol);
                self.stats.ftran_nnz += self.factor.ftran(&mut ecol);
                match self.ratio_test(enter, dir, &ecol) {
                    Step::Unbounded => return Err(SolveError::Unbounded),
                    Step::Flip => {
                        let span = self.ub[enter] - self.lb[enter];
                        let delta = dir * span;
                        #[cfg(feature = "check-invariants")]
                        assert_monotone_step(d[enter], delta, "bound flip");
                        for (x, &e) in self.xb.iter_mut().zip(&ecol) {
                            *x -= e * delta;
                        }
                        self.at_upper[enter] = !self.at_upper[enter];
                        if weighted {
                            self.refresh_viol(enter, col_limit, d, &mut viol, &mut active);
                        }
                        self.stats.flips += 1;
                        fresh = false;
                    }
                    Step::Pivot {
                        row,
                        target,
                        leave_at_upper,
                    } => {
                        rho.fill(0.0);
                        rho[row] = 1.0;
                        self.stats.btran_nnz += self.factor.btran(&mut rho);
                        self.pricing_row(&rho, &mut pr);
                        // Stability trigger: the pivot element computed
                        // through FTRAN and through BTRAN must agree.
                        let (pf, pb) = (ecol[row], pr.alpha[enter]);
                        if !fresh && (pf - pb).abs() > STAB_EPS * (1.0 + pf.abs().max(pb.abs())) {
                            self.refactorize()?;
                            fresh = true;
                            continue;
                        }
                        #[cfg(feature = "check-invariants")]
                        assert_monotone_step(
                            d[enter],
                            (self.xb[row] - target) / ecol[row],
                            "pivot",
                        );
                        if (self.xb[row] - target).abs() <= EPS {
                            self.stats.degenerate += 1;
                        }
                        if weighted {
                            match pricing {
                                Pricing::SteepestEdge => self.steepest_update(
                                    &mut weights,
                                    enter,
                                    row,
                                    &ecol,
                                    &pr,
                                    &mut tau,
                                ),
                                _ => self.devex_update(&mut weights, enter, row, &pr),
                            }
                        }
                        self.pivot_apply(row, enter, target, leave_at_upper, d, &ecol, &pr)?;
                        if weighted {
                            // Reduced costs changed exactly on the
                            // pricing row's support (plus the basis
                            // swap, whose columns the support covers).
                            for idx in 0..pr.support.len() {
                                let j = pr.support[idx] as usize;
                                self.refresh_viol(j, col_limit, d, &mut viol, &mut active);
                            }
                        }
                        self.stats.pivots += 1;
                        fresh = false;
                    }
                }
            }
            Err(SolveError::IterationLimit)
        })();
        self.flush_stats();
        result
    }

    /// Exact steepest-edge update (Forrest–Goldfarb): reference weights
    /// `γ_j ≈ 1 + ‖B⁻¹a_j‖²`. The entering column's exact norm is free
    /// (its FTRAN just ran); the cross terms `v_j = (B⁻ᵀd̂)ᵀa_j` cost
    /// one extra BTRAN plus sparse column dots — `γ_j` is unchanged
    /// wherever `α_j = 0`, so `v_j` is only evaluated on the pricing
    /// row's support rather than by a second full pricing sweep. When
    /// the maintained `γ_q` has drifted a factor [`SE_DRIFT`] from
    /// exact, the framework resets to unit weights.
    fn steepest_update(
        &mut self,
        weights: &mut [f64],
        enter: usize,
        row: usize,
        ecol: &[f64],
        pr: &PriceRow,
        tau: &mut [f64],
    ) {
        let exact: f64 = 1.0 + ecol.iter().map(|e| e * e).sum::<f64>();
        let held = weights[enter].max(1.0);
        if held < exact / SE_DRIFT || held > exact * SE_DRIFT {
            weights.fill(1.0);
            self.stats.steepest_resets += 1;
        }
        let aq = ecol[row];
        tau.copy_from_slice(ecol);
        self.stats.btran_nnz += self.factor.btran(tau);
        let leave = self.basis[row];
        for &ju in &pr.support {
            let j = ju as usize;
            if j == enter || self.basis_pos[j] != usize::MAX {
                continue;
            }
            let a = pr.alpha[j];
            if a == 0.0 {
                continue;
            }
            let r = a / aq;
            let v = self.dot_column(j, tau);
            weights[j] = (weights[j] - 2.0 * r * v + r * r * exact).max(1.0 + r * r);
        }
        weights[leave] = (exact / (aq * aq)).max(1.0 + 1.0 / (aq * aq));
        weights[enter] = 1.0;
    }

    /// Devex reference-weight update on the dense pricing row — the same
    /// recurrence as the tableau engine's (`w_j ← max(w_j, (α_j/α_q)²·
    /// w_q)`), with the [`DEVEX_RESET`] overflow reset.
    fn devex_update(&mut self, w: &mut [f64], enter: usize, row: usize, pr: &PriceRow) {
        let aq = pr.alpha[enter];
        let wq = w[enter].max(1.0);
        let leave = self.basis[row];
        let mut wmax = 0.0f64;
        for &ju in &pr.support {
            let j = ju as usize;
            if j == enter {
                continue;
            }
            let a = pr.alpha[j];
            if a == 0.0 {
                continue;
            }
            let p = a / aq;
            let cand = p * p * wq;
            if cand > w[j] {
                w[j] = cand;
            }
            if w[j] > wmax {
                wmax = w[j];
            }
        }
        w[leave] = (wq / (aq * aq)).max(1.0);
        w[enter] = 1.0;
        self.stats.devex_pivots += 1;
        if wmax.max(w[leave]) > DEVEX_RESET {
            w.fill(1.0);
            self.stats.devex_resets += 1;
        }
    }

    /// Violation of candidate `j` under the current reduced costs:
    /// positive means entering improves the objective; −∞ marks basic
    /// or fixed columns (never eligible).
    fn entering_viol(&self, j: usize, d: &[f64]) -> f64 {
        if self.basis_pos[j] != usize::MAX || self.ub[j] - self.lb[j] <= EPS {
            return f64::NEG_INFINITY;
        }
        if self.at_upper[j] {
            d[j]
        } else {
            -d[j]
        }
    }

    /// Refresh one entry of the maintained violation array (and the
    /// live-candidate count) after its reduced cost, bound side, or
    /// basis membership changed.
    fn refresh_viol(
        &self,
        j: usize,
        col_limit: usize,
        d: &[f64],
        viol: &mut [f64],
        active: &mut u64,
    ) {
        if j >= col_limit {
            return;
        }
        let was = viol[j] != f64::NEG_INFINITY;
        let now = self.entering_viol(j, d);
        viol[j] = now;
        match (was, now != f64::NEG_INFINITY) {
            (false, true) => *active += 1,
            (true, false) => *active -= 1,
            _ => {}
        }
    }

    /// Weighted entering choice: the candidate maximising `viol²/w`
    /// over all positive violations, ties on lowest index. `viol` is
    /// the maintained violation array (−∞ for non-candidates) and
    /// `active` the number of live candidates it holds.
    fn choose_entering_weighted(&mut self, viol: &[f64], active: u64, w: &[f64]) -> Option<usize> {
        self.stats.scanned += active;
        let mut best = None;
        let mut best_score = 0.0f64;
        for (j, &v) in viol.iter().enumerate() {
            if v > COST_EPS {
                let score = v * v / w[j];
                if score > best_score {
                    best_score = score;
                    best = Some(j);
                }
            }
        }
        best
    }

    /// Dantzig (largest violation) or Bland (lowest index) entering
    /// choice over a full scan. The revised engine always scans fully:
    /// reduced costs are dense and up to date, so partial pricing would
    /// save nothing.
    fn choose_entering(&mut self, d: &[f64], col_limit: usize, bland: bool) -> Option<usize> {
        let mut best = None;
        let mut best_score = COST_EPS;
        for (j, &dj) in d.iter().enumerate().take(col_limit) {
            if self.basis_pos[j] != usize::MAX || self.ub[j] - self.lb[j] <= EPS {
                continue;
            }
            self.stats.scanned += 1;
            let score = if self.at_upper[j] { dj } else { -dj };
            if score > best_score {
                if bland {
                    return Some(j);
                }
                best_score = score;
                best = Some(j);
            }
        }
        best
    }

    /// Bounded ratio test for `enter` moving in direction `dir` (its
    /// FTRAN'd column in `ecol`): identical logic and tie-breaks to the
    /// tableau engine's.
    fn ratio_test(&self, enter: usize, dir: f64, ecol: &[f64]) -> Step {
        let span = self.ub[enter] - self.lb[enter]; // may be ∞
        let mut best_step = span;
        let mut best: Option<(usize, f64, bool)> = None; // (row, target, at_upper)
        for (i, &e) in ecol.iter().enumerate() {
            let rate = dir * e;
            let b = self.basis[i];
            let value = self.xb[i];
            let (limit, target, leave_at_upper) = if rate > EPS {
                if self.lb[b].is_finite() {
                    ((value - self.lb[b]) / rate, self.lb[b], false)
                } else {
                    continue;
                }
            } else if rate < -EPS {
                if self.ub[b].is_finite() {
                    ((self.ub[b] - value) / -rate, self.ub[b], true)
                } else {
                    continue;
                }
            } else {
                continue;
            };
            let limit = limit.max(0.0); // tolerate tiny bound violations
            let replaces = match best {
                _ if limit < best_step - EPS => true,
                Some((bi, _, _)) => limit < best_step + EPS && self.basis[i] < self.basis[bi],
                None => limit < best_step + EPS && limit < span,
            };
            if replaces {
                best_step = limit.min(best_step);
                best = Some((i, target, leave_at_upper));
            }
        }
        match best {
            Some((row, target, leave_at_upper)) => Step::Pivot {
                row,
                target,
                leave_at_upper,
            },
            None if span.is_finite() => Step::Flip,
            None => Step::Unbounded,
        }
    }

    /// Dual simplex repair: same leaving/entering rules as the tableau
    /// engine, with the pricing row reconstructed per iteration by one
    /// BTRAN, and the same stability/refactorization policy as the
    /// primal loop.
    fn dual_iterate(&mut self, d: &mut [f64], col_limit: usize) -> Result<(), SolveError> {
        let max_iter = 20_000 + 100 * (self.m + self.cols);
        let mut ecol = vec![0.0; self.m];
        let mut rho = vec![0.0; self.m];
        let mut pr = PriceRow::new(self.cols);
        let mut fresh = false;
        let result = (|| {
            for _ in 0..max_iter {
                // Leaving row: the largest bound violation.
                let mut leave: Option<(usize, f64, bool)> = None; // (row, viol, below)
                for i in 0..self.m {
                    let b = self.basis[i];
                    let v = self.xb[i];
                    let (viol, below) = if v < self.lb[b] - FEAS_EPS {
                        (self.lb[b] - v, true)
                    } else if v > self.ub[b] + FEAS_EPS {
                        (v - self.ub[b], false)
                    } else {
                        continue;
                    };
                    if leave.is_none_or(|(_, w, _)| viol > w) {
                        leave = Some((i, viol, below));
                    }
                }
                let Some((row, _, below)) = leave else {
                    return Ok(()); // primal feasible
                };
                let b = self.basis[row];
                let target = if below { self.lb[b] } else { self.ub[b] };

                rho.fill(0.0);
                rho[row] = 1.0;
                self.stats.btran_nnz += self.factor.btran(&mut rho);
                self.pricing_row(&rho, &mut pr);

                // Entering column by the dual ratio test over the row's
                // entries (ascending scan keeps the tableau tie-breaks).
                let mut enter: Option<(usize, f64)> = None;
                for (j, &a) in pr.alpha.iter().enumerate().take(col_limit) {
                    if self.basis_pos[j] != usize::MAX || self.ub[j] - self.lb[j] <= EPS {
                        continue;
                    }
                    if a.abs() <= EPS {
                        continue;
                    }
                    let eligible = if below {
                        (!self.at_upper[j] && a < -EPS) || (self.at_upper[j] && a > EPS)
                    } else {
                        (!self.at_upper[j] && a > EPS) || (self.at_upper[j] && a < -EPS)
                    };
                    if !eligible {
                        continue;
                    }
                    let ratio = (d[j] / a).abs();
                    if enter.is_none_or(|(_, r)| ratio < r - EPS) {
                        enter = Some((j, ratio));
                    }
                }
                let Some((col, _)) = enter else {
                    return Err(SolveError::Infeasible);
                };
                self.load_column(col, &mut ecol);
                self.stats.ftran_nnz += self.factor.ftran(&mut ecol);
                let (pf, pb) = (ecol[row], pr.alpha[col]);
                if !fresh && (pf - pb).abs() > STAB_EPS * (1.0 + pf.abs().max(pb.abs())) {
                    self.refactorize()?;
                    fresh = true;
                    continue;
                }
                self.pivot_apply(row, col, target, !below, d, &ecol, &pr)?;
                self.stats.pivots += 1;
                self.stats.dual_pivots += 1;
                fresh = false;
            }
            Err(SolveError::IterationLimit)
        })();
        self.flush_stats();
        result
    }

    /// Apply a pivot: `col` becomes basic at `row`, the leaving variable
    /// lands on `target`. Basic values move along the entering column,
    /// reduced costs along the pricing row, the eta file grows by one,
    /// and the periodic refactorization policy runs.
    #[allow(clippy::too_many_arguments)]
    fn pivot_apply(
        &mut self,
        row: usize,
        col: usize,
        target: f64,
        leave_at_upper: bool,
        d: &mut [f64],
        ecol: &[f64],
        pr: &PriceRow,
    ) -> Result<(), SolveError> {
        let aq = ecol[row];
        debug_assert!(aq.abs() > EPS);
        let delta = (self.xb[row] - target) / aq;
        let entering_value = self.nonbasic_value(col) + delta;

        for (i, (x, &e)) in self.xb.iter_mut().zip(ecol).enumerate() {
            if i != row && e != 0.0 {
                *x -= e * delta;
            }
        }

        let leave = self.basis[row];
        self.at_upper[leave] = leave_at_upper;
        self.basis_pos[leave] = usize::MAX;
        self.basis[row] = col;
        self.basis_pos[col] = row;
        self.xb[row] = entering_value;

        // d′_j = d_j − (d_q/α_q)·α_j over the pricing row's support
        // (off-support reduced costs are unchanged); exact zeros for
        // the new basic and the textbook value for the leaver.
        let factor = d[col] / aq;
        if factor != 0.0 {
            for &ju in &pr.support {
                let j = ju as usize;
                d[j] -= factor * pr.alpha[j];
            }
        }
        d[col] = 0.0;
        d[leave] = -factor;

        self.factor.push_eta(row, ecol);
        self.stats.eta_updates += 1;
        if self.factor.eta_count() >= self.params.refactor_after {
            self.refactorize()?;
        }
        #[cfg(feature = "check-invariants")]
        self.assert_invariants("pivot");
        Ok(())
    }

    /// After phase 1: pivot basic artificials (at value 0) out where a
    /// real column has a nonzero pricing-row entry (redundant rows keep
    /// theirs), then freeze every artificial at `[0, 0]`.
    fn expel_and_freeze_artificials(&mut self, d: &mut [f64]) -> Result<(), SolveError> {
        let mut ecol = vec![0.0; self.m];
        let mut rho = vec![0.0; self.m];
        let mut pr = PriceRow::new(self.cols);
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                rho.fill(0.0);
                rho[i] = 1.0;
                self.stats.btran_nnz += self.factor.btran(&mut rho);
                self.pricing_row(&rho, &mut pr);
                let col = (0..self.art_start)
                    .find(|&j| self.basis_pos[j] == usize::MAX && pr.alpha[j].abs() > 1e-7);
                if let Some(col) = col {
                    self.load_column(col, &mut ecol);
                    self.stats.ftran_nnz += self.factor.ftran(&mut ecol);
                    self.pivot_apply(i, col, 0.0, false, d, &ecol, &pr)?;
                    self.stats.pivots += 1;
                }
            }
        }
        for j in self.art_start..self.cols {
            self.lb[j] = 0.0;
            self.ub[j] = 0.0;
        }
        #[cfg(feature = "check-invariants")]
        self.assert_invariants("artificial expulsion");
        Ok(())
    }

    /// Read the structural solution and objective off the state.
    fn extract(&self, model: &Model) -> Solution {
        let mut x = vec![0.0; self.n];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = if self.basis_pos[j] != usize::MAX {
                self.xb[self.basis_pos[j]]
            } else {
                self.nonbasic_value(j)
            };
        }
        let objective: f64 = model
            .objective
            .iter()
            .map(|&(v, coef)| coef * x[v.0])
            .sum::<f64>()
            + model.objective_const;
        Solution::new(objective, x)
    }

    /// Add the per-solve counters to telemetry and zero them (safe to
    /// call repeatedly; loop boundaries and solve exits both flush).
    fn flush_stats(&mut self) {
        let s = self.stats;
        self.stats = Stats::default();
        vb_telemetry::counter!("solver.pivots").add(s.pivots);
        vb_telemetry::counter!("solver.pricing_cols_scanned").add(s.scanned);
        vb_telemetry::counter!("solver.ftran_nnz").add(s.ftran_nnz);
        vb_telemetry::counter!("solver.btran_nnz").add(s.btran_nnz);
        if s.dual_pivots > 0 {
            vb_telemetry::counter!("solver.dual_pivots").add(s.dual_pivots);
        }
        if s.flips > 0 {
            vb_telemetry::counter!("solver.bound_flips").add(s.flips);
        }
        if s.degenerate > 0 {
            vb_telemetry::counter!("solver.degenerate_pivots").add(s.degenerate);
        }
        if s.devex_pivots > 0 {
            vb_telemetry::counter!("solver.devex_pivots").add(s.devex_pivots);
        }
        if s.devex_resets > 0 {
            vb_telemetry::counter!("solver.devex_resets").add(s.devex_resets);
        }
        if s.refactorizations > 0 {
            vb_telemetry::counter!("solver.refactorizations").add(s.refactorizations);
        }
        if s.eta_updates > 0 {
            vb_telemetry::counter!("solver.eta_updates").add(s.eta_updates);
        }
        if s.steepest_resets > 0 {
            vb_telemetry::counter!("solver.steepest_resets").add(s.steepest_resets);
        }
    }

    /// Algebraic self-checks behind the `check-invariants` feature:
    ///
    /// 1. `basis`/`basis_pos` form a consistent bijection and every
    ///    nonbasic column sits on a finite bound (as in the tableau
    ///    engine);
    /// 2. the **constraint residual** `‖A·x − b‖` is small row by row,
    ///    with `x` assembled from the basic values and nonbasic bounds —
    ///    the factorized engine's counterpart of the tableau's unit
    ///    basic-column check (and the check the refactorization-
    ///    consistency assert complements from the other side).
    #[cfg(feature = "check-invariants")]
    fn assert_invariants(&self, ctx: &str) {
        assert_eq!(self.basis.len(), self.m, "basis length drifted after {ctx}");
        let mut seen = vec![false; self.cols];
        for (i, &b) in self.basis.iter().enumerate() {
            assert!(
                b < self.cols,
                "row {i}: basic column {b} out of range after {ctx}"
            );
            assert!(!seen[b], "column {b} basic in two rows after {ctx}");
            seen[b] = true;
            assert_eq!(
                self.basis_pos[b], i,
                "basis_pos[{b}] disagrees with basis[{i}] after {ctx}"
            );
            assert!(
                self.xb[i].is_finite(),
                "row {i}: non-finite basic value after {ctx}"
            );
        }
        let n_basic = self.basis_pos.iter().filter(|&&p| p != usize::MAX).count();
        assert_eq!(n_basic, self.m, "basic column count != m after {ctx}");
        for j in 0..self.cols {
            if self.basis_pos[j] == usize::MAX {
                assert!(
                    self.nonbasic_value(j).is_finite(),
                    "nonbasic column {j} rests on a non-finite bound after {ctx}"
                );
            }
        }

        // ‖A·x − b‖ residual, accumulated column-wise with a per-row
        // magnitude scale so well-conditioned rows get a tight check.
        let mut resid: Vec<f64> = self.rhs_b.iter().map(|&b| -b).collect();
        let mut scale: Vec<f64> = self.rhs_b.iter().map(|&b| b.abs()).collect();
        for j in 0..self.cols {
            let v = if self.basis_pos[j] != usize::MAX {
                self.xb[self.basis_pos[j]]
            } else {
                self.nonbasic_value(j)
            };
            if v == 0.0 {
                continue;
            }
            self.sub_column(j, -v, &mut resid);
            if j < self.n {
                let (a, b) = (
                    self.mat.col_starts[j] as usize,
                    self.mat.col_starts[j + 1] as usize,
                );
                for e in a..b {
                    scale[self.mat.col_rows[e] as usize] += (self.mat.col_vals[e] * v).abs();
                }
            } else if j < self.art_start {
                scale[j - self.n] += v.abs();
            } else {
                scale[self.arts[j - self.art_start].row as usize] += v.abs();
            }
        }
        for (i, (&r, &s)) in resid.iter().zip(&scale).enumerate() {
            assert!(
                r.abs() <= 1e-6 * (1.0 + s),
                "row {i}: constraint residual {r} (scale {s}) after {ctx}"
            );
        }
    }
}

/// Objective monotonicity for primal steps (dual repair is exempt) —
/// identical to the tableau engine's check.
#[cfg(feature = "check-invariants")]
fn assert_monotone_step(d_enter: f64, travel: f64, what: &str) {
    let change = d_enter * travel;
    assert!(
        change <= FEAS_EPS * (1.0 + travel.abs()),
        "objective increased by {change} on a primal {what} \
         (reduced cost {d_enter}, travel {travel})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};
    use crate::simplex;

    fn sample_lp() -> Model {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 -> x=2,y=6, obj 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let y = m.var("y", 0.0, f64::INFINITY);
        let e = m.expr(&[(x, 1.0)]);
        m.add_le(e, 4.0);
        let e = m.expr(&[(y, 2.0)]);
        m.add_le(e, 12.0);
        let e = m.expr(&[(x, 3.0), (y, 2.0)]);
        m.add_le(e, 18.0);
        let obj = m.expr(&[(x, 3.0), (y, 5.0)]);
        m.set_objective(obj);
        m
    }

    #[test]
    fn matches_tableau_on_classic_lp() {
        let m = sample_lp();
        for pricing in [Pricing::Dantzig, Pricing::Devex, Pricing::SteepestEdge] {
            let (sol, _) = solve_lp_state(&m, &[], None, pricing).unwrap();
            assert!((sol.objective - 36.0).abs() < 1e-6, "obj {}", sol.objective);
        }
    }

    #[test]
    fn phase1_and_equalities() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x=2, y=1, obj 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let y = m.var("y", 0.0, f64::INFINITY);
        let e = m.expr(&[(x, 1.0), (y, 2.0)]);
        m.add_eq(e, 4.0);
        let e = m.expr(&[(x, 1.0), (y, -1.0)]);
        m.add_eq(e, 1.0);
        let obj = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.set_objective(obj);
        let (sol, _) = solve_lp_state(&m, &[], None, Pricing::SteepestEdge).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        let v = sol.values();
        assert!((v[0] - 2.0).abs() < 1e-6 && (v[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_and_unbounded_are_reported() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, 1.0);
        let e = m.expr(&[(x, 1.0)]);
        m.add_ge(e, 2.0);
        assert!(matches!(
            solve_lp_state(&m, &[], None, Pricing::SteepestEdge),
            Err(SolveError::Infeasible)
        ));

        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let y = m.var("y", 0.0, f64::INFINITY);
        let e = m.expr(&[(x, 1.0), (y, -1.0)]);
        m.add_le(e, 1.0);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        assert!(matches!(
            solve_lp_state(&m, &[], None, Pricing::SteepestEdge),
            Err(SolveError::Unbounded)
        ));
    }

    #[test]
    fn warm_start_with_branching_bounds() {
        let m = sample_lp();
        let (_, root) = solve_lp_state(&m, &[], None, Pricing::SteepestEdge).unwrap();
        // Branch x <= 1: warm must agree with cold.
        let x = VarId(0);
        let (warm_sol, _) =
            solve_lp_state(&m, &[(x, 0.0, 1.0)], Some(&root), Pricing::SteepestEdge).unwrap();
        let (cold_sol, _) =
            solve_lp_state(&m, &[(x, 0.0, 1.0)], None, Pricing::SteepestEdge).unwrap();
        assert!(
            (warm_sol.objective - cold_sol.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            warm_sol.objective,
            cold_sol.objective
        );
    }

    #[test]
    fn epoch_warm_tracks_rhs_and_bound_moves() {
        let mut m = sample_lp();
        let (_, state) = solve_lp_state(&m, &[], None, Pricing::SteepestEdge).unwrap();
        // Move the RHS and a bound, re-solve warm and cold.
        m.constraints[2].rhs = 16.0;
        m.vars[0].ub = 3.0;
        let (warm_sol, _) = solve_lp_epoch_warm(&m, &state, Pricing::SteepestEdge).unwrap();
        let (cold_sol, _) = solve_lp_state(&m, &[], None, Pricing::SteepestEdge).unwrap();
        assert!(
            (warm_sol.objective - cold_sol.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            warm_sol.objective,
            cold_sol.objective
        );
    }

    #[test]
    fn tiny_refactor_interval_matches_default() {
        // Forcing a refactorization every 2 pivots must not change the
        // optimum (it only swaps eta solves for fresh factors).
        let m = sample_lp();
        let tight = Params {
            refactor_after: 2,
            bland_after: 3,
        };
        let (sol, st) = solve_lp_state_params(&m, &[], None, Pricing::SteepestEdge, tight).unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!(st.params.refactor_after == 2);
        let (dense_sol, _) = simplex::solve_lp_state(&m, &[], None).unwrap();
        assert!((sol.objective - dense_sol.objective).abs() < 1e-9);
    }
}
