//! Sparse bounded-variable primal simplex with dual-simplex warm starts.
//!
//! Solves the LP relaxation of a [`Model`]. Unlike the textbook
//! row-expansion construction (retained in [`crate::dense`] as a
//! differential-testing oracle), variable bounds here never become
//! tableau rows: every variable — structural or logical — carries its
//! own `[lb, ub]` interval, nonbasic variables sit at *either* bound,
//! and the ratio test admits **bound flips** (a nonbasic variable
//! jumping from one finite bound to the other without a pivot). A model
//! with thousands of placement binaries therefore solves on a tableau
//! with one row per *constraint* only.
//!
//! The tableau rows themselves are **sparse** ([`SpRow`]): placement
//! rows touch a handful of variables, so Gauss–Jordan elimination walks
//! only the nonzero columns of the pivot row (entries that cancel below
//! a drop tolerance are removed). Entering columns are priced with a
//! cyclic candidate-list (**partial pricing**) scheme: a Dantzig scan
//! over a block of columns starting at a persisted cursor, falling back
//! to a full lowest-index Bland scan for anti-cycling after a fixed
//! number of iterations. All tie-breaks remain by lowest index, so
//! solves are deterministic for a given model — Table 1 / Fig 4 outputs
//! stay reproducible.
//!
//! The engine exposes its final state ([`SimplexState`]) so callers can
//! **warm-start** follow-up solves:
//!
//! * Branch & bound children ([`solve_lp_state`] with `warm`): same
//!   model, only variable bounds differ. The child clones its parent's
//!   optimal tableau, applies the branching bound change (which
//!   preserves dual feasibility — reduced costs do not depend on
//!   bounds), repairs primal feasibility with a dual-simplex phase, and
//!   finishes with a primal clean-up pass.
//! * Cross-epoch re-solves ([`solve_lp_epoch_warm`]): a *structurally
//!   identical* model — same constraint matrix, senses, and integrality
//!   — whose objective, right-hand sides, and variable bounds moved
//!   (the MIP co-scheduler re-plans the same sites × apps × buckets
//!   model every epoch with fresh forecasts). Because the tableau
//!   coefficients depend only on the constraint matrix and the basis,
//!   the retained state stays valid; the basic values are retargeted
//!   through the logical-column block (`Δr = T_logical · Δb`), bounds
//!   re-applied, and the previous optimal basis repaired with the same
//!   dual-simplex pass. Callers gate structure equality with
//!   [`crate::skeleton::ModelSkeleton`].
//!
//! Construction of a cold solve:
//!
//! 1. Every constraint `a·x ⋈ b` becomes an equality `a·x + s = b` with
//!    a *logical* variable `s` bounded by the constraint type
//!    (`≤`: `s ∈ [0, ∞)`, `≥`: `s ∈ (−∞, 0]`, `=`: `s ∈ [0, 0]`).
//! 2. Structural variables start nonbasic at their lower bound; rows
//!    whose residual fits the logical's interval take the logical as the
//!    initial basic variable, the rest get a phase-1 artificial.
//! 3. **Phase 1** minimises the sum of artificials (positive optimum ⇒
//!    infeasible), then artificials are expelled and frozen at zero.
//! 4. **Phase 2** minimises the real objective (maximisation by
//!    negation) with artificials barred from entering.

use crate::model::{Cmp, Model, Sense, Solution, SolveError, VarId};

/// Entering-column pricing rule for the primal iterations.
///
/// Both rules share the Bland anti-cycling fallback (a full lowest-index
/// scan after [`BLAND_AFTER`] iterations) and break every tie by lowest
/// column index, so either way a solve is a deterministic function of
/// the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Cyclic partial Dantzig scan (the PR 7 kernel's rule): cheap per
    /// iteration, but the largest-violation choice can pivot many times
    /// on near-parallel edges.
    #[default]
    Dantzig,
    /// Devex pricing: approximate steepest-edge with reference weights
    /// that start at 1, grow per pivot from the pivot row, and reset
    /// when they overflow [`DEVEX_RESET`]. More work per scan, far
    /// fewer pivots on the fleet-shaped models.
    Devex,
    /// Steepest-edge pricing with exact norms, maintained per pivot by
    /// the Forrest–Goldfarb recurrence on the factorized
    /// ([`crate::revised`]) engine. The explicit-tableau engine cannot
    /// afford the extra BTRAN per pivot, so it prices this variant with
    /// devex weights (the cheap approximation of the same norms).
    SteepestEdge,
}

/// Pivot / ratio-test tolerance.
pub(crate) const EPS: f64 = 1e-9;
/// Reduced-cost optimality tolerance.
pub(crate) const COST_EPS: f64 = 1e-7;
/// Primal feasibility tolerance (phase 1 and dual-simplex repair).
pub(crate) const FEAS_EPS: f64 = 1e-6;
/// Iterations of Dantzig pivoting before switching to Bland's rule.
pub(crate) const BLAND_AFTER: usize = 2_000;
/// Entries whose magnitude falls to or below this during sparse row
/// updates are dropped (numerical zeros would otherwise accumulate and
/// densify the rows).
pub(crate) const DROP_EPS: f64 = 1e-12;
/// Minimum partial-pricing window: the cyclic Dantzig scan examines at
/// least this many columns (and at least `cols / 8`) once a violating
/// candidate has been found before committing to the best seen.
const PRICE_BLOCK: usize = 64;
/// Devex reference weights reset to 1 when any weight exceeds this —
/// the reference framework has drifted too far to approximate
/// steepest-edge norms usefully.
pub(crate) const DEVEX_RESET: f64 = 1e7;

/// A sparse tableau row: parallel `(column, value)` arrays sorted by
/// column index, nonzeros only.
#[derive(Debug, Clone, Default)]
struct SpRow {
    idx: Vec<u32>,
    val: Vec<f64>,
}

impl SpRow {
    fn with_capacity(cap: usize) -> SpRow {
        SpRow {
            idx: Vec::with_capacity(cap),
            val: Vec::with_capacity(cap),
        }
    }

    fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Append an entry; columns must arrive in strictly increasing order.
    fn push(&mut self, col: usize, v: f64) {
        debug_assert!(self.idx.last().is_none_or(|&last| (last as usize) < col));
        self.idx.push(col as u32);
        self.val.push(v);
    }

    /// Value at `col` (0.0 when absent).
    fn get(&self, col: usize) -> f64 {
        match self.idx.binary_search(&(col as u32)) {
            Ok(k) => self.val[k],
            Err(_) => 0.0,
        }
    }

    /// Overwrite the entry at `col`, inserting it if absent.
    fn set(&mut self, col: usize, v: f64) {
        match self.idx.binary_search(&(col as u32)) {
            Ok(k) => self.val[k] = v,
            Err(k) => {
                self.idx.insert(k, col as u32);
                self.val.insert(k, v);
            }
        }
    }

    /// Iterate `(column, value)` pairs in ascending column order.
    fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.idx
            .iter()
            .zip(&self.val)
            .map(|(&c, &v)| (c as usize, v))
    }

    fn scale(&mut self, f: f64) {
        for v in &mut self.val {
            *v *= f;
        }
    }
}

/// `out = a + factor·b`, merging the two sorted sparse rows. Result
/// entries whose magnitude falls to or below [`DROP_EPS`] are dropped.
fn axpy_into(out: &mut SpRow, a: &SpRow, factor: f64, b: &SpRow) {
    out.idx.clear();
    out.val.clear();
    let cap = a.nnz() + b.nnz();
    out.idx.reserve(cap);
    out.val.reserve(cap);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.idx.len() && j < b.idx.len() {
        match a.idx[i].cmp(&b.idx[j]) {
            std::cmp::Ordering::Less => {
                out.idx.push(a.idx[i]);
                out.val.push(a.val[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let v = factor * b.val[j];
                if v.abs() > DROP_EPS {
                    out.idx.push(b.idx[j]);
                    out.val.push(v);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let v = a.val[i] + factor * b.val[j];
                if v.abs() > DROP_EPS {
                    out.idx.push(a.idx[i]);
                    out.val.push(v);
                }
                i += 1;
                j += 1;
            }
        }
    }
    while i < a.idx.len() {
        out.idx.push(a.idx[i]);
        out.val.push(a.val[i]);
        i += 1;
    }
    while j < b.idx.len() {
        let v = factor * b.val[j];
        if v.abs() > DROP_EPS {
            out.idx.push(b.idx[j]);
            out.val.push(v);
        }
        j += 1;
    }
}

/// Solve a model's LP relaxation, with optional `(var, lb, ub)` bound
/// overrides (used by branch & bound to impose branching bounds).
pub fn solve_lp(
    model: &Model,
    bound_overrides: &[(VarId, f64, f64)],
) -> Result<Solution, SolveError> {
    solve_lp_state(model, bound_overrides, None).map(|(sol, _)| sol)
}

/// Solve a model's LP relaxation and return the optimal simplex state
/// alongside the solution.
///
/// When `warm` carries the final state of a previous solve of the *same
/// model* (only bounds may differ — exactly the branch & bound setting),
/// the solve starts from that basis and repairs feasibility with a
/// dual-simplex phase instead of running two full phases; if the repair
/// stalls it falls back to a cold solve, so the result is identical
/// either way up to degenerate alternate optima.
pub fn solve_lp_state(
    model: &Model,
    bound_overrides: &[(VarId, f64, f64)],
    warm: Option<&SimplexState>,
) -> Result<(Solution, SimplexState), SolveError> {
    solve_lp_state_priced(model, bound_overrides, warm, Pricing::Dantzig)
}

/// [`solve_lp_state`] with an explicit entering-column [`Pricing`] rule
/// for the primal passes (the dual-simplex repair is pricing-agnostic).
pub fn solve_lp_state_priced(
    model: &Model,
    bound_overrides: &[(VarId, f64, f64)],
    warm: Option<&SimplexState>,
    pricing: Pricing,
) -> Result<(Solution, SimplexState), SolveError> {
    let _span = vb_telemetry::span!("solver.lp_solve");
    vb_telemetry::counter!("solver.lp_solves").inc();

    let n = model.vars.len();
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    for &(v, l, u) in bound_overrides {
        lb[v.0] = l;
        ub[v.0] = u;
    }
    for j in 0..n {
        if lb[j] > ub[j] + EPS {
            return Err(SolveError::Infeasible);
        }
        if !lb[j].is_finite() {
            return Err(SolveError::BadModel(format!(
                "variable {} must have a finite lower bound",
                model.vars[j].name
            )));
        }
    }

    if let Some(parent) = warm {
        if parent.n == n && parent.m == model.constraints.len() {
            match warm_solve(model, &lb, &ub, parent, pricing) {
                Ok(done) => {
                    vb_telemetry::counter!("solver.warm_start_hits").inc();
                    return Ok(done);
                }
                // A proven-infeasible child is a successful warm start.
                Err(SolveError::Infeasible) => {
                    vb_telemetry::counter!("solver.warm_start_hits").inc();
                    return Err(SolveError::Infeasible);
                }
                // Numerical trouble: re-solve from scratch.
                Err(_) => vb_telemetry::counter!("solver.warm_start_misses").inc(),
            }
        } else {
            vb_telemetry::counter!("solver.warm_start_misses").inc();
        }
    }

    cold_solve(model, lb, ub, pricing)
}

/// Re-solve a *structurally identical* model from a previous epoch's
/// optimal state: same constraint matrix (pattern, values, and senses),
/// but the objective, right-hand sides, and variable bounds may all have
/// moved. The retained tableau stays valid — its coefficients depend
/// only on the matrix and the basis — so the solve retargets the basic
/// values for the RHS delta through the logical-column block, re-applies
/// the bounds, and repairs the previous optimal basis with a
/// dual-simplex phase plus a primal clean-up pass.
///
/// Structure equality is the *caller's* contract (gate with
/// [`crate::skeleton::ModelSkeleton::matches`]); only the dimensions are
/// checked here. `Err(Infeasible)` can also mean the repair could not
/// recover the basis (e.g. a frozen redundant row turned inconsistent),
/// so callers should fall back to a cold solve rather than trust it as a
/// certificate.
pub fn solve_lp_epoch_warm(
    model: &Model,
    prev: &SimplexState,
) -> Result<(Solution, SimplexState), SolveError> {
    solve_lp_epoch_warm_priced(model, prev, Pricing::Dantzig)
}

/// [`solve_lp_epoch_warm`] with an explicit [`Pricing`] rule for the
/// primal clean-up pass.
pub fn solve_lp_epoch_warm_priced(
    model: &Model,
    prev: &SimplexState,
    pricing: Pricing,
) -> Result<(Solution, SimplexState), SolveError> {
    let _span = vb_telemetry::span!("solver.lp_solve");
    vb_telemetry::counter!("solver.lp_solves").inc();

    let n = model.vars.len();
    if prev.n != n || prev.m != model.constraints.len() {
        return Err(SolveError::BadModel(
            "epoch warm start requires identical model dimensions".into(),
        ));
    }
    let lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    for j in 0..n {
        if lb[j] > ub[j] + EPS {
            return Err(SolveError::Infeasible);
        }
        if !lb[j].is_finite() {
            return Err(SolveError::BadModel(format!(
                "variable {} must have a finite lower bound",
                model.vars[j].name
            )));
        }
    }

    let mut st = prev.clone();
    st.apply_rhs(model);
    st.apply_bounds(&lb, &ub)?;
    let c2 = st.phase2_costs(model);
    let mut d = st.reduced_costs(&c2);
    st.dual_iterate(&mut d, st.art_start)?;
    st.iterate_with(&mut d, st.art_start, pricing)?;
    let sol = st.extract(model);
    Ok((sol, st))
}

/// Full two-phase bounded-variable solve from the logical basis.
fn cold_solve(
    model: &Model,
    lb: Vec<f64>,
    ub: Vec<f64>,
    pricing: Pricing,
) -> Result<(Solution, SimplexState), SolveError> {
    let mut st = SimplexState::build(model, lb, ub);
    vb_telemetry::histogram!("solver.tableau_rows").observe(st.m as f64);

    // Phase 1: minimise the sum of artificials.
    if st.art_start < st.cols {
        let mut c1 = vec![0.0; st.cols];
        for c in c1.iter_mut().skip(st.art_start) {
            *c = 1.0;
        }
        let mut d = st.reduced_costs(&c1);
        st.iterate_with(&mut d, st.cols, pricing)?; // artificials may pivot in phase 1
        let infeas: f64 = (0..st.m)
            .filter(|&i| st.basis[i] >= st.art_start)
            .map(|i| st.rhs[i])
            .sum();
        if infeas > FEAS_EPS {
            return Err(SolveError::Infeasible);
        }
        st.expel_and_freeze_artificials(&mut d);
    }

    // Phase 2: the real objective, artificials barred from entering.
    let c2 = st.phase2_costs(model);
    let mut d = st.reduced_costs(&c2);
    st.iterate_with(&mut d, st.art_start, pricing)?;

    let sol = st.extract(model);
    Ok((sol, st))
}

/// Re-optimise `parent` under new structural bounds: dual-simplex repair
/// followed by a primal clean-up pass.
fn warm_solve(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    parent: &SimplexState,
    pricing: Pricing,
) -> Result<(Solution, SimplexState), SolveError> {
    let mut st = parent.clone();
    st.apply_bounds(lb, ub)?;
    let c2 = st.phase2_costs(model);
    let mut d = st.reduced_costs(&c2);
    st.dual_iterate(&mut d, st.art_start)?;
    // The repair restores primal feasibility; reduced costs stayed dual
    // feasible throughout, so this pass usually does zero pivots. It
    // also mops up any nonbasic variable whose bound side had to switch.
    st.iterate_with(&mut d, st.art_start, pricing)?;
    let sol = st.extract(model);
    Ok((sol, st))
}

/// Sparse bounded-variable simplex tableau, reusable as a warm-start
/// basis by later solves of the same model under different bounds (and,
/// via [`solve_lp_epoch_warm`], by later solves of structurally
/// identical models under different objective/RHS/bounds).
///
/// Columns are laid out `[structural | logical (one per row) |
/// artificial]`; `rhs[i]` holds the *current value* of row `i`'s basic
/// variable (not the textbook `B⁻¹b` — nonbasic variables at nonzero
/// bounds are folded in), while `rhs_b` remembers the model RHS the
/// state was built against so an epoch re-solve can retarget by delta.
#[derive(Debug, Clone)]
pub struct SimplexState {
    /// Sparse tableau rows over all `cols` columns.
    rows: Vec<SpRow>,
    /// Current value of each row's basic variable.
    rhs: Vec<f64>,
    /// Model right-hand side each row was built against (pre sign-flip),
    /// used to retarget `rhs` when an epoch changes the model RHS.
    rhs_b: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Row index per column (`usize::MAX` when nonbasic).
    basis_pos: Vec<usize>,
    /// Which bound each nonbasic column currently sits at.
    at_upper: Vec<bool>,
    /// Per-column lower bounds (structural, then logical, artificial).
    lb: Vec<f64>,
    /// Per-column upper bounds.
    ub: Vec<f64>,
    /// Structural variable count.
    n: usize,
    /// Row count (model constraints only — bounds add no rows).
    m: usize,
    /// Total column count.
    cols: usize,
    /// First artificial column (== `cols` when phase 1 was not needed).
    art_start: usize,
    /// Partial-pricing cursor: where the next cyclic Dantzig scan starts.
    price_pos: usize,
    /// Scratch row for the sparse axpy merge (allocation reuse only).
    scratch: SpRow,
}

/// Outcome of the primal ratio test.
enum Step {
    /// The entering variable travels to its opposite bound; no pivot.
    Flip,
    /// A basic variable blocks first and leaves at the given bound.
    Pivot {
        row: usize,
        target: f64,
        leave_at_upper: bool,
    },
    /// Nothing blocks: the objective is unbounded.
    Unbounded,
}

impl SimplexState {
    /// Build the initial tableau: logicals basic where the residual fits
    /// their interval, artificials elsewhere.
    fn build(model: &Model, mut lb: Vec<f64>, mut ub: Vec<f64>) -> SimplexState {
        let n = model.vars.len();
        let m = model.constraints.len();

        // Residual of each row with all structurals at their lower bound.
        let mut nnz = 0usize;
        let mut resid = Vec::with_capacity(m);
        for c in &model.constraints {
            nnz += c.coefs.len();
            let dot: f64 = c.coefs.iter().map(|&(v, a)| a * lb[v.0]).sum();
            resid.push(c.rhs - dot);
        }
        vb_telemetry::histogram!("solver.nnz").observe(nnz as f64);
        let needs_art: Vec<bool> = model
            .constraints
            .iter()
            .zip(&resid)
            .map(|(c, &r)| match c.cmp {
                Cmp::Le => r < 0.0,
                Cmp::Ge => r > 0.0,
                Cmp::Eq => r.abs() > EPS,
            })
            .collect();
        let n_art = needs_art.iter().filter(|&&x| x).count();
        let art_start = n + m;
        let cols = art_start + n_art;

        // Logical bounds per constraint type.
        for c in &model.constraints {
            match c.cmp {
                Cmp::Le => {
                    lb.push(0.0);
                    ub.push(f64::INFINITY);
                }
                Cmp::Ge => {
                    lb.push(f64::NEG_INFINITY);
                    ub.push(0.0);
                }
                Cmp::Eq => {
                    lb.push(0.0);
                    ub.push(0.0);
                }
            }
        }
        // Artificials live in [0, ∞) during phase 1.
        lb.resize(cols, 0.0);
        ub.resize(cols, f64::INFINITY);

        let mut rows = Vec::with_capacity(m);
        let mut rhs = vec![0.0; m];
        let mut rhs_b = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut at_upper = vec![false; cols];
        let mut next_art = art_start;
        for (i, c) in model.constraints.iter().enumerate() {
            // Canonical constraint coefs are sorted by variable id and
            // all < n, so appending the logical (and artificial) keeps
            // the row sorted.
            let mut row = SpRow::with_capacity(c.coefs.len() + 2);
            for &(v, a) in &c.coefs {
                row.push(v.0, a);
            }
            row.push(n + i, 1.0); // logical
            rhs_b.push(c.rhs);
            if needs_art[i] {
                let sigma = if resid[i] >= 0.0 { 1.0 } else { -1.0 };
                if sigma < 0.0 {
                    // Normalise so the basic (artificial) column is +1.
                    row.scale(-1.0);
                }
                row.push(next_art, 1.0);
                basis[i] = next_art;
                next_art += 1;
                rhs[i] = resid[i].abs();
                // The row's own logical stays nonbasic at 0: that is the
                // upper bound for `≥` logicals, the lower bound otherwise.
                at_upper[n + i] = matches!(c.cmp, Cmp::Ge);
            } else {
                basis[i] = n + i;
                rhs[i] = resid[i];
            }
            rows.push(row);
        }

        let mut basis_pos = vec![usize::MAX; cols];
        for (i, &b) in basis.iter().enumerate() {
            basis_pos[b] = i;
        }
        let st = SimplexState {
            rows,
            rhs,
            rhs_b,
            basis,
            basis_pos,
            at_upper,
            lb,
            ub,
            n,
            m,
            cols,
            art_start,
            price_pos: 0,
            scratch: SpRow::default(),
        };
        #[cfg(feature = "check-invariants")]
        st.assert_invariants("build");
        st
    }

    /// Phase-2 cost vector: the objective over structurals, min sense.
    fn phase2_costs(&self, model: &Model) -> Vec<f64> {
        let sign = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut c = vec![0.0; self.cols];
        for &(v, coef) in &model.objective {
            c[v.0] += sign * coef;
        }
        c
    }

    /// Reduced costs `d = c − c_B·B⁻¹A` for the current basis.
    fn reduced_costs(&self, c: &[f64]) -> Vec<f64> {
        let mut d = c.to_vec();
        for i in 0..self.m {
            let cb = c[self.basis[i]];
            if cb != 0.0 {
                for (j, aij) in self.rows[i].iter() {
                    d[j] -= cb * aij;
                }
            }
        }
        d
    }

    /// Current value of a nonbasic column (the bound it sits at).
    fn nonbasic_value(&self, j: usize) -> f64 {
        if self.at_upper[j] {
            self.ub[j]
        } else {
            self.lb[j]
        }
    }

    /// Extract a full tableau column into a dense scratch vector.
    fn column_into(&self, col: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.m).map(|i| self.rows[i].get(col)));
    }

    /// Retarget structural bounds (warm start). Nonbasic structurals are
    /// re-seated on a finite bound under the new interval and the basic
    /// values are adjusted for any value shift; basic structurals only
    /// get their interval updated (the dual repair restores feasibility).
    fn apply_bounds(&mut self, lb: &[f64], ub: &[f64]) -> Result<(), SolveError> {
        for j in 0..self.n {
            let (nl, nu) = (lb[j], ub[j]);
            if self.basis_pos[j] == usize::MAX {
                let old = self.nonbasic_value(j);
                let (new, up) = if self.at_upper[j] {
                    if nu.is_finite() {
                        (nu, true)
                    } else {
                        (nl, false)
                    }
                } else if nl.is_finite() {
                    (nl, false)
                } else {
                    (nu, true)
                };
                if !new.is_finite() {
                    return Err(SolveError::BadModel(
                        "warm start requires a finite bound per nonbasic variable".into(),
                    ));
                }
                let delta = new - old;
                if delta != 0.0 {
                    for i in 0..self.m {
                        let aij = self.rows[i].get(j);
                        if aij != 0.0 {
                            self.rhs[i] -= aij * delta;
                        }
                    }
                }
                self.at_upper[j] = up;
            }
            self.lb[j] = nl;
            self.ub[j] = nu;
        }
        Ok(())
    }

    /// Retarget the basic values for a model-RHS change (epoch warm
    /// start). The tableau `T = B⁻¹A₀` depends only on the constraint
    /// matrix and the basis, and the logical-column block of `T` *is*
    /// the row basis inverse (build-time sign flips cancel against the
    /// flipped initial logical identity), so a RHS move `Δb` shifts each
    /// basic value by `Σ_k T[i][n+k]·Δb_k`.
    fn apply_rhs(&mut self, model: &Model) {
        let mut delta = vec![0.0; self.m];
        let mut any = false;
        for (k, c) in model.constraints.iter().enumerate() {
            let d = c.rhs - self.rhs_b[k];
            if d != 0.0 {
                delta[k] = d;
                self.rhs_b[k] = c.rhs;
                any = true;
            }
        }
        if !any {
            return;
        }
        for i in 0..self.m {
            // Only the logical block [n, n+m) contributes.
            let row = &self.rows[i];
            let lo = row.idx.partition_point(|&c| (c as usize) < self.n);
            let hi = row.idx.partition_point(|&c| (c as usize) < self.n + self.m);
            let mut shift = 0.0;
            for k in lo..hi {
                shift += row.val[k] * delta[row.idx[k] as usize - self.n];
            }
            self.rhs[i] += shift;
        }
    }

    /// Primal bounded-variable simplex on reduced costs `d` until no
    /// nonbasic column priced below `col_limit` can improve. Bound flips
    /// and pivots both count toward the iteration cap. Devex
    /// reference weights live for exactly one call — every solve (and
    /// every warm-start clean-up pass) starts a fresh reference
    /// framework, so pricing history can never leak between solves and
    /// a solve stays a pure function of `(model, bounds, basis)`.
    fn iterate_with(
        &mut self,
        d: &mut [f64],
        col_limit: usize,
        pricing: Pricing,
    ) -> Result<(), SolveError> {
        let max_iter = 20_000 + 100 * (self.m + self.cols);
        let mut pivots = 0u64;
        let mut flips = 0u64;
        let mut degenerate = 0u64;
        let mut scanned = 0u64;
        let mut devex_pivots = 0u64;
        let mut devex_resets = 0u64;
        let mut weights: Option<Vec<f64>> = match pricing {
            Pricing::Dantzig => None,
            // The tableau engine approximates steepest-edge with devex
            // weights; exact norms need the factorized engine's BTRAN.
            Pricing::Devex | Pricing::SteepestEdge => Some(vec![1.0; self.cols]),
        };
        let result = (|| {
            let mut ecol = vec![0.0; self.m];
            for iter in 0..max_iter {
                let bland = iter >= BLAND_AFTER;
                let enter = if bland {
                    self.choose_entering(d, col_limit, true, &mut scanned)
                } else if let Some(w) = weights.as_ref() {
                    self.choose_entering_devex(d, col_limit, w, &mut scanned)
                } else {
                    self.choose_entering(d, col_limit, false, &mut scanned)
                };
                let Some(enter) = enter else {
                    return Ok(());
                };
                // Direction the entering variable moves: up from its
                // lower bound, down from its upper bound.
                let dir = if self.at_upper[enter] { -1.0 } else { 1.0 };
                self.column_into(enter, &mut ecol);
                match self.ratio_test(enter, dir, &ecol) {
                    Step::Unbounded => return Err(SolveError::Unbounded),
                    Step::Flip => {
                        let span = self.ub[enter] - self.lb[enter];
                        let delta = dir * span;
                        // The objective moves by d[enter]·delta; a
                        // minimising step must never increase it.
                        #[cfg(feature = "check-invariants")]
                        Self::assert_monotone_step(d[enter], delta, "bound flip");
                        for (r, &e) in self.rhs.iter_mut().zip(&ecol) {
                            *r -= e * delta;
                        }
                        self.at_upper[enter] = !self.at_upper[enter];
                        flips += 1;
                    }
                    Step::Pivot {
                        row,
                        target,
                        leave_at_upper,
                    } => {
                        if (self.rhs[row] - target).abs() <= EPS {
                            degenerate += 1;
                        }
                        #[cfg(feature = "check-invariants")]
                        Self::assert_monotone_step(
                            d[enter],
                            (self.rhs[row] - target) / ecol[row],
                            "pivot",
                        );
                        let alpha = ecol[row];
                        let leave = self.basis[row];
                        self.pivot_to(row, enter, target, leave_at_upper, d, &ecol);
                        pivots += 1;
                        if let Some(w) = weights.as_mut() {
                            devex_pivots += 1;
                            if Self::devex_update(w, &self.rows[row], enter, leave, alpha) {
                                devex_resets += 1;
                            }
                        }
                    }
                }
            }
            Err(SolveError::IterationLimit)
        })();
        vb_telemetry::counter!("solver.pivots").add(pivots);
        vb_telemetry::counter!("solver.pricing_cols_scanned").add(scanned);
        if flips > 0 {
            vb_telemetry::counter!("solver.bound_flips").add(flips);
        }
        if degenerate > 0 {
            vb_telemetry::counter!("solver.degenerate_pivots").add(degenerate);
        }
        if devex_pivots > 0 {
            vb_telemetry::counter!("solver.devex_pivots").add(devex_pivots);
        }
        if devex_resets > 0 {
            vb_telemetry::counter!("solver.devex_resets").add(devex_resets);
        }
        result
    }

    /// Devex reference-weight update after a pivot with entering column
    /// `enter` and leaving column `leave` (pivot element `alpha`).
    /// `prow` is the already-scaled pivot row, so its entry at column
    /// `j` is exactly `α_rj/α_rq` — the quantity the classic devex
    /// recurrence needs: `w_j ← max(w_j, (α_rj/α_rq)²·w_q)` for the
    /// pivot row's nonzeros, and `w_leave ← max(w_q/α², 1)` for the
    /// variable that just went nonbasic. Returns `true` when the
    /// framework overflowed [`DEVEX_RESET`] and every weight was reset
    /// to 1 (a fresh reference framework).
    fn devex_update(w: &mut [f64], prow: &SpRow, enter: usize, leave: usize, alpha: f64) -> bool {
        let wq = w[enter].max(1.0);
        let mut wmax = 0.0f64;
        for (j, p) in prow.iter() {
            if j != enter {
                let cand = p * p * wq;
                if cand > w[j] {
                    w[j] = cand;
                }
                if w[j] > wmax {
                    wmax = w[j];
                }
            }
        }
        w[leave] = (wq / (alpha * alpha)).max(1.0);
        w[enter] = 1.0;
        if wmax.max(w[leave]) > DEVEX_RESET {
            for x in w.iter_mut() {
                *x = 1.0;
            }
            return true;
        }
        false
    }

    /// Devex entering choice: the nonbasic column maximising
    /// `d_j²/w_j` over all violations. A full deterministic scan —
    /// unlike the cyclic Dantzig block, devex pays for a global look
    /// each iteration and earns it back in pivot count; ties break on
    /// the lowest column index (first strict improvement wins).
    fn choose_entering_devex(
        &self,
        d: &[f64],
        col_limit: usize,
        w: &[f64],
        scanned: &mut u64,
    ) -> Option<usize> {
        let mut best = None;
        let mut best_score = 0.0f64;
        for (j, &dj) in d.iter().enumerate().take(col_limit) {
            if self.basis_pos[j] != usize::MAX || self.ub[j] - self.lb[j] <= EPS {
                continue; // basic or fixed
            }
            *scanned += 1;
            let viol = if self.at_upper[j] { dj } else { -dj };
            if viol > COST_EPS {
                let score = viol * viol / w[j];
                if score > best_score {
                    best_score = score;
                    best = Some(j);
                }
            }
        }
        best
    }

    /// Entering column. Dantzig mode prices a cyclic candidate block: a
    /// scan starting at the persisted `price_pos` cursor that keeps the
    /// best reduced-cost violation and stops once a candidate exists and
    /// at least the block width has been examined (a full lap finding
    /// nothing proves optimality). Bland mode does the classic full
    /// lowest-index scan for anti-cycling. A nonbasic column at its
    /// lower bound wants `d < 0`; one at its upper bound wants `d > 0`.
    /// `scanned` accumulates examined columns for pricing telemetry.
    fn choose_entering(
        &mut self,
        d: &[f64],
        col_limit: usize,
        bland: bool,
        scanned: &mut u64,
    ) -> Option<usize> {
        if bland {
            for (j, &dj) in d.iter().enumerate().take(col_limit) {
                if self.basis_pos[j] != usize::MAX || self.ub[j] - self.lb[j] <= EPS {
                    continue; // basic or fixed
                }
                *scanned += 1;
                let score = if self.at_upper[j] { dj } else { -dj };
                if score > COST_EPS {
                    return Some(j);
                }
            }
            return None;
        }
        if col_limit == 0 {
            return None;
        }
        let block = PRICE_BLOCK.max(col_limit / 8);
        let mut j = if self.price_pos < col_limit {
            self.price_pos
        } else {
            0
        };
        let mut best = None;
        let mut best_score = COST_EPS;
        for step in 0..col_limit {
            *scanned += 1;
            if self.basis_pos[j] == usize::MAX && self.ub[j] - self.lb[j] > EPS {
                let score = if self.at_upper[j] { d[j] } else { -d[j] };
                if score > best_score {
                    best_score = score;
                    best = Some(j);
                }
            }
            j += 1;
            if j == col_limit {
                j = 0;
            }
            if best.is_some() && step + 1 >= block {
                break;
            }
        }
        self.price_pos = j;
        best
    }

    /// Bounded ratio test for `enter` moving in direction `dir` (its
    /// tableau column pre-extracted into `ecol`): the tightest of (a)
    /// each basic variable hitting a bound and (b) the entering variable
    /// reaching its opposite bound. Ties between rows break on the
    /// smallest basic column index.
    fn ratio_test(&self, enter: usize, dir: f64, ecol: &[f64]) -> Step {
        let span = self.ub[enter] - self.lb[enter]; // may be ∞
        let mut best_step = span;
        let mut best: Option<(usize, f64, bool)> = None; // (row, target, at_upper)
        for (i, &e) in ecol.iter().enumerate() {
            let rate = dir * e;
            let b = self.basis[i];
            let value = self.rhs[i];
            // Moving `enter` by +step changes this basic by −rate·step.
            let (limit, target, leave_at_upper) = if rate > EPS {
                if self.lb[b].is_finite() {
                    ((value - self.lb[b]) / rate, self.lb[b], false)
                } else {
                    continue;
                }
            } else if rate < -EPS {
                if self.ub[b].is_finite() {
                    ((self.ub[b] - value) / -rate, self.ub[b], true)
                } else {
                    continue;
                }
            } else {
                continue;
            };
            let limit = limit.max(0.0); // tolerate tiny bound violations
            let replaces = match best {
                _ if limit < best_step - EPS => true,
                Some((bi, _, _)) => limit < best_step + EPS && self.basis[i] < self.basis[bi],
                None => limit < best_step + EPS && limit < span,
            };
            if replaces {
                best_step = limit.min(best_step);
                best = Some((i, target, leave_at_upper));
            }
        }
        match best {
            Some((row, target, leave_at_upper)) => Step::Pivot {
                row,
                target,
                leave_at_upper,
            },
            None if span.is_finite() => Step::Flip,
            None => Step::Unbounded,
        }
    }

    /// Dual simplex: while some basic variable violates its bounds, pick
    /// the worst row, send its basic variable to the violated bound, and
    /// bring in the nonbasic column that keeps the reduced costs dual
    /// feasible (smallest `|d/α|`). Terminates when primal feasible;
    /// errs `Infeasible` when a violated row admits no entering column
    /// (a valid infeasibility certificate).
    fn dual_iterate(&mut self, d: &mut [f64], col_limit: usize) -> Result<(), SolveError> {
        let max_iter = 20_000 + 100 * (self.m + self.cols);
        let mut pivots = 0u64;
        let result = (|| {
            let mut ecol = vec![0.0; self.m];
            for _ in 0..max_iter {
                // Leaving row: the largest bound violation.
                let mut leave: Option<(usize, f64, bool)> = None; // (row, viol, below)
                for i in 0..self.m {
                    let b = self.basis[i];
                    let v = self.rhs[i];
                    let (viol, below) = if v < self.lb[b] - FEAS_EPS {
                        (self.lb[b] - v, true)
                    } else if v > self.ub[b] + FEAS_EPS {
                        (v - self.ub[b], false)
                    } else {
                        continue;
                    };
                    if leave.is_none_or(|(_, w, _)| viol > w) {
                        leave = Some((i, viol, below));
                    }
                }
                let Some((row, _, below)) = leave else {
                    return Ok(()); // primal feasible
                };
                let b = self.basis[row];
                let target = if below { self.lb[b] } else { self.ub[b] };

                // Entering column by the dual ratio test, scanning only
                // the leaving row's nonzeros (sorted, so stop at the
                // column limit). Eligibility: the column must be able to
                // move the leaving basic toward its bound given which
                // side it sits on.
                let mut enter: Option<(usize, f64)> = None;
                for (j, alpha) in self.rows[row].iter() {
                    if j >= col_limit {
                        break;
                    }
                    if self.basis_pos[j] != usize::MAX || self.ub[j] - self.lb[j] <= EPS {
                        continue;
                    }
                    if alpha.abs() <= EPS {
                        continue;
                    }
                    let eligible = if below {
                        // Basic must increase: at-lower needs α<0,
                        // at-upper needs α>0.
                        (!self.at_upper[j] && alpha < -EPS) || (self.at_upper[j] && alpha > EPS)
                    } else {
                        (!self.at_upper[j] && alpha > EPS) || (self.at_upper[j] && alpha < -EPS)
                    };
                    if !eligible {
                        continue;
                    }
                    let ratio = (d[j] / alpha).abs();
                    if enter.is_none_or(|(_, r)| ratio < r - EPS) {
                        enter = Some((j, ratio));
                    }
                }
                let Some((col, _)) = enter else {
                    return Err(SolveError::Infeasible);
                };
                self.column_into(col, &mut ecol);
                self.pivot_to(row, col, target, !below, d, &ecol);
                pivots += 1;
            }
            Err(SolveError::IterationLimit)
        })();
        vb_telemetry::counter!("solver.pivots").add(pivots);
        if pivots > 0 {
            vb_telemetry::counter!("solver.dual_pivots").add(pivots);
        }
        result
    }

    /// Pivot `col` into the basis at `row`, sending the leaving variable
    /// to `target` (its lower bound when `leave_at_upper` is false).
    /// `ecol` is the entering column pre-extracted by the caller. The
    /// rhs is updated from the entering variable's travel, then the
    /// sparse rows are eliminated Gauss–Jordan style — touching only the
    /// pivot row's nonzero columns — and the reduced-cost row follows.
    fn pivot_to(
        &mut self,
        row: usize,
        col: usize,
        target: f64,
        leave_at_upper: bool,
        d: &mut [f64],
        ecol: &[f64],
    ) {
        let alpha = ecol[row];
        debug_assert!(alpha.abs() > EPS);
        let delta = (self.rhs[row] - target) / alpha;
        let entering_value = self.nonbasic_value(col) + delta;

        // New basic values.
        for (i, (r, &e)) in self.rhs.iter_mut().zip(ecol).enumerate() {
            if i != row {
                *r -= e * delta;
            }
        }

        // Basis bookkeeping.
        let leave = self.basis[row];
        self.at_upper[leave] = leave_at_upper;
        self.basis_pos[leave] = usize::MAX;
        self.basis[row] = col;
        self.basis_pos[col] = row;

        // Eliminate the entering column (coefficients only; the rhs is
        // maintained explicitly above). The pivot row is scaled once and
        // each other row with a nonzero entering entry gets one sparse
        // axpy merge.
        let inv = 1.0 / alpha;
        let mut prow = std::mem::take(&mut self.rows[row]);
        prow.scale(inv);
        prow.set(col, 1.0); // exact, so eliminated entries cancel to 0
        let mut scratch = std::mem::take(&mut self.scratch);
        for (i, &factor) in ecol.iter().enumerate() {
            if i == row {
                continue;
            }
            if factor.abs() > EPS {
                axpy_into(&mut scratch, &self.rows[i], -factor, &prow);
                std::mem::swap(&mut self.rows[i], &mut scratch);
            }
        }
        self.scratch = scratch;
        let factor = d[col];
        if factor.abs() > EPS {
            for (j, p) in prow.iter() {
                d[j] -= factor * p;
            }
        }
        self.rows[row] = prow;
        self.rhs[row] = entering_value;

        #[cfg(feature = "check-invariants")]
        self.assert_invariants("pivot");
    }

    /// After phase 1: pivot basic artificials (at value 0) out where a
    /// real column has a nonzero entry (redundant rows keep theirs), then
    /// freeze every artificial at `[0, 0]` so phase 2 and later warm
    /// starts can never move one again.
    fn expel_and_freeze_artificials(&mut self, d: &mut [f64]) {
        let mut ecol = vec![0.0; self.m];
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                let col = self.rows[i].iter().find_map(|(j, v)| {
                    (j < self.art_start && self.basis_pos[j] == usize::MAX && v.abs() > 1e-7)
                        .then_some(j)
                });
                if let Some(col) = col {
                    self.column_into(col, &mut ecol);
                    self.pivot_to(i, col, 0.0, false, d, &ecol);
                }
            }
        }
        for j in self.art_start..self.cols {
            self.lb[j] = 0.0;
            self.ub[j] = 0.0;
        }
        #[cfg(feature = "check-invariants")]
        self.assert_invariants("artificial expulsion");
    }

    /// Algebraic self-checks behind the `check-invariants` feature,
    /// called after every pivot (and at build/expel boundaries):
    ///
    /// 1. every sparse row's column indices are strictly increasing,
    ///    in range, and carry finite values;
    /// 2. `basis`/`basis_pos` form a consistent bijection between the
    ///    `m` rows and exactly `m` basic columns, and each basic column
    ///    holds a unit entry in its own row (the Gauss–Jordan
    ///    elimination's fixed point);
    /// 3. every nonbasic column sits at one of its (finite) bounds.
    ///
    /// Plain `assert!`, not `debug_assert!`: the point of the feature is
    /// to keep the checks live in `--release` CI runs.
    /// Phase-2 (and phase-1) objective monotonicity: a primal step moves
    /// the entering variable by `travel`, changing the min-sense
    /// objective by `d_enter·travel`, which must never be positive
    /// beyond ratio-test tolerance. The dual-simplex repair passes are
    /// exempt — restoring primal feasibility legitimately pays
    /// objective.
    #[cfg(feature = "check-invariants")]
    fn assert_monotone_step(d_enter: f64, travel: f64, what: &str) {
        let change = d_enter * travel;
        assert!(
            change <= FEAS_EPS * (1.0 + travel.abs()),
            "objective increased by {change} on a primal {what} \
             (reduced cost {d_enter}, travel {travel})"
        );
    }

    #[cfg(feature = "check-invariants")]
    fn assert_invariants(&self, ctx: &str) {
        for (i, row) in self.rows.iter().enumerate() {
            assert_eq!(
                row.idx.len(),
                row.val.len(),
                "row {i}: idx/val length mismatch after {ctx}"
            );
            for w in row.idx.windows(2) {
                assert!(
                    w[0] < w[1],
                    "row {i}: unsorted/duplicate column indices after {ctx}"
                );
            }
            if let Some(&last) = row.idx.last() {
                assert!(
                    (last as usize) < self.cols,
                    "row {i}: column out of range after {ctx}"
                );
            }
            for (j, v) in row.iter() {
                assert!(
                    v.is_finite(),
                    "row {i}, column {j}: non-finite coefficient after {ctx}"
                );
            }
        }

        assert_eq!(self.basis.len(), self.m, "basis length drifted after {ctx}");
        let mut seen = vec![false; self.cols];
        for (i, &b) in self.basis.iter().enumerate() {
            assert!(
                b < self.cols,
                "row {i}: basic column {b} out of range after {ctx}"
            );
            assert!(!seen[b], "column {b} basic in two rows after {ctx}");
            seen[b] = true;
            assert_eq!(
                self.basis_pos[b], i,
                "basis_pos[{b}] disagrees with basis[{i}] after {ctx}"
            );
            let diag = self.rows[i].get(b);
            assert!(
                (diag - 1.0).abs() <= 1e-6,
                "row {i}: basic column {b} has non-unit entry {diag} after {ctx}"
            );
        }
        let n_basic = self.basis_pos.iter().filter(|&&p| p != usize::MAX).count();
        assert_eq!(n_basic, self.m, "basic column count != m after {ctx}");
        for (j, &p) in self.basis_pos.iter().enumerate() {
            if p != usize::MAX {
                assert_eq!(
                    self.basis[p], j,
                    "basis[{p}] disagrees with basis_pos[{j}] after {ctx}"
                );
            }
        }

        for j in 0..self.cols {
            if self.basis_pos[j] == usize::MAX {
                let v = self.nonbasic_value(j);
                assert!(
                    v.is_finite(),
                    "nonbasic column {j} rests on a non-finite bound after {ctx}"
                );
            }
        }
    }

    /// Read the structural solution and objective off the tableau.
    fn extract(&self, model: &Model) -> Solution {
        let mut x = vec![0.0; self.n];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = if self.basis_pos[j] != usize::MAX {
                self.rhs[self.basis_pos[j]]
            } else {
                self.nonbasic_value(j)
            };
        }
        let objective: f64 = model
            .objective
            .iter()
            .map(|&(v, coef)| coef * x[v.0])
            .sum::<f64>()
            + model.objective_const;
        Solution::new(objective, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    fn le(m: &mut Model, terms: &[(VarId, f64)], rhs: f64) {
        let e = m.expr(terms);
        m.add_le(e, rhs);
    }

    #[test]
    fn classic_two_variable_max() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 -> x=2,y=6, obj 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let y = m.var("y", 0.0, f64::INFINITY);
        le(&mut m, &[(x, 1.0)], 4.0);
        le(&mut m, &[(y, 2.0)], 12.0);
        le(&mut m, &[(x, 3.0), (y, 2.0)], 18.0);
        let e = m.expr(&[(x, 3.0), (y, 5.0)]);
        m.set_objective(e);
        let s = m.solve().unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_constraints_uses_phase1() {
        // min 2x + 3y s.t. x + y >= 10 -> all on the cheaper x, obj 20.
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let y = m.var("y", 0.0, f64::INFINITY);
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_ge(e, 10.0);
        let obj = m.expr(&[(x, 2.0), (y, 3.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert!((s.value(x) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x=2, y=1, obj 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let y = m.var("y", 0.0, f64::INFINITY);
        let e1 = m.expr(&[(x, 1.0), (y, 2.0)]);
        m.add_eq(e1, 4.0);
        let e2 = m.expr(&[(x, 1.0), (y, -1.0)]);
        m.add_eq(e2, 1.0);
        let obj = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, 5.0);
        let e1 = m.expr(&[(x, 1.0)]);
        m.add_ge(e1, 10.0);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn respects_variable_bounds_without_constraint_rows() {
        // max x + y with x in [1, 3], y in [0, 2]: no constraints at all,
        // so the tableau has zero rows and the solve is pure bound flips.
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 1.0, 3.0);
        let y = m.var("y", 0.0, 2.0);
        let obj = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds_work() {
        // min x with x in [-5, 5], x >= -3  ->  x = -3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", -5.0, 5.0);
        let e = m.expr(&[(x, 1.0)]);
        m.add_ge(e, -3.0);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.value(x) + 3.0).abs() < 1e-6, "x = {}", s.value(x));
    }

    #[test]
    fn objective_constant_is_carried_through() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 2.0, 10.0);
        let obj = LinExpr::term(x, 1.0).add_const(100.0);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 102.0).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_tighten_the_relaxation() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, 10.0);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        let s = m.solve_relaxation(&[(x, 0.0, 4.0)]).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
        // Contradictory override is infeasible.
        assert_eq!(
            m.solve_relaxation(&[(x, 6.0, 4.0)]).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn redundant_equalities_are_fine() {
        // x + y = 2 stated twice (redundant row must not break phase 1).
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, 2.0);
        let y = m.var("y", 0.0, 2.0);
        let e1 = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_eq(e1, 2.0);
        let e2 = m.expr(&[(x, 2.0), (y, 2.0)]);
        m.add_eq(e2, 4.0);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn beales_cycling_example_terminates() {
        // Beale's classic cycling LP: Dantzig's rule cycles forever on
        // this without an anti-cycling safeguard. Optimum is -0.05.
        let mut m = Model::new(Sense::Minimize);
        let x4 = m.var("x4", 0.0, f64::INFINITY);
        let x5 = m.var("x5", 0.0, f64::INFINITY);
        let x6 = m.var("x6", 0.0, f64::INFINITY);
        let x7 = m.var("x7", 0.0, f64::INFINITY);
        let e1 = m.expr(&[(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)]);
        m.add_le(e1, 0.0);
        let e2 = m.expr(&[(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)]);
        m.add_le(e2, 0.0);
        let e3 = m.expr(&[(x6, 1.0)]);
        m.add_le(e3, 1.0);
        let obj = m.expr(&[(x4, -0.75), (x5, 150.0), (x6, -0.02), (x7, 6.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective + 0.05).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn binaries_add_no_tableau_rows() {
        // 40 bounded variables, 1 constraint: the bounded-variable
        // tableau must have exactly one row (the old path had 41).
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<VarId> = (0..40).map(|i| m.var(&format!("x{i}"), 0.0, 1.0)).collect();
        let terms: Vec<(VarId, f64)> = xs.iter().map(|&v| (v, 1.0)).collect();
        let e = m.expr(&terms);
        m.add_le(e, 3.5);
        let obj = m.expr(&terms);
        m.set_objective(obj);
        let (sol, st) = solve_lp_state(&m, &[], None).unwrap();
        assert_eq!(st.m, 1, "bounds must not materialise as rows");
        assert!((sol.objective - 3.5).abs() < 1e-6);
    }

    #[test]
    fn sparse_rows_stay_sparse_across_pivots() {
        // A block-diagonal model: rows touch disjoint variable pairs, so
        // no amount of pivoting should densify the tableau.
        let mut m = Model::new(Sense::Maximize);
        let mut obj = LinExpr::zero();
        for k in 0..20 {
            let x = m.var(&format!("x{k}"), 0.0, f64::INFINITY);
            let y = m.var(&format!("y{k}"), 0.0, f64::INFINITY);
            let e = m.expr(&[(x, 1.0), (y, 2.0)]);
            m.add_le(e, 4.0);
            obj = obj.add_term(x, 1.0).add_term(y, 1.0 + (k % 3) as f64);
        }
        m.set_objective(obj);
        let (sol, st) = solve_lp_state(&m, &[], None).unwrap();
        assert!(sol.objective.is_finite());
        let max_nnz = st.rows.iter().map(|r| r.nnz()).max().unwrap();
        assert!(
            max_nnz <= 3,
            "block-diagonal rows densified: max nnz {max_nnz}"
        );
    }

    #[test]
    fn warm_start_reoptimizes_after_bound_change() {
        // max x + y s.t. x + y <= 3, x,y in [0, 2]: optimum 3. Then
        // branch-style: force x <= 1 -> optimum 3 still (y=2, x=1);
        // force x >= 2 -> x=2, y=1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, 2.0);
        let y = m.var("y", 0.0, 2.0);
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_le(e, 3.0);
        let obj = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.set_objective(obj);
        let (root, st) = solve_lp_state(&m, &[], None).unwrap();
        assert!((root.objective - 3.0).abs() < 1e-6);

        let (a, _) = solve_lp_state(&m, &[(x, 0.0, 1.0)], Some(&st)).unwrap();
        assert!((a.objective - 3.0).abs() < 1e-6, "obj {}", a.objective);
        assert!(a.value(x) <= 1.0 + 1e-6);

        let (b, _) = solve_lp_state(&m, &[(x, 2.0, 2.0)], Some(&st)).unwrap();
        assert!((b.objective - 3.0).abs() < 1e-6);
        assert!((b.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_detects_infeasible_children() {
        // x + y >= 4 with x,y in [0,2]: feasible only at x=y=2. Fixing
        // x to 0 from the parent optimum must come back Infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, 2.0);
        let y = m.var("y", 0.0, 2.0);
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_ge(e, 4.0);
        let obj = m.expr(&[(x, 1.0), (y, 2.0)]);
        m.set_objective(obj);
        let (root, st) = solve_lp_state(&m, &[], None).unwrap();
        assert!((root.objective - 6.0).abs() < 1e-6);
        assert_eq!(
            solve_lp_state(&m, &[(x, 0.0, 0.0)], Some(&st)).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn warm_start_chain_matches_cold_solves() {
        // A chain of progressively tighter bounds, warm vs cold.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..6).map(|i| m.var(&format!("v{i}"), 0.0, 4.0)).collect();
        for k in 0..3 {
            let terms: Vec<(VarId, f64)> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i + k) % 3) as f64))
                .collect();
            let e = m.expr(&terms);
            m.add_le(e, 10.0 + k as f64);
        }
        let terms: Vec<(VarId, f64)> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + (i % 4) as f64))
            .collect();
        let e = m.expr(&terms);
        m.set_objective(e);

        let mut overrides: Vec<(VarId, f64, f64)> = Vec::new();
        let (_, mut state) = solve_lp_state(&m, &[], None).unwrap();
        for (step, &v) in vars.iter().enumerate() {
            overrides.push((v, 0.0, 3.0 - (step % 3) as f64));
            let warm = solve_lp_state(&m, &overrides, Some(&state)).unwrap();
            let cold = solve_lp_state(&m, &overrides, None).unwrap();
            assert!(
                (warm.0.objective - cold.0.objective).abs() < 1e-6,
                "step {step}: warm {} vs cold {}",
                warm.0.objective,
                cold.0.objective
            );
            state = warm.1;
        }
    }

    #[test]
    fn degenerate_bound_heavy_instance() {
        // Many variables share one tight equality; lots of degenerate
        // pivots, exercising the tie-breaks.
        let mut m = Model::new(Sense::Minimize);
        let xs: Vec<VarId> = (0..12).map(|i| m.var(&format!("x{i}"), 0.0, 1.0)).collect();
        let terms: Vec<(VarId, f64)> = xs.iter().map(|&v| (v, 1.0)).collect();
        let e = m.expr(&terms);
        m.add_eq(e, 0.0); // forces everything to 0
        let obj_terms: Vec<(VarId, f64)> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 - (i as f64) * 0.1))
            .collect();
        let e = m.expr(&obj_terms);
        m.set_objective(e);
        let s = m.solve().unwrap();
        assert!(s.objective.abs() < 1e-6);
    }

    /// The classic product-mix LP with a parameterised RHS — the same
    /// structure every "epoch", only `b` moves.
    fn epoch_model(b: [f64; 3]) -> (Model, [VarId; 2]) {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, f64::INFINITY);
        let y = m.var("y", 0.0, f64::INFINITY);
        let e = m.expr(&[(x, 1.0)]);
        m.add_le(e, b[0]);
        let e = m.expr(&[(y, 2.0)]);
        m.add_le(e, b[1]);
        let e = m.expr(&[(x, 3.0), (y, 2.0)]);
        m.add_le(e, b[2]);
        let obj = m.expr(&[(x, 3.0), (y, 5.0)]);
        m.set_objective(obj);
        (m, [x, y])
    }

    #[test]
    fn epoch_warm_start_matches_cold_on_rhs_changes() {
        let (base, _) = epoch_model([4.0, 12.0, 18.0]);
        let (_, mut st) = solve_lp_state(&base, &[], None).unwrap();
        for b in [
            [5.0, 10.0, 20.0],
            [3.0, 14.0, 15.0],
            [6.0, 8.0, 18.0],
            [4.0, 12.0, 18.0],
        ] {
            let (next, vars) = epoch_model(b);
            let (warm, st2) = solve_lp_epoch_warm(&next, &st).unwrap();
            let cold = solve_lp(&next, &[]).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "b {b:?}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            for v in vars {
                assert!(
                    (warm.value(v) - cold.value(v)).abs() < 1e-6,
                    "b {b:?}: vertex diverged on {v:?}"
                );
            }
            st = st2;
        }
    }

    #[test]
    fn epoch_warm_start_handles_ge_rows_and_objective_changes() {
        // min c·(x, y) s.t. x + y >= b — phase 1 ran on the base solve
        // (sign-flipped artificial row), and later epochs move both the
        // RHS and the objective.
        let build = |b: f64, cx: f64, cy: f64| {
            let mut m = Model::new(Sense::Minimize);
            let x = m.var("x", 0.0, f64::INFINITY);
            let y = m.var("y", 0.0, f64::INFINITY);
            let e = m.expr(&[(x, 1.0), (y, 1.0)]);
            m.add_ge(e, b);
            let obj = m.expr(&[(x, cx), (y, cy)]);
            m.set_objective(obj);
            m
        };
        let (_, mut st) = solve_lp_state(&build(10.0, 2.0, 3.0), &[], None).unwrap();
        for (b, cx, cy) in [(13.0, 2.0, 3.0), (7.0, 4.0, 1.0), (9.0, 1.0, 1.0)] {
            let next = build(b, cx, cy);
            let (warm, st2) = solve_lp_epoch_warm(&next, &st).unwrap();
            let cold = solve_lp(&next, &[]).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "(b={b}, c=({cx},{cy})): warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            st = st2;
        }
    }

    #[test]
    fn epoch_warm_start_rejects_dimension_mismatch() {
        let (base, _) = epoch_model([4.0, 12.0, 18.0]);
        let (_, st) = solve_lp_state(&base, &[], None).unwrap();
        let mut other = Model::new(Sense::Maximize);
        let x = other.var("x", 0.0, 10.0);
        let e = other.expr(&[(x, 1.0)]);
        other.add_le(e, 5.0);
        let obj = other.expr(&[(x, 1.0)]);
        other.set_objective(obj);
        assert!(matches!(
            solve_lp_epoch_warm(&other, &st).unwrap_err(),
            SolveError::BadModel(_)
        ));
    }
}

#[cfg(all(test, feature = "check-invariants"))]
mod invariant_tests {
    use super::*;
    use crate::model::{Model, Sense};

    // With the feature live, every pivot of these solves runs the full
    // invariant suite; the tests just have to drive enough pivots
    // through all three entry points (cold, bound warm, epoch warm).

    fn production_model(rhs: [f64; 3]) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, 40.0);
        let y = m.var("y", 0.0, 30.0);
        let z = m.var("z", 0.0, 20.0);
        let e = m.expr(&[(x, 1.0), (y, 2.0), (z, 1.0)]);
        m.add_le(e, rhs[0]);
        let e = m.expr(&[(x, 3.0), (y, 1.0)]);
        m.add_le(e, rhs[1]);
        let e = m.expr(&[(x, 1.0), (y, 1.0), (z, 3.0)]);
        m.add_ge(e, rhs[2]);
        let obj = m.expr(&[(x, 3.0), (y, 5.0), (z, 4.0)]);
        m.set_objective(obj);
        m
    }

    #[test]
    fn invariants_hold_across_cold_and_warm_solves() {
        let model = production_model([40.0, 60.0, 10.0]);
        let (sol, st) = solve_lp_state(&model, &[], None).expect("cold solve");
        assert!(sol.objective.is_finite());
        st.assert_invariants("test readback");

        // Branch-and-bound style bound tightening over the warm basis.
        let x = VarId(0);
        let (_, st2) = solve_lp_state(&model, &[(x, 0.0, 5.0)], Some(&st)).expect("warm solve");
        st2.assert_invariants("warm readback");
    }

    #[test]
    fn invariants_hold_across_epoch_resolves() {
        let mut prev: Option<SimplexState> = None;
        for step in 0..6 {
            let bump = step as f64;
            let model = production_model([40.0 + bump, 60.0 - 2.0 * bump, 10.0 + bump]);
            let st = match prev.take() {
                Some(p) => match solve_lp_epoch_warm(&model, &p) {
                    Ok((_, st)) => st,
                    Err(_) => solve_lp_state(&model, &[], None).expect("fallback").1,
                },
                None => solve_lp_state(&model, &[], None).expect("cold").1,
            };
            st.assert_invariants("epoch readback");
            prev = Some(st);
        }
    }
}
