//! Presolve: shrink a [`Model`] before handing it to the simplex / B&B
//! kernel, with a deterministic postsolve that reconstructs full-space
//! solutions.
//!
//! Three classic reductions run to a fixed point:
//!
//! * **Fixed-variable elimination** — a variable whose bound interval
//!   has collapsed (`ub − lb ≤ ε`) is substituted into every row and
//!   the objective and removed from the model.
//! * **Singleton-row substitution** — a row with exactly one live
//!   variable `a·x ⋈ b` is exactly a bound on `x`; the bound is folded
//!   into the variable and the row dropped.
//! * **Bound tightening** — feasibility-based: for each row, the
//!   minimum activity of the *other* terms implies a bound on each
//!   variable, which is adopted when it strictly tightens the current
//!   one. Integer bounds are rounded to `⌈lb⌉ / ⌊ub⌋` in MIP mode.
//!
//! All three only remove points that no feasible solution can use, so
//! the reduced model has exactly the same optimal objective — and, on
//! instances with a unique optimum, the same optimal assignment — as
//! the original. Every reduction is a pure function of the input model
//! (no randomness, no iteration-order dependence on hash maps), so the
//! reduced model and the postsolved solution are deterministic: the
//! epoch kernel can fingerprint the *reduced* model with
//! [`crate::skeleton::ModelSkeleton`] and keep its cross-epoch warm
//! starts.
//!
//! Infeasibility discovered here (crossed bounds, an inconsistent
//! constant row) is a valid certificate and surfaces as
//! [`SolveError::Infeasible`].

use crate::model::{Cmp, Model, Solution, SolveError, VarId};

/// A bound must improve by more than this to count as tightened
/// (prevents float jitter from looping the fixed-point passes).
const TIGHTEN_EPS: f64 = 1e-7;
/// Interval width at or below which a variable counts as fixed.
const FIX_EPS: f64 = 1e-9;
/// Feasibility slack for constant-row consistency checks (matches the
/// simplex engine's primal tolerance).
const FEAS_EPS: f64 = 1e-6;
/// Fixed-point pass cap; reductions converge in 2–3 passes on the
/// workspace's placement models.
const MAX_PASSES: usize = 8;

/// Reduction statistics (also mirrored into `solver.presolve_*`
/// telemetry counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Variables eliminated by substitution.
    pub vars_fixed: usize,
    /// Rows dropped (singletons folded into bounds, redundant constants).
    pub rows_removed: usize,
    /// Variable bounds strictly tightened.
    pub bounds_tightened: usize,
}

/// A presolved model: the reduced [`Model`] plus the mapping needed to
/// reconstruct full-space solutions.
#[derive(Debug, Clone)]
pub struct Presolved {
    reduced: Model,
    /// Reduced variable index → original variable index.
    keep: Vec<usize>,
    /// `(original index, value)` per eliminated variable.
    fixed: Vec<(usize, f64)>,
    orig_vars: usize,
    /// What the reductions accomplished.
    pub stats: PresolveStats,
}

/// One live working row during the reduction passes.
struct WorkRow {
    coefs: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
    alive: bool,
}

/// Presolve for a MIP solve: integrality is respected, so integer
/// bounds are rounded inward — valid for the integer problem, *not*
/// for its LP relaxation.
pub fn presolve_mip(model: &Model) -> Result<Presolved, SolveError> {
    run(model, true)
}

/// Presolve for a pure LP (or an LP relaxation): integral rounding is
/// skipped, so the reduced model has exactly the original's continuous
/// feasible set.
pub fn presolve_lp(model: &Model) -> Result<Presolved, SolveError> {
    run(model, false)
}

fn run(model: &Model, integrality: bool) -> Result<Presolved, SolveError> {
    let n = model.vars.len();
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    let int: Vec<bool> = model
        .vars
        .iter()
        .map(|v| integrality && v.integer)
        .collect();
    let mut rows: Vec<WorkRow> = model
        .constraints
        .iter()
        .map(|c| WorkRow {
            coefs: c.coefs.iter().map(|&(v, a)| (v.0, a)).collect(),
            cmp: c.cmp,
            rhs: c.rhs,
            alive: true,
        })
        .collect();
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    let mut stats = PresolveStats::default();

    // Integer bounds start on the grid.
    for j in 0..n {
        if int[j] {
            round_integer(&mut lb[j], &mut ub[j]);
        }
        if lb[j] > ub[j] + FIX_EPS {
            return Err(SolveError::Infeasible);
        }
    }

    for _pass in 0..MAX_PASSES {
        let mut changed = false;

        // Fix collapsed intervals and substitute them out of every row.
        let newly: Vec<usize> = (0..n)
            .filter(|&j| fixed[j].is_none() && ub[j] - lb[j] <= FIX_EPS)
            .collect();
        if !newly.is_empty() {
            for &j in &newly {
                fixed[j] = Some(lb[j]);
                stats.vars_fixed += 1;
            }
            for row in rows.iter_mut().filter(|r| r.alive) {
                let mut shift = 0.0;
                row.coefs.retain(|&(j, a)| {
                    if let Some(v) = fixed[j] {
                        shift += a * v;
                        false
                    } else {
                        true
                    }
                });
                row.rhs -= shift;
            }
            changed = true;
        }

        // Constant rows are consistency checks; singleton rows are
        // bounds in disguise. Both leave the model.
        for row in rows.iter_mut().filter(|r| r.alive) {
            match row.coefs.len() {
                0 => {
                    let ok = match row.cmp {
                        Cmp::Le => row.rhs >= -FEAS_EPS,
                        Cmp::Ge => row.rhs <= FEAS_EPS,
                        Cmp::Eq => row.rhs.abs() <= FEAS_EPS,
                    };
                    if !ok {
                        return Err(SolveError::Infeasible);
                    }
                    row.alive = false;
                    stats.rows_removed += 1;
                    changed = true;
                }
                1 => {
                    let (j, a) = row.coefs[0];
                    let bound = row.rhs / a;
                    // `a·x ≤ b` caps x from above when a > 0, below
                    // when a < 0; `≥` mirrors; `=` pins both sides.
                    let (cap_ub, cap_lb) = match (row.cmp, a > 0.0) {
                        (Cmp::Le, true) | (Cmp::Ge, false) => (true, false),
                        (Cmp::Le, false) | (Cmp::Ge, true) => (false, true),
                        (Cmp::Eq, _) => (true, true),
                    };
                    if cap_ub {
                        tighten_ub(j, bound, &mut ub, &int, &mut stats);
                    }
                    if cap_lb {
                        tighten_lb(j, bound, &mut lb, &int, &mut stats);
                    }
                    if lb[j] > ub[j] + FIX_EPS {
                        return Err(SolveError::Infeasible);
                    }
                    row.alive = false;
                    stats.rows_removed += 1;
                    changed = true;
                }
                _ => {}
            }
        }

        // Feasibility-based bound tightening: in `Σ aⱼxⱼ ≤ b`, variable
        // j can use at most `b` minus what the other terms must consume
        // at minimum. `≥` rows tighten through their negation; `=` rows
        // tighten from both sides.
        let before = stats.bounds_tightened;
        for row in &rows {
            if !row.alive || row.coefs.len() < 2 {
                continue;
            }
            if matches!(row.cmp, Cmp::Le | Cmp::Eq) {
                tighten_from_le(&row.coefs, row.rhs, 1.0, &mut lb, &mut ub, &int, &mut stats)?;
            }
            if matches!(row.cmp, Cmp::Ge | Cmp::Eq) {
                tighten_from_le(
                    &row.coefs, -row.rhs, -1.0, &mut lb, &mut ub, &int, &mut stats,
                )?;
            }
        }
        changed |= stats.bounds_tightened > before;

        if !changed {
            break;
        }
    }

    vb_telemetry::counter!("solver.presolve_runs").inc();
    vb_telemetry::counter!("solver.presolve_vars_fixed").add(stats.vars_fixed as u64);
    vb_telemetry::counter!("solver.presolve_rows_removed").add(stats.rows_removed as u64);
    vb_telemetry::counter!("solver.presolve_bounds_tightened").add(stats.bounds_tightened as u64);

    // Assemble the reduced model. Kept variables and surviving rows
    // stay in original order, so the reduction is deterministic and the
    // reduced skeleton is stable across structurally identical epochs.
    let mut reduced = Model::new(model.sense);
    let mut old2new = vec![usize::MAX; n];
    let mut keep = Vec::new();
    for j in 0..n {
        if fixed[j].is_none() {
            old2new[j] = keep.len();
            keep.push(j);
            let v = &model.vars[j];
            if v.integer {
                reduced.int_var(&v.name, lb[j], ub[j]);
            } else {
                reduced.var(&v.name, lb[j], ub[j]);
            }
        }
    }
    for row in rows.iter().filter(|r| r.alive) {
        let terms: Vec<(VarId, f64)> = row
            .coefs
            .iter()
            .map(|&(j, a)| (VarId(old2new[j]), a))
            .collect();
        let e = reduced.expr(&terms);
        reduced.add_constraint(e, row.cmp, row.rhs);
    }
    let mut obj_const = model.objective_const;
    let mut obj_terms = Vec::new();
    for &(v, c) in &model.objective {
        match fixed[v.0] {
            Some(val) => obj_const += c * val,
            None => obj_terms.push((VarId(old2new[v.0]), c)),
        }
    }
    let e = reduced.expr(&obj_terms).add_const(obj_const);
    reduced.set_objective(e);

    let fixed_pairs: Vec<(usize, f64)> = fixed
        .iter()
        .enumerate()
        .filter_map(|(j, v)| v.map(|v| (j, v)))
        .collect();
    Ok(Presolved {
        reduced,
        keep,
        fixed: fixed_pairs,
        orig_vars: n,
        stats,
    })
}

/// Round an integer variable's interval onto the grid (with a small
/// slack so `0.9999999` still rounds to `1`, not `2`/`0`).
fn round_integer(lb: &mut f64, ub: &mut f64) {
    if lb.is_finite() {
        *lb = (*lb - FIX_EPS).ceil();
    }
    if ub.is_finite() {
        *ub = (*ub + FIX_EPS).floor();
    }
}

fn tighten_ub(j: usize, bound: f64, ub: &mut [f64], int: &[bool], stats: &mut PresolveStats) {
    let cand = if int[j] {
        (bound + FIX_EPS).floor()
    } else {
        bound
    };
    if cand < ub[j] - TIGHTEN_EPS {
        ub[j] = cand;
        stats.bounds_tightened += 1;
    }
}

fn tighten_lb(j: usize, bound: f64, lb: &mut [f64], int: &[bool], stats: &mut PresolveStats) {
    let cand = if int[j] {
        (bound - FIX_EPS).ceil()
    } else {
        bound
    };
    if cand > lb[j] + TIGHTEN_EPS {
        lb[j] = cand;
        stats.bounds_tightened += 1;
    }
}

/// Tighten every variable of one row read as `sign·(Σ aⱼxⱼ) ≤ sign·b`
/// (pass `sign = −1` for the `≥` direction). Skips the row when the
/// minimum activity is not finite (an unbounded term absorbs any slack).
#[allow(clippy::too_many_arguments)]
fn tighten_from_le(
    coefs: &[(usize, f64)],
    rhs: f64,
    sign: f64,
    lb: &mut [f64],
    ub: &mut [f64],
    int: &[bool],
    stats: &mut PresolveStats,
) -> Result<(), SolveError> {
    // Minimum activity of the (sign-adjusted) row.
    let mut minact = 0.0f64;
    let mut contrib = Vec::with_capacity(coefs.len());
    for &(j, a) in coefs {
        let a = sign * a;
        let c = if a > 0.0 { a * lb[j] } else { a * ub[j] };
        contrib.push(c);
        minact += c;
    }
    if !minact.is_finite() {
        return Ok(());
    }
    for (k, &(j, a)) in coefs.iter().enumerate() {
        let a = sign * a;
        let others = minact - contrib[k];
        let bound = (rhs - others) / a;
        if !bound.is_finite() {
            continue;
        }
        if a > 0.0 {
            tighten_ub(j, bound, ub, int, stats);
        } else {
            tighten_lb(j, bound, lb, int, stats);
        }
        if lb[j] > ub[j] + FIX_EPS {
            return Err(SolveError::Infeasible);
        }
    }
    Ok(())
}

impl Presolved {
    /// The reduced model (solve this, then [`Presolved::postsolve`]).
    pub fn reduced(&self) -> &Model {
        &self.reduced
    }

    /// Variables eliminated by the reduction.
    pub fn num_fixed(&self) -> usize {
        self.fixed.len()
    }

    /// Lift a reduced-space solution back to the original variable
    /// space. The objective is recomputed from the *original* model's
    /// cost vector in its own term order, so a presolved solve reports
    /// bit-identical objectives to a direct solve of the same
    /// assignment.
    pub fn postsolve(&self, model: &Model, sol: &Solution) -> Solution {
        let mut values = vec![0.0; self.orig_vars];
        for (r, &j) in self.keep.iter().enumerate() {
            values[j] = sol.value(VarId(r));
        }
        for &(j, v) in &self.fixed {
            values[j] = v;
        }
        let objective: f64 = model
            .objective
            .iter()
            .map(|&(v, c)| c * values[v.0])
            .sum::<f64>()
            + model.objective_const;
        Solution::new(objective, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::simplex;

    /// min 2x + 3y + z  s.t.  z = 4 (singleton eq), x + y ≥ 3,
    /// y ≤ 2 (singleton le), x,y ∈ [0, 10].
    fn small() -> Model {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, 10.0);
        let y = m.var("y", 0.0, 10.0);
        let z = m.var("z", 0.0, 10.0);
        let e = m.expr(&[(z, 1.0)]);
        m.add_eq(e, 4.0);
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_ge(e, 3.0);
        let e = m.expr(&[(y, 1.0)]);
        m.add_le(e, 2.0);
        let obj = m.expr(&[(x, 2.0), (y, 3.0), (z, 1.0)]);
        m.set_objective(obj);
        m
    }

    #[test]
    fn singleton_rows_become_bounds_and_fix_vars() {
        let m = small();
        let pre = presolve_lp(&m).unwrap();
        // z is fixed at 4 (singleton equality), both singleton rows die.
        assert_eq!(pre.num_fixed(), 1);
        assert_eq!(pre.stats.rows_removed, 2);
        assert_eq!(pre.reduced().num_vars(), 2);
        assert_eq!(pre.reduced().num_constraints(), 1);

        let red_sol = simplex::solve_lp(pre.reduced(), &[]).unwrap();
        let full = pre.postsolve(&m, &red_sol);
        let direct = simplex::solve_lp(&m, &[]).unwrap();
        // Optimum: x = 3, y = 0, z = 4 → 2·3 + 1·4 = 10.
        assert!((full.objective - direct.objective).abs() < 1e-9);
        assert!((full.objective - 10.0).abs() < 1e-6);
        assert!((full.values()[2] - 4.0).abs() < 1e-12, "z reconstructed");
    }

    #[test]
    fn objective_constant_of_fixed_vars_is_folded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.var("x", 0.0, 5.0);
        let y = m.var("y", 3.0, 3.0); // fixed by its own bounds
        let e = m.expr(&[(x, 1.0)]);
        m.add_le(e, 2.0);
        let obj = m.expr(&[(x, 1.0), (y, 10.0)]);
        m.set_objective(obj);
        let pre = presolve_mip(&m).unwrap();
        assert_eq!(pre.num_fixed(), 1);
        let red_sol = simplex::solve_lp(pre.reduced(), &[]).unwrap();
        // Reduced objective carries the 30 from y.
        assert!((red_sol.objective - 32.0).abs() < 1e-9);
        let full = pre.postsolve(&m, &red_sol);
        assert!((full.objective - 32.0).abs() < 1e-9);
        assert!((full.values()[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn integer_bounds_round_inward_in_mip_mode() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.3, 2.7);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        let pre = presolve_mip(&m).unwrap();
        let v = &pre.reduced().vars[0];
        assert_eq!((v.lb, v.ub), (1.0, 2.0));
        // LP mode leaves the relaxation's box alone.
        let pre = presolve_lp(&m).unwrap();
        let v = &pre.reduced().vars[0];
        assert_eq!((v.lb, v.ub), (0.3, 2.7));
    }

    #[test]
    fn crossed_integer_interval_is_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let e = m.expr(&[(x, 2.0)]);
        m.add_le(e, 1.0); // x ≤ 0.5 → integer x ≤ 0
        let e = m.expr(&[(x, 2.0)]);
        m.add_ge(e, 1.2); // x ≥ 0.6 → integer x ≥ 1
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        assert_eq!(presolve_mip(&m).unwrap_err(), SolveError::Infeasible);
        // The relaxation is feasible (x ∈ [0.6, 0.5]... exactly not —
        // but LP-mode presolve must agree with the simplex on it).
        let lp = presolve_lp(&m);
        let direct = simplex::solve_lp(&m, &[]);
        assert_eq!(lp.is_err(), direct.is_err());
    }

    #[test]
    fn inconsistent_constant_row_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 1.0, 1.0);
        let y = m.var("y", 2.0, 2.0);
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_ge(e, 4.0); // 3 ≥ 4 after both substitutions
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        assert_eq!(presolve_lp(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn bound_tightening_zeroes_choked_placements() {
        // Placement shape: app needs 8 cores, site 1's capacity row only
        // admits 5 — tightening must pin the binary to 0 and then the
        // assignment row forces the app home.
        let mut m = Model::new(Sense::Minimize);
        let x0 = m.bin_var("a0s0");
        let x1 = m.bin_var("a0s1");
        let e = m.expr(&[(x0, 1.0), (x1, 1.0)]);
        m.add_eq(e, 1.0);
        let e = m.expr(&[(x1, 8.0)]);
        m.add_le(e, 5.0);
        let obj = m.expr(&[(x0, 1.0), (x1, 0.5)]);
        m.set_objective(obj);
        let pre = presolve_mip(&m).unwrap();
        // x1 fixed to 0 (8 ≤ 5 impossible), then x0 fixed to 1 by the
        // now-singleton assignment row: the whole model dissolves.
        assert_eq!(pre.num_fixed(), 2);
        assert_eq!(pre.reduced().num_vars(), 0);
        let red_sol = simplex::solve_lp(pre.reduced(), &[]).unwrap();
        let full = pre.postsolve(&m, &red_sol);
        assert!((full.objective - 1.0).abs() < 1e-9);
        assert_eq!((full.values()[0], full.values()[1]), (1.0, 0.0));
    }

    #[test]
    fn reduction_is_deterministic() {
        let m = small();
        let a = presolve_lp(&m).unwrap();
        let b = presolve_lp(&m).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.keep, b.keep);
        assert_eq!(a.fixed, b.fixed);
        assert!(crate::skeleton::ModelSkeleton::of(a.reduced()).matches(b.reduced()));
    }
}

#[cfg(all(test, feature = "check-invariants"))]
mod invariant_tests {
    //! With `check-invariants` live, these solves run the pivot-level
    //! algebraic self-checks against *presolved* models — the reduced
    //! tableaux the production kernel actually iterates on.

    use super::*;
    use crate::model::Sense;
    use crate::simplex;

    fn pinned_placement(caps: [f64; 2]) -> Model {
        let mut m = Model::new(Sense::Minimize);
        let sizes = [2.0, 3.0, 1.0, 4.0];
        let costs = [[1.0, 6.0], [5.0, 2.0], [3.0, 4.0], [7.0, 1.5]];
        let mut x = Vec::new();
        for a in 0..4 {
            let row: Vec<VarId> = (0..2).map(|s| m.bin_var(&format!("a{a}s{s}"))).collect();
            let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
            let e = m.expr(&terms);
            m.add_eq(e, 1.0);
            x.push(row);
        }
        // App 0 pinned home by a singleton equality: presolve real work.
        let e = m.expr(&[(x[0][0], 1.0)]);
        m.add_eq(e, 1.0);
        for s in 0..2 {
            let terms: Vec<(VarId, f64)> =
                x.iter().zip(&sizes).map(|(row, &c)| (row[s], c)).collect();
            let e = m.expr(&terms);
            m.add_le(e, caps[s]);
        }
        let mut obj = Vec::new();
        for (a, row) in x.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                obj.push((v, costs[a][s]));
            }
        }
        let e = m.expr(&obj);
        m.set_objective(e);
        m
    }

    #[test]
    fn invariants_hold_on_presolved_epoch_resolves() {
        let mut prev: Option<simplex::SimplexState> = None;
        for (k, caps) in [[6.0, 6.0], [5.0, 8.0], [8.0, 4.0], [7.0, 7.0]]
            .into_iter()
            .enumerate()
        {
            let m = pinned_placement(caps);
            let pre = presolve_mip(&m).expect("feasible epochs");
            assert!(pre.num_fixed() >= 1, "epoch {k}: the pin must fold");
            let st = match prev.take() {
                Some(p) => match simplex::solve_lp_epoch_warm(pre.reduced(), &p) {
                    Ok((_, st)) => st,
                    Err(_) => {
                        simplex::solve_lp_state(pre.reduced(), &[], None)
                            .expect("cold fallback")
                            .1
                    }
                },
                None => {
                    simplex::solve_lp_state(pre.reduced(), &[], None)
                        .expect("cold root")
                        .1
                }
            };
            prev = Some(st);
        }
    }
}
