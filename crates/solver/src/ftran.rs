//! FTRAN/BTRAN through an LU factorization plus a product-form eta file.
//!
//! After a basis change (column `q` replaces the basic variable of slot
//! `r`), the new basis is `B' = B·E` where `E` is the identity with its
//! `r`-th column replaced by the FTRAN'd entering column `d̂ = B⁻¹a_q`.
//! Rather than refactorize per pivot, [`BasisFactor`] appends `E` to an
//! **eta file** and composes it into every solve:
//!
//! * FTRAN `B'⁻¹b`: solve through the LU factors, then apply each eta
//!   in order — `x_r ← x_r / d̂_r`, `x_i ← x_i − d̂_i·x_r`.
//! * BTRAN `B'⁻ᵀc`: apply the transposed etas in *reverse* order —
//!   `y_r ← (y_r − Σ_{i≠r} d̂_i·y_i) / d̂_r` — then solve through the
//!   LU factors.
//!
//! The file is truncated by [`crate::revised`]'s refactorization policy
//! (update count or a stability trigger); each eta costs `O(nnz(d̂))`
//! per solve, so a bounded file keeps solves near the factors' cost.

use crate::factor::LuFactors;
use crate::simplex::DROP_EPS;

/// One product-form update: slot `r` was repivoted on column `d̂` with
/// pivot `d̂_r`; `(rows, vals)` hold the off-pivot nonzeros of `d̂`.
#[derive(Debug, Clone)]
struct Eta {
    r: u32,
    pivot: f64,
    rows: Vec<u32>,
    vals: Vec<f64>,
}

/// An LU factorization composed with the eta file accumulated since the
/// last refactorization. Owns the scratch the triangular solves need,
/// so solves are allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct BasisFactor {
    lu: LuFactors,
    etas: Vec<Eta>,
    work: Vec<f64>,
}

impl BasisFactor {
    /// Wrap a fresh factorization (empty eta file).
    pub(crate) fn new(lu: LuFactors, m: usize) -> BasisFactor {
        BasisFactor {
            lu,
            etas: Vec::new(),
            work: vec![0.0; m],
        }
    }

    /// Updates applied since the last refactorization.
    pub(crate) fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Record the pivot `(slot r, entering column d̂ = B⁻¹a_q)`.
    pub(crate) fn push_eta(&mut self, r: usize, ecol: &[f64]) {
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        for (i, &v) in ecol.iter().enumerate() {
            if i != r && v.abs() > DROP_EPS {
                rows.push(i as u32);
                vals.push(v);
            }
        }
        self.etas.push(Eta {
            r: r as u32,
            pivot: ecol[r],
            rows,
            vals,
        });
    }

    /// Solve `B·x = b` in place (`x`: constraint-row indexed in, basis
    /// slot indexed out). Returns the result's nonzero count.
    pub(crate) fn ftran(&mut self, x: &mut [f64]) -> u64 {
        self.lu.ftran(x, &mut self.work);
        for eta in &self.etas {
            let r = eta.r as usize;
            let t = x[r] / eta.pivot;
            x[r] = t;
            if t != 0.0 {
                for (&i, &v) in eta.rows.iter().zip(&eta.vals) {
                    x[i as usize] -= v * t;
                }
            }
        }
        nnz_of(x)
    }

    /// Solve `Bᵀ·y = c` in place (`x`: basis slot indexed in,
    /// constraint-row indexed out). Returns the result's nonzero count.
    pub(crate) fn btran(&mut self, x: &mut [f64]) -> u64 {
        for eta in self.etas.iter().rev() {
            let r = eta.r as usize;
            let mut t = x[r];
            for (&i, &v) in eta.rows.iter().zip(&eta.vals) {
                t -= v * x[i as usize];
            }
            x[r] = t / eta.pivot;
        }
        self.lu.btran(x, &mut self.work);
        nnz_of(x)
    }
}

fn nnz_of(x: &[f64]) -> u64 {
    x.iter().filter(|v| v.abs() > DROP_EPS).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// B = I (2×2), then pivot slot 0 on a column d̂ = (2, 1)ᵀ: the new
    /// basis is B' = [[2, 0], [1, 1]].
    fn updated_basis() -> BasisFactor {
        let cols = vec![vec![(0u32, 1.0)], vec![(1u32, 1.0)]];
        let lu = LuFactors::factorize(2, &cols).unwrap();
        let mut bf = BasisFactor::new(lu, 2);
        bf.push_eta(0, &[2.0, 1.0]);
        bf
    }

    #[test]
    fn eta_ftran_matches_direct_solve() {
        let mut bf = updated_basis();
        // Solve B'x = (4, 5)ᵀ → x = (2, 3)ᵀ.
        let mut x = [4.0, 5.0];
        let nnz = bf.ftran(&mut x);
        assert_eq!(nnz, 2);
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eta_btran_matches_direct_solve() {
        let mut bf = updated_basis();
        // Solve B'ᵀy = (7, 3)ᵀ; B'ᵀ = [[2, 1], [0, 1]] → y = (2, 3)ᵀ.
        let mut y = [7.0, 3.0];
        let nnz = bf.btran(&mut y);
        assert_eq!(nnz, 2);
        assert!((y[0] - 2.0).abs() < 1e-12 && (y[1] - 3.0).abs() < 1e-12);
    }
}
