//! Sparse LU factorization of a simplex basis.
//!
//! The revised simplex engine ([`crate::revised`]) never forms `B⁻¹`:
//! it factorizes the basis matrix `B = L·U` once and answers every
//! `B·x = b` (FTRAN) and `Bᵀ·y = c` (BTRAN) query by two sparse
//! triangular solves. This module holds the factorization itself; the
//! per-pivot eta updates that keep it current between refactorizations
//! live in [`crate::ftran`].
//!
//! Pivot order is chosen by a bounded **Markowitz** search: among a few
//! candidate columns of minimum active count, pick the entry minimising
//! the fill bound `(r−1)·(c−1)` subject to threshold partial pivoting
//! (`|a| ≥ 0.1 · colmax`). Column counts are kept in a lazy min-heap —
//! stale counts are revalidated against the live row patterns when
//! popped — so the search is cheap even as elimination fills rows in.
//! All tie-breaks are by lowest index, so the factorization (and every
//! solve through it) is a deterministic function of the basis.
//!
//! Storage is in *elementary operation* form: step `k` eliminated
//! constraint row `pivot_row[k]` and basis slot `pivot_slot[k]`; `L`
//! holds the per-step multiplier lists, `U` the surviving pivot-row
//! entries keyed by basis slot (plus a transposed copy keyed by step,
//! built once per factorization, for the BTRAN forward solve).

use crate::simplex::DROP_EPS;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Within the chosen column, a pivot must be at least this fraction of
/// the column's largest magnitude (threshold partial pivoting: trades a
/// bounded growth factor for Markowitz's fill control).
const PIVOT_REL: f64 = 0.1;
/// Absolute floor below which an entry is never accepted as a pivot.
const PIVOT_ABS: f64 = 1e-11;
/// Candidate columns examined per Markowitz pivot choice.
const MARKOWITZ_CANDS: usize = 4;

/// The basis matrix was (numerically) singular: some column had no
/// acceptable pivot among the active rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SingularBasis;

/// A sparse LU factorization `B = L·U` in elementary-operation form.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactors {
    m: usize,
    /// Constraint row eliminated at step `k`.
    pivot_row: Vec<u32>,
    /// Basis slot (column of `B`) eliminated at step `k`.
    pivot_slot: Vec<u32>,
    /// `L` multipliers for step `k`: entries `l_starts[k]..l_starts[k+1]`
    /// of `(l_rows, l_vals)` — victim row `i` had `mult · (pivot row)`
    /// subtracted from it.
    l_starts: Vec<u32>,
    l_rows: Vec<u32>,
    l_vals: Vec<f64>,
    /// `U` row for step `k`: off-diagonal entries keyed by basis slot
    /// (always a slot eliminated at a *later* step), diagonal separate.
    u_starts: Vec<u32>,
    u_slots: Vec<u32>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// `U` by columns — column of step `k` holds `(step l < k, u_{l,k})`
    /// — for the BTRAN forward substitution.
    ut_starts: Vec<u32>,
    ut_steps: Vec<u32>,
    ut_vals: Vec<f64>,
}

impl LuFactors {
    /// Factorize the `m × m` basis given as sparse columns
    /// `cols[slot] = [(constraint row, value), ...]` (order free,
    /// duplicates forbidden, zeros ignored).
    pub(crate) fn factorize(
        m: usize,
        cols: &[Vec<(u32, f64)>],
    ) -> Result<LuFactors, SingularBasis> {
        debug_assert_eq!(cols.len(), m);
        // Working rows: rows[i] = [(slot, value), ...] over active slots,
        // kept sorted by slot so candidate validation can binary-search
        // a wide row instead of scanning it.
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (slot, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                if v != 0.0 {
                    rows[r as usize].push((slot as u32, v));
                    col_rows[slot].push(r);
                }
            }
        }
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];
        // Lazy min-heap of (approximate count, slot); counts only ever
        // grow stale downward (drops / eliminations), which revalidation
        // on pop corrects.
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::with_capacity(2 * m);
        for (slot, rows_of) in col_rows.iter().enumerate() {
            heap.push(Reverse((rows_of.len() as u32, slot as u32)));
        }
        // Dense merge scratch, epoch-marked so it never needs clearing.
        let mut dense = vec![0.0f64; m];
        let mut mark = vec![0u32; m];
        let mut epoch = 0u32;
        // Row-seen scratch for deduplicating stale column patterns, same
        // epoch-marking scheme.
        let mut rseen = vec![0u32; m];
        let mut rep = 0u32;

        let mut out = LuFactors {
            m,
            pivot_row: Vec::with_capacity(m),
            pivot_slot: Vec::with_capacity(m),
            l_starts: vec![0],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_starts: vec![0],
            u_slots: Vec::new(),
            u_vals: Vec::new(),
            u_diag: Vec::with_capacity(m),
            ut_starts: Vec::new(),
            ut_steps: Vec::new(),
            ut_vals: Vec::new(),
        };

        // A validated candidate column with its live entries.
        struct Cand {
            slot: u32,
            entries: Vec<(u32, f64)>, // (row, value)
            best_row: u32,
            best_val: f64,
            cost: u64,
        }

        for _step in 0..m {
            // Pop up to MARKOWITZ_CANDS distinct valid columns.
            let mut cands: Vec<Cand> = Vec::with_capacity(MARKOWITZ_CANDS);
            while cands.len() < MARKOWITZ_CANDS {
                let Some(Reverse((_, slot))) = heap.pop() else {
                    break;
                };
                let s = slot as usize;
                if !col_active[s] || cands.iter().any(|c| c.slot == slot) {
                    continue;
                }
                // Validate the (possibly stale) pattern: keep rows that
                // are active and still hold an entry at this slot.
                let mut entries: Vec<(u32, f64)> = Vec::with_capacity(col_rows[s].len());
                rep = rep.wrapping_add(1);
                if rep == 0 {
                    rseen.fill(0);
                    rep = 1;
                }
                for &r in &col_rows[s] {
                    let ru = r as usize;
                    if !row_active[ru] || rseen[ru] == rep {
                        continue;
                    }
                    rseen[ru] = rep;
                    if let Ok(i) = rows[ru].binary_search_by_key(&slot, |&(sl, _)| sl) {
                        entries.push((r, rows[ru][i].1));
                    }
                }
                if entries.is_empty() {
                    // No live entry left in this column: structurally
                    // singular.
                    return Err(SingularBasis);
                }
                col_rows[s] = entries.iter().map(|&(r, _)| r).collect();
                let colmax = entries.iter().fold(0.0f64, |acc, &(_, v)| acc.max(v.abs()));
                let threshold = (PIVOT_REL * colmax).max(PIVOT_ABS);
                let mut best: Option<(u32, f64, usize)> = None; // (row, val, rcount)
                for &(r, v) in &entries {
                    if v.abs() >= threshold {
                        let rc = rows[r as usize].len();
                        let better = match best {
                            None => true,
                            Some((br, _, brc)) => rc < brc || (rc == brc && r < br),
                        };
                        if better {
                            best = Some((r, v, rc));
                        }
                    }
                }
                let Some((best_row, best_val, best_rc)) = best else {
                    // All live entries below the absolute pivot floor.
                    return Err(SingularBasis);
                };
                let ccount = entries.len() as u64;
                let cost = (best_rc as u64 - 1) * (ccount - 1);
                cands.push(Cand {
                    slot,
                    entries,
                    best_row,
                    best_val,
                    cost,
                });
            }
            if cands.is_empty() {
                return Err(SingularBasis);
            }
            // Minimum Markowitz cost, ties by lowest slot.
            let mut pick = 0;
            for (i, c) in cands.iter().enumerate().skip(1) {
                if c.cost < cands[pick].cost
                    || (c.cost == cands[pick].cost && c.slot < cands[pick].slot)
                {
                    pick = i;
                }
            }
            let chosen = cands.swap_remove(pick);
            for c in cands {
                heap.push(Reverse((c.entries.len() as u32, c.slot)));
            }
            let pslot = chosen.slot;
            let prow = chosen.best_row;
            let pval = chosen.best_val;
            debug_assert!(pval.abs() >= PIVOT_ABS);

            // Emit the U row: surviving pivot-row entries, keyed by slot.
            for &(s, v) in &rows[prow as usize] {
                if s != pslot {
                    out.u_slots.push(s);
                    out.u_vals.push(v);
                }
            }
            out.u_starts.push(out.u_slots.len() as u32);
            out.u_diag.push(pval);
            out.pivot_row.push(prow);
            out.pivot_slot.push(pslot);

            // Eliminate the pivot column from every other live row.
            let pivot_entries = std::mem::take(&mut rows[prow as usize]);
            for &(victim, vval) in &chosen.entries {
                if victim == prow {
                    continue;
                }
                let mult = vval / pval;
                out.l_rows.push(victim);
                out.l_vals.push(mult);
                // Sparse merge via the epoch-marked dense scratch:
                // victim -= mult · pivot_row.
                epoch = epoch.wrapping_add(1);
                if epoch == 0 {
                    mark.fill(0);
                    epoch = 1;
                }
                let vrow = std::mem::take(&mut rows[victim as usize]);
                for &(s, v) in &vrow {
                    dense[s as usize] = v;
                    mark[s as usize] = epoch;
                }
                let mut added: Vec<u32> = Vec::new();
                for &(s, v) in &pivot_entries {
                    if s == pslot {
                        continue;
                    }
                    let su = s as usize;
                    if mark[su] == epoch {
                        dense[su] -= mult * v;
                    } else {
                        dense[su] = -mult * v;
                        mark[su] = epoch;
                        added.push(s);
                    }
                }
                // Merge survivors with the (sorted) fill-in so the row
                // stays sorted by slot.
                added.sort_unstable();
                let mut new_row: Vec<(u32, f64)> = Vec::with_capacity(vrow.len() + added.len());
                let mut ai = 0;
                let take_fill =
                    |s: u32,
                     new_row: &mut Vec<(u32, f64)>,
                     col_rows: &mut Vec<Vec<u32>>,
                     heap: &mut BinaryHeap<Reverse<(u32, u32)>>| {
                        let v = dense[s as usize];
                        if v.abs() > DROP_EPS {
                            new_row.push((s, v));
                            // Fill-in: record the new pattern entry and bump
                            // the column back up the heap.
                            col_rows[s as usize].push(victim);
                            heap.push(Reverse((col_rows[s as usize].len() as u32, s)));
                        }
                    };
                for &(s, _) in &vrow {
                    if s == pslot {
                        continue; // eliminated: became the L multiplier
                    }
                    while ai < added.len() && added[ai] < s {
                        take_fill(added[ai], &mut new_row, &mut col_rows, &mut heap);
                        ai += 1;
                    }
                    let v = dense[s as usize];
                    if v.abs() > DROP_EPS {
                        new_row.push((s, v));
                    }
                }
                for &s in &added[ai..] {
                    take_fill(s, &mut new_row, &mut col_rows, &mut heap);
                }
                rows[victim as usize] = new_row;
            }
            out.l_starts.push(out.l_rows.len() as u32);
            row_active[prow as usize] = false;
            col_active[pslot as usize] = false;
        }

        // Build the transposed U (by column step) for BTRAN: U row k's
        // entry at slot s lands in column step_of_slot[s].
        let mut step_of_slot = vec![0u32; m];
        for (k, &s) in out.pivot_slot.iter().enumerate() {
            step_of_slot[s as usize] = k as u32;
        }
        let mut ut_cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        for k in 0..m {
            let (a, b) = (out.u_starts[k] as usize, out.u_starts[k + 1] as usize);
            for e in a..b {
                let l = step_of_slot[out.u_slots[e] as usize] as usize;
                ut_cols[l].push((k as u32, out.u_vals[e]));
            }
        }
        out.ut_starts = Vec::with_capacity(m + 1);
        out.ut_starts.push(0);
        for col in &ut_cols {
            for &(k, v) in col {
                out.ut_steps.push(k);
                out.ut_vals.push(v);
            }
            out.ut_starts.push(out.ut_steps.len() as u32);
        }
        Ok(out)
    }

    /// Solve `B·x = b` in place: `x` arrives indexed by constraint row
    /// (the right-hand side) and leaves indexed by basis slot. `work`
    /// is caller-provided scratch of length `m`.
    pub(crate) fn ftran(&self, x: &mut [f64], work: &mut [f64]) {
        let m = self.m;
        debug_assert!(x.len() == m && work.len() == m);
        // Forward elimination: replay the L operations.
        for k in 0..m {
            let t = x[self.pivot_row[k] as usize];
            if t != 0.0 {
                let (a, b) = (self.l_starts[k] as usize, self.l_starts[k + 1] as usize);
                for e in a..b {
                    x[self.l_rows[e] as usize] -= self.l_vals[e] * t;
                }
            }
        }
        // Back substitution on U, writing slot-indexed results: step k's
        // off-diagonals reference slots of later (already solved) steps.
        for k in (0..m).rev() {
            let mut t = x[self.pivot_row[k] as usize];
            let (a, b) = (self.u_starts[k] as usize, self.u_starts[k + 1] as usize);
            for e in a..b {
                t -= self.u_vals[e] * work[self.u_slots[e] as usize];
            }
            work[self.pivot_slot[k] as usize] = t / self.u_diag[k];
        }
        x.copy_from_slice(work);
    }

    /// Solve `Bᵀ·y = c` in place: `x` arrives indexed by basis slot
    /// (costs of the basic variables) and leaves indexed by constraint
    /// row. `work` is caller-provided scratch of length `m`.
    pub(crate) fn btran(&self, x: &mut [f64], work: &mut [f64]) {
        let m = self.m;
        debug_assert!(x.len() == m && work.len() == m);
        // Forward substitution on Uᵀ into step-indexed scratch.
        for k in 0..m {
            let mut t = x[self.pivot_slot[k] as usize];
            let (a, b) = (self.ut_starts[k] as usize, self.ut_starts[k + 1] as usize);
            for e in a..b {
                t -= self.ut_vals[e] * work[self.ut_steps[e] as usize];
            }
            work[k] = t / self.u_diag[k];
        }
        // Scatter to constraint rows, then replay Lᵀ backwards.
        for k in 0..m {
            x[self.pivot_row[k] as usize] = work[k];
        }
        for k in (0..m).rev() {
            let (a, b) = (self.l_starts[k] as usize, self.l_starts[k + 1] as usize);
            let mut t = x[self.pivot_row[k] as usize];
            for e in a..b {
                t -= self.l_vals[e] * x[self.l_rows[e] as usize];
            }
            x[self.pivot_row[k] as usize] = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cols(a: &[&[f64]]) -> Vec<Vec<(u32, f64)>> {
        let m = a.len();
        (0..m)
            .map(|j| {
                (0..m)
                    .filter(|&i| a[i][j] != 0.0)
                    .map(|i| (i as u32, a[i][j]))
                    .collect()
            })
            .collect()
    }

    fn mat_vec(a: &[&[f64]], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(c, v)| c * v).sum())
            .collect()
    }

    fn mat_t_vec(a: &[&[f64]], y: &[f64]) -> Vec<f64> {
        let m = a.len();
        (0..m)
            .map(|j| (0..m).map(|i| a[i][j] * y[i]).sum())
            .collect()
    }

    fn check_solves(a: &[&[f64]]) {
        let m = a.len();
        let lu = LuFactors::factorize(m, &dense_cols(a)).expect("nonsingular");
        let mut work = vec![0.0; m];
        // FTRAN: pick x, form b = A x, solve, compare.
        let x_true: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
        let mut b = mat_vec(a, &x_true);
        lu.ftran(&mut b, &mut work);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "ftran {got} vs {want}");
        }
        // BTRAN: pick y, form c = Aᵀ y, solve, compare.
        let y_true: Vec<f64> = (0..m).map(|i| 0.5 * (i as f64) + 0.25).collect();
        let mut c = mat_t_vec(a, &y_true);
        lu.btran(&mut c, &mut work);
        for (got, want) in c.iter().zip(&y_true) {
            assert!((got - want).abs() < 1e-9, "btran {got} vs {want}");
        }
    }

    #[test]
    fn identity_and_permutation() {
        check_solves(&[&[1.0, 0.0], &[0.0, 1.0]]);
        check_solves(&[&[0.0, 2.0, 0.0], &[0.0, 0.0, 3.0], &[4.0, 0.0, 0.0]]);
    }

    #[test]
    fn dense_and_fill_in() {
        check_solves(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 4.0, 1.0, 0.0],
            &[0.0, 1.0, 4.0, 1.0],
            &[2.0, 0.0, 1.0, 4.0],
        ]);
        check_solves(&[&[1e-3, 1.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 1.0, -1.0]]);
    }

    #[test]
    fn empty_basis() {
        let lu = LuFactors::factorize(0, &[]).expect("empty is nonsingular");
        lu.ftran(&mut [], &mut []);
        lu.btran(&mut [], &mut []);
        assert!(lu.l_vals.is_empty() && lu.u_vals.is_empty());
    }

    #[test]
    fn singular_is_rejected() {
        // Duplicate columns.
        let a: &[&[f64]] = &[&[1.0, 1.0], &[2.0, 2.0]];
        assert!(
            LuFactors::factorize(2, &dense_cols(a)).is_err(),
            "rank-1 matrix must not factorize"
        );
        // A structurally empty column.
        let cols = vec![vec![(0u32, 1.0)], vec![]];
        assert!(LuFactors::factorize(2, &cols).is_err());
    }
}
