//! Best-first branch & bound for mixed-integer programs.
//!
//! Solves the LP relaxation with the [`crate::simplex`] engine; while the
//! relaxed optimum assigns a fractional value to an integer variable,
//! branches on the most fractional one with `x ≤ ⌊v⌋` / `x ≥ ⌈v⌉` bound
//! splits. Nodes are explored best-bound-first, so the first incumbent
//! found tends to be good and pruning is effective. The search is exact:
//! it terminates with the true optimum (or `Infeasible`).

use crate::model::{Model, Sense, Solution, SolveError, VarId};
use crate::simplex;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Integrality tolerance: values this close to an integer count as
/// integral.
const INT_EPS: f64 = 1e-6;

/// Default node budget: effectively "solve to optimality" for the model
/// sizes in this workspace.
const MAX_NODES: usize = 200_000;

/// Solve a model with integer variables to optimality.
pub fn solve_mip(model: &Model) -> Result<Solution, SolveError> {
    solve_mip_bounded(model, MAX_NODES)
}

/// Solve with a node budget. When the budget runs out, the best
/// incumbent found so far is returned (an anytime solve, as commercial
/// solvers do under a time limit); only if *no* incumbent exists does it
/// fail with [`SolveError::IterationLimit`]. A rounding dive at the root
/// produces an incumbent almost immediately, so bounded solves rarely
/// fail outright.
pub fn solve_mip_bounded(model: &Model, max_nodes: usize) -> Result<Solution, SolveError> {
    let _span = vb_telemetry::span!("solver.mip_solve");
    vb_telemetry::counter!("solver.mip_solves").inc();
    let int_vars: Vec<VarId> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.integer)
        .map(|(i, _)| VarId(i))
        .collect();

    // Root relaxation.
    let root = simplex::solve_lp(model, &[])?;

    let better = |a: f64, b: f64| match model.sense {
        Sense::Minimize => a < b - 1e-9,
        Sense::Maximize => a > b + 1e-9,
    };

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root.objective,
        sense: model.sense,
        overrides: Vec::new(),
        relaxed: root.clone(),
    });

    // Rounding dive from the root: fix the most fractional variable to
    // its nearest integer and re-solve until integral. This produces an
    // incumbent in ~|int_vars| LP solves, making bounded solves anytime.
    let mut incumbent: Option<Solution> = dive(model, &int_vars, root);
    let mut explored = 0usize;
    let mut pruned = 0u64;
    let mut improvements = 0u64;
    let mut budget_exhausted = false;

    while let Some(node) = heap.pop() {
        explored += 1;
        if explored > max_nodes {
            budget_exhausted = true;
            break;
        }
        // Bound pruning: the node's relaxation bound cannot beat the
        // incumbent.
        if let Some(inc) = &incumbent {
            if !better(node.bound, inc.objective) {
                pruned += 1;
                continue;
            }
        }

        match most_fractional(&node.relaxed, &int_vars) {
            None => {
                // Integral: candidate incumbent (round off the epsilon).
                let snapped = snap(&node.relaxed, &int_vars);
                let accept = incumbent
                    .as_ref()
                    .is_none_or(|inc| better(snapped.objective, inc.objective));
                if accept {
                    incumbent = Some(snapped);
                    improvements += 1;
                }
            }
            Some((var, value)) => {
                let floor = value.floor();
                for (lo, hi) in [(f64::NEG_INFINITY, floor), (floor + 1.0, f64::INFINITY)] {
                    let mut overrides = node.overrides.clone();
                    let (base_lb, base_ub) = effective_bounds(model, &overrides, var);
                    let new_lb = base_lb.max(lo);
                    let new_ub = base_ub.min(hi);
                    if new_lb > new_ub + INT_EPS {
                        continue;
                    }
                    overrides.retain(|&(v, _, _)| v != var);
                    overrides.push((var, new_lb, new_ub));
                    if let Ok(relaxed) = simplex::solve_lp(model, &overrides) {
                        let keep = incumbent
                            .as_ref()
                            .is_none_or(|inc| better(relaxed.objective, inc.objective));
                        if keep {
                            heap.push(Node {
                                bound: relaxed.objective,
                                sense: model.sense,
                                overrides,
                                relaxed,
                            });
                        }
                    }
                }
            }
        }
    }

    vb_telemetry::counter!("solver.mip_nodes_expanded").add(explored as u64);
    vb_telemetry::counter!("solver.mip_nodes_pruned").add(pruned);
    vb_telemetry::counter!("solver.mip_incumbent_improvements").add(improvements);
    vb_telemetry::histogram!("solver.mip_nodes_per_solve").observe(explored as f64);

    incumbent.ok_or(if budget_exhausted {
        SolveError::IterationLimit
    } else {
        SolveError::Infeasible
    })
}

/// Greedy rounding dive: repeatedly fix the most fractional integer
/// variable to its nearest value (trying the other direction on
/// infeasibility) until the relaxation is integral. Returns the rounded
/// solution when the dive survives to the bottom.
fn dive(model: &Model, int_vars: &[VarId], mut relaxed: Solution) -> Option<Solution> {
    let mut overrides: Vec<(VarId, f64, f64)> = Vec::new();
    loop {
        let Some((var, value)) = most_fractional(&relaxed, int_vars) else {
            return Some(snap(&relaxed, int_vars));
        };
        let (lb, ub) = (model.vars[var.0].lb, model.vars[var.0].ub);
        let nearest = value.round().clamp(lb.ceil(), ub.floor());
        let other = (if nearest > value {
            value.floor()
        } else {
            value.ceil()
        })
        .clamp(lb.ceil(), ub.floor());
        let mut fixed = false;
        for candidate in [nearest, other] {
            let mut trial = overrides.clone();
            trial.retain(|&(v, _, _)| v != var);
            trial.push((var, candidate, candidate));
            if let Ok(sol) = simplex::solve_lp(model, &trial) {
                overrides = trial;
                relaxed = sol;
                fixed = true;
                break;
            }
        }
        if !fixed {
            return None;
        }
    }
}

/// Current bounds of `var` under the model plus overrides.
fn effective_bounds(model: &Model, overrides: &[(VarId, f64, f64)], var: VarId) -> (f64, f64) {
    overrides
        .iter()
        .find(|&&(v, _, _)| v == var)
        .map(|&(_, l, u)| (l, u))
        .unwrap_or((model.vars[var.0].lb, model.vars[var.0].ub))
}

/// The integer variable whose relaxed value is farthest from integral.
fn most_fractional(sol: &Solution, int_vars: &[VarId]) -> Option<(VarId, f64)> {
    let mut best: Option<(VarId, f64, f64)> = None;
    for &v in int_vars {
        let x = sol.value(v);
        let frac = (x - x.round()).abs();
        if frac > INT_EPS {
            let dist = (x - x.floor() - 0.5).abs(); // 0 = most fractional
            if best.is_none_or(|(_, _, d)| dist < d) {
                best = Some((v, x, dist));
            }
        }
    }
    best.map(|(v, x, _)| (v, x))
}

/// Round integer variables exactly onto the grid.
fn snap(sol: &Solution, int_vars: &[VarId]) -> Solution {
    let mut values = sol.values().to_vec();
    for &v in int_vars {
        values[v.0] = values[v.0].round();
    }
    Solution::new(sol.objective, values)
}

/// Branch & bound search node, ordered so the heap pops the best bound
/// first (largest for maximisation, smallest for minimisation).
struct Node {
    bound: f64,
    sense: Sense,
    overrides: Vec<(VarId, f64, f64)>,
    relaxed: Solution,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        let ord = self
            .bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal);
        match self.sense {
            Sense::Maximize => ord,
            Sense::Minimize => ord.reverse(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    #[test]
    fn knapsack_is_solved_exactly() {
        // Classic 0/1 knapsack: values [60,100,120], weights [10,20,30],
        // capacity 50 -> take items 2 and 3, value 220.
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<VarId> = (0..3).map(|i| m.bin_var(&format!("x{i}"))).collect();
        let e = m.expr(&[(x[0], 10.0), (x[1], 20.0), (x[2], 30.0)]);
        m.add_le(e, 50.0);
        let obj = m.expr(&[(x[0], 60.0), (x[1], 100.0), (x[2], 120.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 220.0).abs() < 1e-6);
        assert_eq!(s.int_value(x[0]), 0);
        assert_eq!(s.int_value(x[1]), 1);
        assert_eq!(s.int_value(x[2]), 1);
    }

    #[test]
    fn integer_rounding_is_not_lp_rounding() {
        // max x + y s.t. 2x + 2y <= 3, integers -> LP gives 1.5, MIP 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 5.0);
        let y = m.int_var("y", 0.0, 5.0);
        let e = m.expr(&[(x, 2.0), (y, 2.0)]);
        m.add_le(e, 3.0);
        let obj = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + y, x integer <= 2.5 bound via constraint, y cont <= 1.7.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.var("y", 0.0, 10.0);
        let e1 = m.expr(&[(x, 1.0)]);
        m.add_le(e1, 2.5);
        let e2 = m.expr(&[(y, 1.0)]);
        m.add_le(e2, 1.7);
        let obj = m.expr(&[(x, 2.0), (y, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 2);
        assert!((s.value(y) - 1.7).abs() < 1e-6);
        assert!((s.objective - 5.7).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip_is_reported() {
        // x + y = 1 with x, y binary and x + y >= 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_ge(e, 3.0);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn minimization_mip() {
        // min 3x + 4y s.t. x + 2y >= 5, integers >= 0.
        // Candidates: (5,0)=15, (3,1)=13, (1,2)=11, (0,3)=12 -> 11.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        let e = m.expr(&[(x, 1.0), (y, 2.0)]);
        m.add_ge(e, 5.0);
        let obj = m.expr(&[(x, 3.0), (y, 4.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 11.0).abs() < 1e-6, "obj {}", s.objective);
        assert_eq!((s.int_value(x), s.int_value(y)), (1, 2));
    }

    #[test]
    fn equality_constrained_assignment() {
        // Assign 2 apps to 2 sites, each app exactly once, site 0 holds
        // only one app. Costs: a0s0=1, a0s1=5, a1s0=2, a1s1=4.
        // Best: a0->s0 (1), a1->s1 (4) = 5.
        let mut m = Model::new(Sense::Minimize);
        let a0s0 = m.bin_var("a0s0");
        let a0s1 = m.bin_var("a0s1");
        let a1s0 = m.bin_var("a1s0");
        let a1s1 = m.bin_var("a1s1");
        let e1 = m.expr(&[(a0s0, 1.0), (a0s1, 1.0)]);
        m.add_eq(e1, 1.0);
        let e2 = m.expr(&[(a1s0, 1.0), (a1s1, 1.0)]);
        m.add_eq(e2, 1.0);
        let e3 = m.expr(&[(a0s0, 1.0), (a1s0, 1.0)]);
        m.add_le(e3, 1.0);
        let obj = m.expr(&[(a0s0, 1.0), (a0s1, 5.0), (a1s0, 2.0), (a1s1, 4.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6);
        assert_eq!(s.int_value(a0s0), 1);
        assert_eq!(s.int_value(a1s1), 1);
    }

    #[test]
    fn objective_constant_survives_branching() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        let e = m.expr(&[(x, 2.0)]);
        m.add_ge(e, 3.0); // x >= 1.5 -> x = 2
        let obj = LinExpr::term(x, 1.0).add_const(7.0);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 2);
        assert!((s.objective - 9.0).abs() < 1e-6);
    }

    #[test]
    fn minimax_pattern_used_by_mip_peak() {
        // The O2 objective is modelled as min z with z >= load_i. Mixing
        // a continuous z with binary placement vars must work.
        // Two items of sizes 3 and 5 onto two sites; minimise the peak.
        let mut m = Model::new(Sense::Minimize);
        let z = m.var("z", 0.0, f64::INFINITY);
        let x0 = m.bin_var("item0_site0");
        let x1 = m.bin_var("item1_site0");
        // Site 0 load = 3 x0 + 5 x1; site 1 load = 3(1-x0) + 5(1-x1).
        let e1 = m.expr(&[(x0, 3.0), (x1, 5.0), (z, -1.0)]);
        m.add_le(e1, 0.0);
        let e2 = m.expr(&[(x0, -3.0), (x1, -5.0), (z, -1.0)]);
        m.add_le(e2, -8.0);
        let obj = m.expr(&[(z, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        // Best split: 5 on one site, 3 on the other -> peak 5.
        assert!((s.objective - 5.0).abs() < 1e-6, "obj {}", s.objective);
    }
}
